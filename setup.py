"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets pip fall back to ``setup.py develop``:

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
