"""Structural checker for generated VHDL.

Companion of :mod:`repro.mda.clint` for the hardware half: verifies
entity/architecture/package/process/case/if/loop block pairing, that the
architecture names an existing entity, and that every ``case`` has an
``end case``.  Like the C lint, it guards the emitters, not synthesis.
"""

from __future__ import annotations

import re

from .clint import LintFinding

_OPENERS = {
    "entity": re.compile(r"^\s*entity\s+(\w+)\s+is\b", re.IGNORECASE),
    "architecture": re.compile(
        r"^\s*architecture\s+(\w+)\s+of\s+(\w+)\s+is\b", re.IGNORECASE),
    "package": re.compile(r"^\s*package\s+(\w+)\s+is\b", re.IGNORECASE),
    "process": re.compile(r"^\s*(\w+\s*:\s*)?process\b", re.IGNORECASE),
    "case": re.compile(r"^\s*case\b.*\bis\s*$", re.IGNORECASE),
    "loop": re.compile(r"\bloop\s*$", re.IGNORECASE),
    "record": re.compile(r"^\s*type\s+\w+\s+is\s+record\b", re.IGNORECASE),
}

_END = re.compile(r"^\s*end\s+(\w+)", re.IGNORECASE)
_END_BARE = re.compile(r"^\s*end\s*;", re.IGNORECASE)

#: 'if' needs care: "end if;" closes it, "elsif"/"else" do not open another.
_IF_OPEN = re.compile(r"^\s*if\b.*\bthen\b", re.IGNORECASE)
_END_KIND = {
    "entity": "entity", "architecture": "architecture", "package": "package",
    "process": "process", "case": "case", "loop": "loop", "if": "if",
}


def _strip_vhdl_comments(line: str) -> str:
    index = line.find("--")
    return line if index == -1 else line[:index]


def lint_vhdl(path: str, text: str) -> list[LintFinding]:
    """All structural findings for one VHDL artifact."""
    findings: list[LintFinding] = []
    stack: list[tuple[str, int]] = []   # (kind, line)
    entities: set[str] = set()

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_vhdl_comments(raw)
        code = line.strip()
        if not code:
            continue

        end_match = _END.match(code)
        if end_match and end_match.group(1).lower() in (
            "entity", "architecture", "package", "process", "case",
            "loop", "if", "record",
        ):
            kind = end_match.group(1).lower()
            if not stack:
                findings.append(LintFinding(
                    path, lineno, f"'end {kind}' with nothing open"))
                continue
            open_kind, open_line = stack.pop()
            if open_kind != kind:
                findings.append(LintFinding(
                    path, lineno,
                    f"'end {kind}' closes '{open_kind}' from line {open_line}"))
            continue
        if end_match or _END_BARE.match(code):
            # "end <name>;" closing an entity/package by name, or bare end
            if stack:
                stack.pop()
            continue

        if _IF_OPEN.match(code) and not code.lower().startswith(("elsif",)):
            stack.append(("if", lineno))
            continue
        for kind, pattern in _OPENERS.items():
            match = pattern.match(code) if kind != "loop" else pattern.search(code)
            if not match:
                continue
            if kind == "loop" and re.match(r"^\s*end\b", code):
                break
            if kind == "entity":
                entities.add(match.group(1).lower())
            if kind == "architecture":
                target = match.group(2).lower()
                if entities and target not in entities:
                    findings.append(LintFinding(
                        path, lineno,
                        f"architecture of unknown entity {target!r}"))
            stack.append((kind, lineno))
            break

    for kind, lineno in stack:
        findings.append(LintFinding(
            path, lineno, f"unclosed {kind} block"))

    if re.search(r"^\s*architecture\b", text, re.IGNORECASE | re.MULTILINE):
        if "begin" not in text.lower():
            findings.append(LintFinding(
                path, 1, "architecture without a begin"))
    return findings
