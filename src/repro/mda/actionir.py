"""Compatibility shim — the action IR moved to :mod:`repro.exec.ir`.

The lowering used to live in the mda layer; now that the abstract
runtime, the architecture simulators and the signal-flow analyzer all
execute the same lowered form, it lives in the shared execution core
beneath all of them.  This module re-exports the public names so
existing imports (``repro.mda.lower_block`` and friends) keep working.
"""

from repro.exec.ir import (  # noqa: F401
    _Lowerer,
    ir_op_counts,
    lower_block,
    walk_ir_generates,
    walk_ir_statements,
)

__all__ = [
    "ir_op_counts",
    "lower_block",
    "walk_ir_generates",
    "walk_ir_statements",
]
