"""Cross-partition interface generation.

Paper section 4: "The two halves are known to fit together because the
interface was generated."  This module is that guarantee, made concrete:

1. :func:`build_interface_spec` derives one :class:`InterfaceSpec` from
   the partition's boundary signals — message ids, field offsets and
   widths are computed exactly once, here.
2. :meth:`InterfaceSpec.emit_c_header` and
   :meth:`InterfaceSpec.emit_vhdl_package` print the C half and the VHDL
   half **from that single spec**.  Both artifacts embed machine-readable
   ``LAYOUT`` lines.
3. :class:`InterfaceCodec` packs/unpacks real bytes from the layout table
   *parsed back out of an emitted artifact* — so experiment E7 can prove
   byte-compatibility of the two halves by reading only the generated
   text, exactly the property the paper claims.

The baseline of experiment E1 (two teams hand-maintaining the same
tables) lives in :mod:`repro.baselines.drift` and reuses the codec, which
is what makes its divergence measurable in defects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.marks.model import CRC_KINDS, MarkError, MarkSet
from repro.marks.partition import Partition
from repro.xuml.datatypes import bit_width

from .manifest import ComponentManifest, tag_to_dtype
from .naming import banner, c_ident, c_macro, vhdl_ident


class InterfaceError(Exception):
    """Interface spec construction or codec failure."""


# ---------------------------------------------------------------------------
# reliability framing: CRC trailers shared by both generated halves
# ---------------------------------------------------------------------------

#: a protected frame appends seq16 + crc(8|16) padded to one 32-bit word
FRAME_TRAILER_BYTES = 4

#: CRC-8 polynomial (ATM HEC), emitted into both artifacts
CRC8_POLY = 0x07
#: CRC-16-CCITT polynomial, emitted into both artifacts
CRC16_POLY = 0x1021
CRC16_INIT = 0xFFFF


def crc8(data: bytes) -> int:
    """CRC-8 (poly 0x07, init 0x00) over *data*."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = ((crc << 1) ^ CRC8_POLY if crc & 0x80 else crc << 1) & 0xFF
    return crc


def crc16_ccitt(data: bytes) -> int:
    """CRC-16-CCITT (poly 0x1021, init 0xFFFF) over *data*."""
    crc = CRC16_INIT
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ CRC16_POLY if crc & 0x8000
                   else crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class Protection:
    """Reliability protocol of one boundary message, chosen by marks.

    Like the partition itself, protection lives entirely outside the
    model: the ``crc`` / ``maxRetries`` / ``retryBackoffNs`` /
    ``isCritical`` marks on the *receiver* class decide it, and both
    generated interface halves emit the identical framing — so the two
    sides of a protected message still fit together by construction.
    """

    crc: str = "none"               # "none" | "crc8" | "crc16"
    max_retries: int = 0
    retry_backoff_ns: int = 2_000
    critical: bool = False

    @property
    def enabled(self) -> bool:
        return self.crc != "none"


def protection_from_marks(
    marks: MarkSet | None, component_name: str, class_key: str
) -> Protection:
    """Read a receiver class's reliability marks (default: unprotected)."""
    if marks is None:
        return Protection()
    path = f"{component_name}.{class_key}"
    try:
        crc = str(marks.get(path, "crc"))
        retries = int(marks.get(path, "maxRetries"))
        backoff = int(marks.get(path, "retryBackoffNs"))
        critical = bool(marks.get(path, "isCritical"))
    except MarkError:
        # a custom vocabulary without reliability marks: no protection
        return Protection()
    if crc not in CRC_KINDS:
        raise InterfaceError(
            f"{path}: crc mark {crc!r} is not one of {'/'.join(CRC_KINDS)}")
    return Protection(crc=crc, max_retries=retries,
                      retry_backoff_ns=backoff, critical=critical)


@dataclass(frozen=True)
class MessageField:
    """One field of a boundary message: byte-aligned, fixed width."""

    name: str
    dtype_tag: str
    offset_bits: int
    width_bits: int

    @property
    def offset_bytes(self) -> int:
        return self.offset_bits // 8

    @property
    def width_bytes(self) -> int:
        return self.width_bits // 8


@dataclass(frozen=True)
class Message:
    """One boundary signal as a bus message."""

    message_id: int
    name: str                       # e.g. "ce_ce1"
    event_label: str
    sender_class: str
    receiver_class: str
    direction: str                  # "sw_to_hw" or "hw_to_sw"
    fields: tuple[MessageField, ...]
    protection: Protection = Protection()

    @property
    def payload_bytes(self) -> int:
        if not self.fields:
            return 4  # minimum transfer unit
        last = self.fields[-1]
        raw = last.offset_bytes + last.width_bytes
        return (raw + 3) // 4 * 4  # padded to 32-bit words

    @property
    def frame_bytes(self) -> int:
        """On-wire size: payload plus the CRC/seq trailer if protected."""
        if not self.protection.enabled:
            return self.payload_bytes
        return self.payload_bytes + FRAME_TRAILER_BYTES

    def field(self, name: str) -> MessageField:
        for f in self.fields:
            if f.name == name:
                return f
        raise InterfaceError(f"message {self.name} has no field {name!r}")


@dataclass
class InterfaceSpec:
    """The single source both interface halves are generated from."""

    component: str
    messages: tuple[Message, ...] = field(default_factory=tuple)

    def message_for(self, receiver_class: str, event_label: str) -> Message:
        for message in self.messages:
            if (message.receiver_class == receiver_class
                    and message.event_label == event_label):
                return message
        raise InterfaceError(
            f"no boundary message for {receiver_class}.{event_label}"
        )

    def has_message(self, receiver_class: str, event_label: str) -> bool:
        try:
            self.message_for(receiver_class, event_label)
            return True
        except InterfaceError:
            return False

    def layout_digest(self) -> tuple:
        """A hashable digest of every id/offset/width in the spec."""
        return tuple(
            (m.message_id, m.name, m.payload_bytes,
             tuple((f.name, f.dtype_tag, f.offset_bits, f.width_bits)
                   for f in m.fields),
             (m.protection.crc, m.frame_bytes))
            for m in self.messages
        )

    # -- emission -----------------------------------------------------------

    def emit_c_header(self) -> str:
        """The software half: message ids, packed structs, layout table."""
        lines = [banner(f"{self.component} cross-partition interface", "//")]
        lines.append("#ifndef %s_INTERFACE_H" % c_macro(self.component))
        lines.append("#define %s_INTERFACE_H" % c_macro(self.component))
        lines.append("")
        lines.append("#include <stdint.h>")
        lines.append("#include <stdbool.h>")
        lines.append("")
        for message in self.messages:
            lines.append(f"#define MSG_ID_{c_macro(message.name)} "
                         f"{message.message_id}")
        lines.append("")
        for message in self.messages:
            lines.append(f"#define {c_macro(message.name)}_FRAME_BYTES "
                         f"{message.frame_bytes}")
        if any(m.protection.enabled for m in self.messages):
            lines.append("")
            lines.append("/* protected frames append seq16 (LE) and a CRC,")
            lines.append(f"   padded to {FRAME_TRAILER_BYTES} trailer bytes;")
            lines.append(f"   crc8 poly 0x{CRC8_POLY:02X} init 0x00,")
            lines.append(f"   crc16 poly 0x{CRC16_POLY:04X}"
                         f" init 0x{CRC16_INIT:04X} (CCITT) */")
            lines.append("uint8_t  crc8_update(const uint8_t *data,"
                         " uint32_t len);")
            lines.append("uint16_t crc16_ccitt(const uint8_t *data,"
                         " uint32_t len);")
        lines.append("")
        for message in self.messages:
            lines.append(f"/* {message.sender_class} -> "
                         f"{message.receiver_class} : {message.event_label} "
                         f"({message.direction}) */")
            lines.append(f"typedef struct {c_ident(message.name)}_msg {{")
            for fld in message.fields:
                ctype = _c_field_type(fld)
                lines.append(f"    {ctype} {c_ident(fld.name)};"
                             f"  /* offset {fld.offset_bytes}B,"
                             f" width {fld.width_bytes}B */")
            if not message.fields:
                lines.append("    uint32_t _reserved;")
            lines.append(f"}} {c_ident(message.name)}_msg_t;")
            lines.append(f"/* payload: {message.payload_bytes} bytes */")
            lines.append("")
        lines.append("/* machine-readable layout table (one line per field):")
        lines.extend(self._layout_lines())
        lines.append("*/")
        lines.append("")
        for message in self.messages:
            name = c_ident(message.name)
            lines.append(f"void pack_{name}(const {name}_msg_t *msg, "
                         "uint8_t *buffer);")
            lines.append(f"void unpack_{name}({name}_msg_t *msg, "
                         "const uint8_t *buffer);")
        lines.append("")
        lines.append("#endif")
        return "\n".join(lines) + "\n"

    def emit_vhdl_package(self) -> str:
        """The hardware half: the same layout as a VHDL package."""
        lines = [banner(f"{self.component} cross-partition interface", "--")]
        lines.append("library ieee;")
        lines.append("use ieee.std_logic_1164.all;")
        lines.append("use ieee.numeric_std.all;")
        lines.append("")
        lines.append(f"package {vhdl_ident(self.component)}_interface_pkg is")
        lines.append("")
        for message in self.messages:
            lines.append(f"    constant MSG_ID_{c_macro(message.name)} : "
                         f"integer := {message.message_id};")
        lines.append("")
        for message in self.messages:
            lines.append(f"    constant {c_macro(message.name)}_FRAME_BYTES : "
                         f"integer := {message.frame_bytes};")
        if any(m.protection.enabled for m in self.messages):
            lines.append("")
            lines.append("    -- protected frames append seq16 (LE) and a"
                         " CRC, padded to"
                         f" {FRAME_TRAILER_BYTES} trailer bytes")
            lines.append(f"    constant CRC8_POLY : std_logic_vector(7 downto"
                         f" 0) := x\"{CRC8_POLY:02X}\";")
            lines.append("    constant CRC16_POLY : std_logic_vector(15"
                         f" downto 0) := x\"{CRC16_POLY:04X}\";")
            lines.append("    constant CRC16_INIT : std_logic_vector(15"
                         f" downto 0) := x\"{CRC16_INIT:04X}\";")
        lines.append("")
        for message in self.messages:
            lines.append(f"    -- {message.sender_class} -> "
                         f"{message.receiver_class} : {message.event_label} "
                         f"({message.direction})")
            lines.append(f"    type {vhdl_ident(message.name)}_msg_t is record")
            for fld in message.fields:
                lines.append(
                    f"        {vhdl_ident(fld.name)} : "
                    f"std_logic_vector({fld.width_bits * 1 - 1} downto 0);"
                    f"  -- offset {fld.offset_bytes}B"
                )
            if not message.fields:
                lines.append("        reserved_field : "
                             "std_logic_vector(31 downto 0);")
            lines.append("    end record;")
            lines.append(f"    -- payload: {message.payload_bytes} bytes")
            lines.append("")
        lines.append("    -- machine-readable layout table"
                      " (one line per field):")
        for line in self._layout_lines():
            lines.append("    --" + line[2:] if line.startswith("--") else
                         "    -- " + line)
        lines.append("")
        lines.append(f"end package {vhdl_ident(self.component)}_interface_pkg;")
        return "\n".join(lines) + "\n"

    def _layout_lines(self) -> list[str]:
        lines = []
        for message in self.messages:
            lines.append(
                f"LAYOUT-MSG {message.name} id={message.message_id} "
                f"bytes={message.payload_bytes} event={message.event_label} "
                f"receiver={message.receiver_class}"
            )
            for fld in message.fields:
                lines.append(
                    f"LAYOUT-FIELD {message.name} {fld.name} "
                    f"type={fld.dtype_tag} offset={fld.offset_bits} "
                    f"width={fld.width_bits}"
                )
            if message.protection.enabled:
                p = message.protection
                lines.append(
                    f"LAYOUT-FRAME {message.name} crc={p.crc} seq_bits=16 "
                    f"frame_bytes={message.frame_bytes} "
                    f"retries={p.max_retries} "
                    f"backoff_ns={p.retry_backoff_ns} "
                    f"critical={1 if p.critical else 0}"
                )
        return lines


def _c_field_type(fld: MessageField) -> str:
    if fld.dtype_tag == "real":
        return "double"
    if fld.dtype_tag == "boolean":
        return "uint8_t"
    if fld.dtype_tag == "string":
        return "char"  # fixed array, declared by width
    if fld.width_bytes <= 4:
        return "int32_t" if fld.dtype_tag == "integer" else "uint32_t"
    return "uint64_t"


def _field_width_bits(dtype) -> int:
    """Byte-aligned field width for a data type."""
    bits = bit_width(dtype)
    return (bits + 7) // 8 * 8


def build_interface_spec(
    manifest: ComponentManifest, partition: Partition,
    marks: MarkSet | None = None,
) -> InterfaceSpec:
    """Derive the interface from the partition boundary — once.

    Message ids are assigned in sorted (receiver, event) order so the
    same partition always yields the same interface.  When *marks* are
    given, reliability marks on the receiver class select CRC framing
    and a retransmit budget for that class's messages.
    """
    seen: set[tuple[str, str]] = set()
    messages: list[Message] = []
    flows = sorted(
        partition.boundary_flows,
        key=lambda f: (f.receiver_class, f.event_label, f.sender_class),
    )
    next_id = 1
    for flow in flows:
        key = (flow.receiver_class, flow.event_label)
        if key in seen:
            continue  # several senders share one message type
        seen.add(key)
        event = manifest.klass(flow.receiver_class).events[flow.event_label]
        receiver_side = partition.side_of(flow.receiver_class)
        direction = "sw_to_hw" if receiver_side == "hw" else "hw_to_sw"
        fields: list[MessageField] = []
        offset = 0
        # every message addresses a target instance on the far side
        fields.append(MessageField("target_instance", "unique_id", 0, 32))
        offset = 32
        for pname, ptag in event.params:
            dtype = tag_to_dtype(ptag, manifest.enums)
            width = _field_width_bits(dtype)
            fields.append(MessageField(pname, ptag, offset, width))
            offset += width
        messages.append(Message(
            message_id=next_id,
            name=f"{flow.receiver_class.lower()}_{flow.event_label.lower()}",
            event_label=flow.event_label,
            sender_class=flow.sender_class,
            receiver_class=flow.receiver_class,
            direction=direction,
            fields=tuple(fields),
            protection=protection_from_marks(
                marks, manifest.name, flow.receiver_class),
        ))
        next_id += 1
    return InterfaceSpec(manifest.name, tuple(messages))


# ---------------------------------------------------------------------------
# codecs: byte-level pack/unpack driven by an emitted artifact's layout table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FrameSpec:
    """Framing of one protected message, parsed from a LAYOUT-FRAME line."""

    crc: str                        # "crc8" or "crc16"
    frame_bytes: int
    max_retries: int = 0
    retry_backoff_ns: int = 2_000
    critical: bool = False


@dataclass
class InterfaceCodec:
    """Packs and unpacks boundary messages from a parsed layout table.

    Build one with :meth:`from_artifact` on *generated text* (C header or
    VHDL package): the codec then knows only what the artifact says, so
    two codecs agreeing on every byte is a genuine statement about the
    artifacts, not about the spec they came from.
    """

    #: message name -> (message_id, payload_bytes, [(field, tag, off, width)])
    layouts: dict[str, tuple[int, int, list[tuple[str, str, int, int]]]]
    #: message name -> FrameSpec, for messages carrying a CRC trailer
    frames: dict[str, "FrameSpec"] = field(default_factory=dict)

    @classmethod
    def from_artifact(cls, text: str) -> "InterfaceCodec":
        layouts: dict[str, tuple[int, int, list]] = {}
        frames: dict[str, FrameSpec] = {}
        for raw in text.splitlines():
            line = raw.strip().lstrip("-/ ").strip()
            if line.startswith("LAYOUT-MSG "):
                parts = line.split()
                name = parts[1]
                values = dict(p.split("=", 1) for p in parts[2:])
                layouts[name] = (int(values["id"]), int(values["bytes"]), [])
            elif line.startswith("LAYOUT-FIELD "):
                parts = line.split()
                name, fname = parts[1], parts[2]
                values = dict(p.split("=", 1) for p in parts[3:])
                if name not in layouts:
                    raise InterfaceError(
                        f"LAYOUT-FIELD before LAYOUT-MSG for {name!r}"
                    )
                layouts[name][2].append(
                    (fname, values["type"], int(values["offset"]),
                     int(values["width"]))
                )
            elif line.startswith("LAYOUT-FRAME "):
                parts = line.split()
                name = parts[1]
                values = dict(p.split("=", 1) for p in parts[2:])
                if name not in layouts:
                    raise InterfaceError(
                        f"LAYOUT-FRAME before LAYOUT-MSG for {name!r}"
                    )
                frames[name] = FrameSpec(
                    crc=values["crc"],
                    frame_bytes=int(values["frame_bytes"]),
                    max_retries=int(values.get("retries", 0)),
                    retry_backoff_ns=int(values.get("backoff_ns", 2000)),
                    critical=values.get("critical", "0") == "1",
                )
        return cls(layouts, frames)

    def message_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.layouts))

    def message_id(self, name: str) -> int:
        return self.layouts[name][0]

    def pack(self, name: str, values: dict) -> bytes:
        """Encode *values* into the message's byte layout."""
        try:
            _, payload_bytes, fields = self.layouts[name]
        except KeyError:
            raise InterfaceError(f"unknown message {name!r}") from None
        buffer = bytearray(payload_bytes)
        for fname, tag, offset_bits, width_bits in fields:
            if fname not in values:
                raise InterfaceError(f"{name}: missing field {fname!r}")
            encoded = _encode_field(tag, width_bits, values[fname])
            start = offset_bits // 8
            buffer[start:start + len(encoded)] = encoded
        return bytes(buffer)

    def unpack(self, name: str, payload: bytes) -> dict:
        """Decode a payload back into field values."""
        try:
            _, payload_bytes, fields = self.layouts[name]
        except KeyError:
            raise InterfaceError(f"unknown message {name!r}") from None
        if len(payload) != payload_bytes:
            raise InterfaceError(
                f"{name}: payload is {len(payload)} bytes, "
                f"layout says {payload_bytes}"
            )
        values: dict[str, object] = {}
        for fname, tag, offset_bits, width_bits in fields:
            start = offset_bits // 8
            chunk = payload[start:start + (width_bits + 7) // 8]
            try:
                values[fname] = _decode_field(tag, width_bits, chunk)
            except InterfaceError:
                raise
            except (struct.error, UnicodeDecodeError, IndexError,
                    ValueError, OverflowError) as exc:
                raise InterfaceError(
                    f"{name}.{fname}: malformed bytes "
                    f"({chunk.hex() or 'empty'}): {exc}"
                ) from exc
        return values

    # -- reliability framing ------------------------------------------------

    def is_framed(self, name: str) -> bool:
        return name in self.frames

    def wire_bytes(self, name: str) -> int:
        """On-wire size of the message: frame size if protected."""
        if name in self.frames:
            return self.frames[name].frame_bytes
        return self.layouts[name][1]

    def frame(self, name: str, payload: bytes, sequence: int) -> bytes:
        """Append the seq16 + CRC trailer to a packed payload."""
        try:
            spec = self.frames[name]
        except KeyError:
            raise InterfaceError(f"message {name!r} is not framed") from None
        body = payload + (sequence & 0xFFFF).to_bytes(2, "little")
        if spec.crc == "crc8":
            trailer = bytes((crc8(body), 0))
        else:
            trailer = crc16_ccitt(body).to_bytes(2, "little")
        framed = body + trailer
        if len(framed) != spec.frame_bytes:
            raise InterfaceError(
                f"{name}: framed {len(framed)} bytes, "
                f"frame spec says {spec.frame_bytes}"
            )
        return framed

    def deframe(self, name: str, framed: bytes) -> tuple[bytes, int]:
        """Strip and verify the trailer; returns ``(payload, sequence)``.

        Raises :class:`InterfaceError` on any length or CRC mismatch —
        this is the *detection* half of the resilience protocol.
        """
        try:
            spec = self.frames[name]
        except KeyError:
            raise InterfaceError(f"message {name!r} is not framed") from None
        if len(framed) != spec.frame_bytes:
            raise InterfaceError(
                f"{name}: frame is {len(framed)} bytes, "
                f"spec says {spec.frame_bytes}"
            )
        body, trailer = framed[:-2], framed[-2:]
        if spec.crc == "crc8":
            if trailer[1] != 0:
                raise InterfaceError(f"{name}: nonzero CRC-8 pad byte")
            if crc8(body) != trailer[0]:
                raise InterfaceError(f"{name}: CRC-8 mismatch")
        else:
            if crc16_ccitt(body) != int.from_bytes(trailer, "little"):
                raise InterfaceError(f"{name}: CRC-16 mismatch")
        payload, seq_bytes = body[:-2], body[-2:]
        return payload, int.from_bytes(seq_bytes, "little")


def _encode_field(tag: str, width_bits: int, value) -> bytes:
    width_bytes = (width_bits + 7) // 8
    if tag == "real":
        return struct.pack("<d", float(value))
    if tag == "string":
        data = str(value).encode("utf-8")[:width_bytes]
        return data.ljust(width_bytes, b"\x00")
    if tag == "boolean":
        return (b"\x01" if value else b"\x00").ljust(width_bytes, b"\x00")
    if tag.startswith("enum:"):
        return int(value).to_bytes(width_bytes, "little", signed=False)
    # integer / unique_id / timestamp / inst_ref handles
    number = int(value)
    signed = tag == "integer"
    return number.to_bytes(width_bytes, "little", signed=signed)


def _decode_field(tag: str, width_bits: int, chunk: bytes):
    if tag == "real":
        return struct.unpack("<d", chunk)[0]
    if tag == "string":
        return chunk.rstrip(b"\x00").decode("utf-8")
    if tag == "boolean":
        return chunk[0] != 0
    if tag.startswith("enum:"):
        return int.from_bytes(chunk, "little", signed=False)
    signed = tag == "integer"
    return int.from_bytes(chunk, "little", signed=signed)
