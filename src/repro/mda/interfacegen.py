"""Cross-partition interface generation.

Paper section 4: "The two halves are known to fit together because the
interface was generated."  This module is that guarantee, made concrete:

1. :func:`build_interface_spec` derives one :class:`InterfaceSpec` from
   the partition's boundary signals — message ids, field offsets and
   widths are computed exactly once, here.
2. :meth:`InterfaceSpec.emit_c_header` and
   :meth:`InterfaceSpec.emit_vhdl_package` print the C half and the VHDL
   half **from that single spec**.  Both artifacts embed machine-readable
   ``LAYOUT`` lines.
3. :class:`InterfaceCodec` packs/unpacks real bytes from the layout table
   *parsed back out of an emitted artifact* — so experiment E7 can prove
   byte-compatibility of the two halves by reading only the generated
   text, exactly the property the paper claims.

The baseline of experiment E1 (two teams hand-maintaining the same
tables) lives in :mod:`repro.baselines.drift` and reuses the codec, which
is what makes its divergence measurable in defects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.marks.partition import Partition
from repro.xuml.datatypes import bit_width

from .manifest import ComponentManifest, tag_to_dtype
from .naming import banner, c_ident, c_macro, vhdl_ident


class InterfaceError(Exception):
    """Interface spec construction or codec failure."""


@dataclass(frozen=True)
class MessageField:
    """One field of a boundary message: byte-aligned, fixed width."""

    name: str
    dtype_tag: str
    offset_bits: int
    width_bits: int

    @property
    def offset_bytes(self) -> int:
        return self.offset_bits // 8

    @property
    def width_bytes(self) -> int:
        return self.width_bits // 8


@dataclass(frozen=True)
class Message:
    """One boundary signal as a bus message."""

    message_id: int
    name: str                       # e.g. "ce_ce1"
    event_label: str
    sender_class: str
    receiver_class: str
    direction: str                  # "sw_to_hw" or "hw_to_sw"
    fields: tuple[MessageField, ...]

    @property
    def payload_bytes(self) -> int:
        if not self.fields:
            return 4  # minimum transfer unit
        last = self.fields[-1]
        raw = last.offset_bytes + last.width_bytes
        return (raw + 3) // 4 * 4  # padded to 32-bit words

    def field(self, name: str) -> MessageField:
        for f in self.fields:
            if f.name == name:
                return f
        raise InterfaceError(f"message {self.name} has no field {name!r}")


@dataclass
class InterfaceSpec:
    """The single source both interface halves are generated from."""

    component: str
    messages: tuple[Message, ...] = field(default_factory=tuple)

    def message_for(self, receiver_class: str, event_label: str) -> Message:
        for message in self.messages:
            if (message.receiver_class == receiver_class
                    and message.event_label == event_label):
                return message
        raise InterfaceError(
            f"no boundary message for {receiver_class}.{event_label}"
        )

    def has_message(self, receiver_class: str, event_label: str) -> bool:
        try:
            self.message_for(receiver_class, event_label)
            return True
        except InterfaceError:
            return False

    def layout_digest(self) -> tuple:
        """A hashable digest of every id/offset/width in the spec."""
        return tuple(
            (m.message_id, m.name, m.payload_bytes,
             tuple((f.name, f.dtype_tag, f.offset_bits, f.width_bits)
                   for f in m.fields))
            for m in self.messages
        )

    # -- emission -----------------------------------------------------------

    def emit_c_header(self) -> str:
        """The software half: message ids, packed structs, layout table."""
        lines = [banner(f"{self.component} cross-partition interface", "//")]
        lines.append("#ifndef %s_INTERFACE_H" % c_macro(self.component))
        lines.append("#define %s_INTERFACE_H" % c_macro(self.component))
        lines.append("")
        lines.append("#include <stdint.h>")
        lines.append("#include <stdbool.h>")
        lines.append("")
        for message in self.messages:
            lines.append(f"#define MSG_ID_{c_macro(message.name)} "
                         f"{message.message_id}")
        lines.append("")
        for message in self.messages:
            lines.append(f"/* {message.sender_class} -> "
                         f"{message.receiver_class} : {message.event_label} "
                         f"({message.direction}) */")
            lines.append(f"typedef struct {c_ident(message.name)}_msg {{")
            for fld in message.fields:
                ctype = _c_field_type(fld)
                lines.append(f"    {ctype} {c_ident(fld.name)};"
                             f"  /* offset {fld.offset_bytes}B,"
                             f" width {fld.width_bytes}B */")
            if not message.fields:
                lines.append("    uint32_t _reserved;")
            lines.append(f"}} {c_ident(message.name)}_msg_t;")
            lines.append(f"/* payload: {message.payload_bytes} bytes */")
            lines.append("")
        lines.append("/* machine-readable layout table (one line per field):")
        lines.extend(self._layout_lines())
        lines.append("*/")
        lines.append("")
        for message in self.messages:
            name = c_ident(message.name)
            lines.append(f"void pack_{name}(const {name}_msg_t *msg, "
                         "uint8_t *buffer);")
            lines.append(f"void unpack_{name}({name}_msg_t *msg, "
                         "const uint8_t *buffer);")
        lines.append("")
        lines.append("#endif")
        return "\n".join(lines) + "\n"

    def emit_vhdl_package(self) -> str:
        """The hardware half: the same layout as a VHDL package."""
        lines = [banner(f"{self.component} cross-partition interface", "--")]
        lines.append("library ieee;")
        lines.append("use ieee.std_logic_1164.all;")
        lines.append("use ieee.numeric_std.all;")
        lines.append("")
        lines.append(f"package {vhdl_ident(self.component)}_interface_pkg is")
        lines.append("")
        for message in self.messages:
            lines.append(f"    constant MSG_ID_{c_macro(message.name)} : "
                         f"integer := {message.message_id};")
        lines.append("")
        for message in self.messages:
            lines.append(f"    -- {message.sender_class} -> "
                         f"{message.receiver_class} : {message.event_label} "
                         f"({message.direction})")
            lines.append(f"    type {vhdl_ident(message.name)}_msg_t is record")
            for fld in message.fields:
                lines.append(
                    f"        {vhdl_ident(fld.name)} : "
                    f"std_logic_vector({fld.width_bits * 1 - 1} downto 0);"
                    f"  -- offset {fld.offset_bytes}B"
                )
            if not message.fields:
                lines.append("        reserved_field : "
                             "std_logic_vector(31 downto 0);")
            lines.append("    end record;")
            lines.append(f"    -- payload: {message.payload_bytes} bytes")
            lines.append("")
        lines.append("    -- machine-readable layout table"
                      " (one line per field):")
        for line in self._layout_lines():
            lines.append("    --" + line[2:] if line.startswith("--") else
                         "    -- " + line)
        lines.append("")
        lines.append(f"end package {vhdl_ident(self.component)}_interface_pkg;")
        return "\n".join(lines) + "\n"

    def _layout_lines(self) -> list[str]:
        lines = []
        for message in self.messages:
            lines.append(
                f"LAYOUT-MSG {message.name} id={message.message_id} "
                f"bytes={message.payload_bytes} event={message.event_label} "
                f"receiver={message.receiver_class}"
            )
            for fld in message.fields:
                lines.append(
                    f"LAYOUT-FIELD {message.name} {fld.name} "
                    f"type={fld.dtype_tag} offset={fld.offset_bits} "
                    f"width={fld.width_bits}"
                )
        return lines


def _c_field_type(fld: MessageField) -> str:
    if fld.dtype_tag == "real":
        return "double"
    if fld.dtype_tag == "boolean":
        return "uint8_t"
    if fld.dtype_tag == "string":
        return "char"  # fixed array, declared by width
    if fld.width_bytes <= 4:
        return "int32_t" if fld.dtype_tag == "integer" else "uint32_t"
    return "uint64_t"


def _field_width_bits(dtype) -> int:
    """Byte-aligned field width for a data type."""
    bits = bit_width(dtype)
    return (bits + 7) // 8 * 8


def build_interface_spec(
    manifest: ComponentManifest, partition: Partition
) -> InterfaceSpec:
    """Derive the interface from the partition boundary — once.

    Message ids are assigned in sorted (receiver, event) order so the
    same partition always yields the same interface.
    """
    seen: set[tuple[str, str]] = set()
    messages: list[Message] = []
    flows = sorted(
        partition.boundary_flows,
        key=lambda f: (f.receiver_class, f.event_label, f.sender_class),
    )
    next_id = 1
    for flow in flows:
        key = (flow.receiver_class, flow.event_label)
        if key in seen:
            continue  # several senders share one message type
        seen.add(key)
        event = manifest.klass(flow.receiver_class).events[flow.event_label]
        receiver_side = partition.side_of(flow.receiver_class)
        direction = "sw_to_hw" if receiver_side == "hw" else "hw_to_sw"
        fields: list[MessageField] = []
        offset = 0
        # every message addresses a target instance on the far side
        fields.append(MessageField("target_instance", "unique_id", 0, 32))
        offset = 32
        for pname, ptag in event.params:
            dtype = tag_to_dtype(ptag, manifest.enums)
            width = _field_width_bits(dtype)
            fields.append(MessageField(pname, ptag, offset, width))
            offset += width
        messages.append(Message(
            message_id=next_id,
            name=f"{flow.receiver_class.lower()}_{flow.event_label.lower()}",
            event_label=flow.event_label,
            sender_class=flow.sender_class,
            receiver_class=flow.receiver_class,
            direction=direction,
            fields=tuple(fields),
        ))
        next_id += 1
    return InterfaceSpec(manifest.name, tuple(messages))


# ---------------------------------------------------------------------------
# codecs: byte-level pack/unpack driven by an emitted artifact's layout table
# ---------------------------------------------------------------------------

@dataclass
class InterfaceCodec:
    """Packs and unpacks boundary messages from a parsed layout table.

    Build one with :meth:`from_artifact` on *generated text* (C header or
    VHDL package): the codec then knows only what the artifact says, so
    two codecs agreeing on every byte is a genuine statement about the
    artifacts, not about the spec they came from.
    """

    #: message name -> (message_id, payload_bytes, [(field, tag, off, width)])
    layouts: dict[str, tuple[int, int, list[tuple[str, str, int, int]]]]

    @classmethod
    def from_artifact(cls, text: str) -> "InterfaceCodec":
        layouts: dict[str, tuple[int, int, list]] = {}
        for raw in text.splitlines():
            line = raw.strip().lstrip("-/ ").strip()
            if line.startswith("LAYOUT-MSG "):
                parts = line.split()
                name = parts[1]
                values = dict(p.split("=", 1) for p in parts[2:])
                layouts[name] = (int(values["id"]), int(values["bytes"]), [])
            elif line.startswith("LAYOUT-FIELD "):
                parts = line.split()
                name, fname = parts[1], parts[2]
                values = dict(p.split("=", 1) for p in parts[3:])
                if name not in layouts:
                    raise InterfaceError(
                        f"LAYOUT-FIELD before LAYOUT-MSG for {name!r}"
                    )
                layouts[name][2].append(
                    (fname, values["type"], int(values["offset"]),
                     int(values["width"]))
                )
        return cls(layouts)

    def message_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.layouts))

    def message_id(self, name: str) -> int:
        return self.layouts[name][0]

    def pack(self, name: str, values: dict) -> bytes:
        """Encode *values* into the message's byte layout."""
        try:
            _, payload_bytes, fields = self.layouts[name]
        except KeyError:
            raise InterfaceError(f"unknown message {name!r}") from None
        buffer = bytearray(payload_bytes)
        for fname, tag, offset_bits, width_bits in fields:
            if fname not in values:
                raise InterfaceError(f"{name}: missing field {fname!r}")
            encoded = _encode_field(tag, width_bits, values[fname])
            start = offset_bits // 8
            buffer[start:start + len(encoded)] = encoded
        return bytes(buffer)

    def unpack(self, name: str, payload: bytes) -> dict:
        """Decode a payload back into field values."""
        try:
            _, payload_bytes, fields = self.layouts[name]
        except KeyError:
            raise InterfaceError(f"unknown message {name!r}") from None
        if len(payload) != payload_bytes:
            raise InterfaceError(
                f"{name}: payload is {len(payload)} bytes, "
                f"layout says {payload_bytes}"
            )
        values: dict[str, object] = {}
        for fname, tag, offset_bits, width_bits in fields:
            start = offset_bits // 8
            chunk = payload[start:start + (width_bits + 7) // 8]
            values[fname] = _decode_field(tag, width_bits, chunk)
        return values


def _encode_field(tag: str, width_bits: int, value) -> bytes:
    width_bytes = (width_bits + 7) // 8
    if tag == "real":
        return struct.pack("<d", float(value))
    if tag == "string":
        data = str(value).encode("utf-8")[:width_bytes]
        return data.ljust(width_bytes, b"\x00")
    if tag == "boolean":
        return (b"\x01" if value else b"\x00").ljust(width_bytes, b"\x00")
    if tag.startswith("enum:"):
        return int(value).to_bytes(width_bytes, "little", signed=False)
    # integer / unique_id / timestamp / inst_ref handles
    number = int(value)
    signed = tag == "integer"
    return number.to_bytes(width_bytes, "little", signed=signed)


def _decode_field(tag: str, width_bits: int, chunk: bytes):
    if tag == "real":
        return struct.unpack("<d", chunk)[0]
    if tag == "string":
        return chunk.rstrip(b"\x00").decode("utf-8")
    if tag == "boolean":
        return chunk[0] != 0
    if tag.startswith("enum:"):
        return int.from_bytes(chunk, "little", signed=False)
    signed = tag == "integer"
    return int.from_bytes(chunk, "little", signed=signed)
