"""Target-architecture runtime — executes what the compiler emitted.

The abstract runtime (:mod:`repro.runtime`) executes the *model*.  This
module executes the *build manifest*: the lowered IR, state tables and
attribute layouts the generators printed as C and VHDL.  The C and VHDL
architecture simulators (:mod:`repro.mda.csim`, :mod:`repro.mda.vsim`)
subclass :class:`TargetMachine` and supply only their dispatch
discipline; everything they run comes from the manifest, so an emitter
that lowers wrongly fails conformance (experiment E3) instead of slipping
through.

Value semantics (C integer division, handle numbering, attribute
defaults) are kept identical to the abstract runtime on purpose: the
profile promises the model means the same thing before and after
translation.
"""

from __future__ import annotations

from collections import defaultdict

from repro.exec import IRExecutor
from repro.runtime.events import EventPool, SignalInstance
from repro.runtime.tracing import Trace, TraceKind

from .manifest import ClassManifest, ComponentManifest


class ArchError(Exception):
    """Target-architecture execution failure."""


class TargetMachine:
    """Manifest executor with pluggable dispatch (see csim/vsim).

    The machine mirrors the :class:`repro.runtime.Simulation` surface
    closely enough that verification test cases can drive either through
    one adapter.  Action semantics live entirely in the shared execution
    core (:mod:`repro.exec`); this class supplies only storage, links,
    signal queues and dispatch discipline.
    """

    def __init__(self, manifest: ComponentManifest):
        self.manifest = manifest
        self.trace = Trace()
        self.pool = EventPool()
        self.now = 0                       # architecture-specific unit
        self.loop_bound = 100_000
        self.cant_happen_count = 0
        self.executor = IRExecutor(self, error=ArchError,
                                   selection_error=ArchError)
        self.log_lines: list[tuple[int, str]] = []
        self.metrics: dict[str, list[tuple[int, float]]] = {}
        self._next_handle = 1
        self._next_sequence = 1
        self._next_activity = 1
        self._activity_stack: list[int] = []
        #: class key -> handle -> {attr: value}
        self._data: dict[str, dict[int, dict[str, object]]] = {
            key: {} for key in manifest.classes
        }
        self._state: dict[int, str] = {}
        self._class_of: dict[int, str] = {}
        #: assoc -> phrase -> handle -> set(handles)
        self._links: dict[str, dict[str, dict[int, set[int]]]] = {}
        for number, (one, other, _link) in manifest.associations.items():
            self._links[number] = {
                one[1]: defaultdict(set),
                other[1]: defaultdict(set),
            }

    @property
    def execution_core(self) -> str:
        """Which execution core serves this machine's actions."""
        from repro.exec import CORE_NAME

        return f"{CORE_NAME} (lowered action IR)"

    @property
    def ops_executed(self) -> int:
        """Dynamically executed IR statements (shared-core counter)."""
        return self.executor.ops_executed

    # -- population ---------------------------------------------------------

    def create_instance(self, class_key: str, **attribute_values) -> int:
        klass = self._klass(class_key)
        handle = self._next_handle
        self._next_handle += 1
        data = {name: default for name, _tag, default in klass.attributes}
        data.update(attribute_values)
        self._data[class_key][handle] = data
        self._class_of[handle] = class_key
        if klass.is_active:
            self._state[handle] = klass.initial_state
        self.trace.record(
            self.now, TraceKind.INSTANCE_CREATED,
            handle=handle, class_key=class_key,
            state=self._state.get(handle),
        )
        return handle

    def delete_instance(self, handle: int) -> None:
        class_key = self.class_of(handle)
        del self._data[class_key][handle]
        del self._class_of[handle]
        self._state.pop(handle, None)
        for by_phrase in self._links.values():
            for table in by_phrase.values():
                table.pop(handle, None)
                for peers in table.values():
                    peers.discard(handle)
        dropped = self.pool.drop_instance(handle)
        self.trace.record(
            self.now, TraceKind.INSTANCE_DELETED,
            handle=handle, class_key=class_key, pending_dropped=dropped,
        )

    def class_of(self, handle: int) -> str:
        try:
            return self._class_of[handle]
        except KeyError:
            raise ArchError(f"no live instance #{handle}") from None

    def instances_of(self, class_key: str) -> tuple[int, ...]:
        return tuple(sorted(self._data[self._klass(class_key).key]))

    def state_of(self, handle: int) -> str | None:
        self.class_of(handle)
        return self._state.get(handle)

    def read_attribute(self, handle: int, name: str):
        class_key = self.class_of(handle)
        klass = self._klass(class_key)
        if name in klass.derived:
            return self.executor.run(klass.derived[name], handle, {})
        data = self._data[class_key][handle]
        if name not in data:
            raise ArchError(f"{class_key}#{handle} has no attribute {name!r}")
        return data[name]

    def write_attribute(self, handle: int, name: str, value) -> None:
        class_key = self.class_of(handle)
        data = self._data[class_key][handle]
        if name not in data:
            raise ArchError(f"{class_key}#{handle} has no attribute {name!r}")
        data[name] = value

    def _klass(self, class_key: str) -> ClassManifest:
        try:
            return self.manifest.classes[class_key]
        except KeyError:
            raise ArchError(f"manifest has no class {class_key!r}") from None

    # -- links ---------------------------------------------------------------

    def _ends(self, number: str):
        one, other, _link = self.manifest.associations[number]
        return one, other   # (class, phrase, mult)

    def relate(self, left: int, right: int, number: str, phrase=None) -> None:
        left_end, right_end = self._resolve_ends(left, right, number, phrase)
        forward = self._links[number][right_end[1]]
        backward = self._links[number][left_end[1]]
        if right in forward[left]:
            return
        if right_end[2] in ("1", "0..1") and forward[left]:
            raise ArchError(f"{number}: multiplicity overflow at {left}")
        if left_end[2] in ("1", "0..1") and backward[right]:
            raise ArchError(f"{number}: multiplicity overflow at {right}")
        forward[left].add(right)
        backward[right].add(left)

    def unrelate(self, left: int, right: int, number: str, phrase=None) -> None:
        left_end, right_end = self._resolve_ends(left, right, number, phrase)
        forward = self._links[number][right_end[1]]
        backward = self._links[number][left_end[1]]
        if right not in forward[left]:
            raise ArchError(f"{number}: {left} and {right} are not related")
        forward[left].discard(right)
        backward[right].discard(left)

    def _resolve_ends(self, left, right, number, phrase):
        one, other, _link = self.manifest.associations[number]
        left_class = self.class_of(left)
        right_class = self.class_of(right)
        reflexive = one[0] == other[0]
        if reflexive:
            if phrase is None:
                raise ArchError(f"{number} is reflexive; phrase required")
            right_end = one if one[1] == phrase else other
            left_end = other if right_end is one else one
            return left_end, right_end
        if one[0] == right_class:
            right_end, left_end = one, other
        elif other[0] == right_class:
            right_end, left_end = other, one
        else:
            raise ArchError(f"{number}: {right_class} does not participate")
        if left_end[0] != left_class:
            raise ArchError(f"{number}: {left_class} does not participate")
        return left_end, right_end

    def navigate(self, handle: int, number: str, to_class: str,
                 phrase=None) -> tuple[int, ...]:
        one, other, _link = self.manifest.associations[number]
        candidates = [end for end in (one, other) if end[0] == to_class]
        if not candidates:
            raise ArchError(f"{number}: {to_class} does not participate")
        if len(candidates) == 2:
            if phrase is None:
                raise ArchError(f"{number} is reflexive; phrase required")
            candidates = [end for end in candidates if end[1] == phrase]
        elif phrase is not None:
            candidates = [end for end in candidates if end[1] == phrase]
            if not candidates:
                raise ArchError(f"{number}: no {to_class} end phrased {phrase!r}")
        to_end = candidates[0]
        table = self._links[number][to_end[1]]
        return tuple(sorted(table.get(handle, ())))

    # -- signals ----------------------------------------------------------------

    def _stamp(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    @property
    def _current_activity(self) -> int:
        return self._activity_stack[-1] if self._activity_stack else 0

    def send_signal(self, target: int, class_key: str, label: str,
                    params=None, sender=None, delay: int = 0) -> SignalInstance:
        signal = SignalInstance(
            sequence=self._stamp(), label=label, class_key=class_key,
            params=dict(params or {}), target_handle=target,
            sender_handle=sender, activity_id=self._current_activity,
            sent_at=self.now,
        )
        self.trace.record(
            self.now, TraceKind.SIGNAL_SENT,
            sequence=signal.sequence, label=label, target=target,
            sender=sender, activity=signal.activity_id, delay=delay,
        )
        self._enqueue(signal, delay)
        return signal

    def send_creation(self, class_key: str, label: str, params=None,
                      sender=None, delay: int = 0) -> SignalInstance:
        klass = self._klass(class_key)
        if not klass.events[label].creation:
            raise ArchError(f"{class_key}.{label} is not a creation event")
        signal = SignalInstance(
            sequence=self._stamp(), label=label, class_key=class_key,
            params=dict(params or {}), target_handle=None,
            sender_handle=sender, activity_id=self._current_activity,
            sent_at=self.now, is_creation=True,
        )
        self.trace.record(
            self.now, TraceKind.SIGNAL_SENT,
            sequence=signal.sequence, label=label, target=None,
            sender=sender, activity=signal.activity_id, delay=delay,
        )
        self._enqueue(signal, delay)
        return signal

    def inject(self, target: int, label: str, params=None, delay: int = 0):
        return self.send_signal(
            target, self.class_of(target), label, params, sender=None,
            delay=delay,
        )

    def _enqueue(self, signal: SignalInstance, delay: int) -> None:
        """Architecture hook: csim queues immediately, vsim clocks delays."""
        if delay > 0:
            self.pool.push_delayed(signal, self.now + self.scale_delay(delay))
        else:
            self.pool.push_ready(signal)

    def scale_delay(self, delay: int) -> int:
        """Convert a model-time delay into this architecture's time unit."""
        return delay

    # -- dispatch core -------------------------------------------------------------

    def dispatch(self, signal: SignalInstance) -> None:
        if signal.is_creation:
            self._dispatch_creation(signal)
            return
        handle = signal.target_handle
        if handle not in self._class_of:
            self.trace.record(
                self.now, TraceKind.SIGNAL_IGNORED,
                sequence=signal.sequence, label=signal.label, target=handle,
                reason="target deleted",
            )
            return
        klass = self._klass(signal.class_key)
        state = self._state[handle]
        response = klass.response(state, signal.label)
        if response == "ignore":
            self.trace.record(
                self.now, TraceKind.SIGNAL_IGNORED,
                sequence=signal.sequence, label=signal.label, target=handle,
                reason="ignored",
            )
            return
        if response == "cant_happen":
            self.cant_happen_count += 1
            raise ArchError(
                f"event {signal.label} can't happen in state {state} of "
                f"{signal.class_key}#{handle}"
            )
        to_state = klass.transitions[(state, signal.label)]
        self.trace.record(
            self.now, TraceKind.SIGNAL_CONSUMED,
            sequence=signal.sequence, label=signal.label, target=handle,
            sender=signal.sender_handle, sent_activity=signal.activity_id,
        )
        self._state[handle] = to_state
        self.trace.record(
            self.now, TraceKind.TRANSITION,
            handle=handle, class_key=signal.class_key,
            from_state=state, to_state=to_state, label=signal.label,
        )
        self._run_activity(klass, handle, to_state, signal)

    def _dispatch_creation(self, signal: SignalInstance) -> None:
        klass = self._klass(signal.class_key)
        to_state = klass.creations[signal.label]
        handle = self.create_instance(signal.class_key)
        self.trace.record(
            self.now, TraceKind.SIGNAL_CONSUMED,
            sequence=signal.sequence, label=signal.label, target=handle,
            sender=signal.sender_handle, sent_activity=signal.activity_id,
        )
        self._state[handle] = to_state
        self.trace.record(
            self.now, TraceKind.TRANSITION,
            handle=handle, class_key=signal.class_key,
            from_state=None, to_state=to_state, label=signal.label,
        )
        self._run_activity(klass, handle, to_state, signal)

    def _run_activity(self, klass: ClassManifest, handle: int,
                      state: str, signal: SignalInstance) -> None:
        activity_id = self._next_activity
        self._next_activity += 1
        self.trace.record(
            self.now, TraceKind.ACTIVITY_START,
            activity=activity_id, handle=handle, class_key=klass.key,
            state=state, consumed_sequence=signal.sequence,
        )
        self._activity_stack.append(activity_id)
        try:
            self.executor.run(klass.activities[state], handle, signal.params)
        finally:
            self._activity_stack.pop()
            self.trace.record(
                self.now, TraceKind.ACTIVITY_END,
                activity=activity_id, handle=handle, class_key=klass.key,
                state=state,
            )

    # -- bridges and operations ------------------------------------------------------

    def call_bridge(self, self_handle, entity: str, operation: str, kwargs):
        self.trace.record(
            self.now, TraceKind.BRIDGE_CALL,
            entity=entity, operation=operation, handle=self_handle,
        )
        if entity == "LOG" and operation == "info":
            self.log_lines.append((self.now, str(kwargs.get("message", ""))))
            return None
        if entity == "LOG" and operation == "metric":
            self.metrics.setdefault(str(kwargs.get("name", "")), []).append(
                (self.now, float(kwargs.get("value", 0.0))))
            return None
        if entity == "TIM" and operation == "current_time":
            return self.now
        if entity == "TIM" and operation == "timer_start":
            class_key = self.class_of(self_handle)
            self.send_signal(
                self_handle, class_key, str(kwargs.get("event", "")),
                sender=self_handle, delay=int(kwargs.get("duration", 0)),
            )
            return 0
        if entity == "TIM" and operation == "timer_cancel":
            label = str(kwargs.get("event", ""))
            return self.pool.cancel_delayed(
                lambda s: s.target_handle == self_handle and s.label == label
            )
        raise ArchError(f"no architecture bridge for {entity}::{operation}")

    def call_operation(self, class_key: str, name: str, self_handle, kwargs):
        klass = self._klass(class_key)
        operation = klass.operations[name]
        return self.executor.run(operation.ir, self_handle, kwargs)

    def call_class_operation(self, class_key: str, name: str, kwargs: dict):
        return self.call_operation(class_key, name, None, kwargs)

    def call_instance_operation(self, handle: int, name: str, kwargs: dict):
        return self.call_operation(self.class_of(handle), name, handle, kwargs)
