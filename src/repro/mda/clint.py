"""Structural checker for generated C.

No compiler is available offline, so the toolchain validates its own C
output structurally: balanced braces/parens, terminated statements,
include-guard discipline, switch/case shape, and no use of identifiers
the architecture does not declare.  The point is not to re-implement gcc
but to catch emitter regressions the conformance tests cannot see (they
execute the manifest, not the text).
"""

from __future__ import annotations

import re

from repro.analysis.findings import LintFinding

__all__ = ["LintFinding", "lint_c"]


_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _strip_comments_and_strings(text: str) -> str:
    """Remove /*...*/, //... and string/char literals, preserving newlines."""
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        two = text[i:i + 2]
        if two == "/*":
            end = text.find("*/", i + 2)
            if end == -1:
                out.append("\n" * text.count("\n", i))
                break
            out.append("\n" * text.count("\n", i, end + 2))
            i = end + 2
        elif two == "//":
            end = text.find("\n", i)
            if end == -1:
                break
            i = end
        elif text[i] in ('"', "'"):
            quote = text[i]
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            out.append('""' if quote == '"' else "'c'")
            i = j + 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def lint_c(path: str, text: str) -> list[LintFinding]:
    """All structural findings for one C artifact."""
    findings: list[LintFinding] = []
    stripped = _strip_comments_and_strings(text)

    # brace / paren balance with line tracking
    for open_char, close_char, what in (("{", "}", "brace"),
                                        ("(", ")", "parenthesis")):
        depth = 0
        line = 1
        for char in stripped:
            if char == "\n":
                line += 1
            elif char == open_char:
                depth += 1
            elif char == close_char:
                depth -= 1
                if depth < 0:
                    findings.append(LintFinding(
                        path, line, f"unbalanced closing {what}"))
                    depth = 0
        if depth > 0:
            findings.append(LintFinding(
                path, line, f"{depth} unclosed {what}(s)"))

    if path.endswith(".h"):
        if "#ifndef" not in text or "#define" not in text:
            findings.append(LintFinding(path, 1, "header lacks include guard"))
        guards = re.findall(r"#ifndef\s+(\w+)", text)
        defines = re.findall(r"#define\s+(\w+)", text)
        if guards and guards[0] not in defines:
            findings.append(LintFinding(
                path, 1, f"guard {guards[0]} never #defined"))

    # every case inside a switch must end in break/return/continue before
    # the next case (fall-through is never emitted by this compiler)
    lines = stripped.splitlines()
    pending_case_line = None
    terminated = True
    for lineno, line in enumerate(lines, start=1):
        code = line.strip()
        if re.match(r"(case\s+.+|default)\s*:", code):
            if pending_case_line is not None and not terminated:
                findings.append(LintFinding(
                    path, pending_case_line,
                    "case falls through without break"))
            pending_case_line = lineno
            terminated = False
        elif re.match(r"switch\s*\(", code):
            # a nested switch is the case's body; its own cases are
            # checked on their own, so the outer case is accounted for
            pending_case_line = None
            terminated = True
        elif re.search(r"\b(break|return|continue)\b", code):
            terminated = True
        elif code.startswith("}"):
            pending_case_line = None
            terminated = True

    # statements end with ';' '{' '}' ':' or are preprocessor lines
    # (scanned on comment-stripped text so comment bodies are exempt)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        code = line.strip()
        if not code or code.startswith(("#", "//", "/*", "*", "*/")):
            continue
        if code.endswith(("{", "}", ";", ":", ",", ")", "*/")):
            continue
        if re.match(r"(typedef|struct|enum|union)\b", code):
            continue
        if _looks_like_signature(code):
            continue
        findings.append(LintFinding(
            path, lineno, f"suspicious line ending: {code[-20:]!r}"))
    return findings


def _looks_like_signature(code: str) -> bool:
    """Multi-line declarator/continuation lines are fine unterminated."""
    return bool(re.match(r"[A-Za-z_][\w \t\*]*\(", code)) or code.endswith("&&") \
        or code.endswith("||") or code.endswith("=") or code.endswith("(")
