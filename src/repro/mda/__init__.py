"""Model mappings (paper section 4): the model compiler and its targets.

* :class:`ModelCompiler` / :class:`Build` — the mapping pipeline
* :class:`RuleSet` — marks select which mapping rule applies
* :class:`InterfaceSpec` / :class:`InterfaceCodec` — both interface
  halves generated from one spec, byte-compatible by construction
* :class:`CSoftwareMachine` / :class:`VHardwareMachine` — the generated
  architectures, executed (manifest-driven)
* :func:`lint_c` / :func:`lint_vhdl` — structural checks on emitted text
"""

from .actionir import ir_op_counts, lower_block, walk_ir_statements
from .archrt import ArchError, TargetMachine
from .cgen import CGenerator
from .clint import LintFinding, lint_c
from .compiler import Build, ModelCompiler
from .csim import CSoftwareMachine
from .interfacegen import (
    FrameSpec,
    InterfaceCodec,
    InterfaceError,
    InterfaceSpec,
    Message,
    MessageField,
    Protection,
    build_interface_spec,
    crc8,
    crc16_ccitt,
)
from .manifest import (
    ClassManifest,
    ComponentManifest,
    build_manifest,
    dtype_tag,
    tag_to_dtype,
)
from .naming import c_ident, c_macro, snake_case, vhdl_ident
from .rules import (
    HARDWARE_RULE,
    SOFTWARE_RULE,
    MappingRule,
    RuleError,
    RuleSet,
)
from .syscgen import SYSTEMC_RULE, SystemCGenerator
from .vhdlgen import VhdlGenerator
from .vlint import lint_vhdl
from .vsim import VHardwareMachine

__all__ = [
    "ArchError",
    "Build",
    "CGenerator",
    "CSoftwareMachine",
    "ClassManifest",
    "ComponentManifest",
    "FrameSpec",
    "HARDWARE_RULE",
    "InterfaceCodec",
    "InterfaceError",
    "InterfaceSpec",
    "LintFinding",
    "MappingRule",
    "Message",
    "MessageField",
    "ModelCompiler",
    "Protection",
    "RuleError",
    "RuleSet",
    "SOFTWARE_RULE",
    "SYSTEMC_RULE",
    "SystemCGenerator",
    "TargetMachine",
    "VHardwareMachine",
    "VhdlGenerator",
    "build_interface_spec",
    "build_manifest",
    "c_ident",
    "c_macro",
    "crc8",
    "crc16_ccitt",
    "dtype_tag",
    "ir_op_counts",
    "lint_c",
    "lint_vhdl",
    "lower_block",
    "snake_case",
    "tag_to_dtype",
    "vhdl_ident",
    "walk_ir_statements",
]
