"""The VHDL-architecture simulator — the generated hardware, executed.

Mirrors the clocked FSM discipline of the emitted entities: on every
rising edge each instance bank consumes **at most one** pending event
(self-directed first, per-instance FIFO otherwise) and runs its entry
action; everything an action emits becomes visible at the *next* edge,
the registered-output behaviour of the generated processes.  Model-time
delays (microseconds) are converted to cycles with the marked clock.

Within one cycle all instances fire "simultaneously": the dispatch set is
snapshotted before any action runs, so an instance cannot react within
the same cycle to a signal raised in it — exactly what the registered
FSM does in hardware.
"""

from __future__ import annotations

from repro.runtime.events import SignalInstance

from .archrt import ArchError, TargetMachine
from .manifest import ComponentManifest


class VHardwareMachine(TargetMachine):
    """Executes the hardware half the way the generated entities do."""

    architecture = "vhdl-clocked"

    def __init__(self, manifest: ComponentManifest, clock_mhz: int = 100):
        super().__init__(manifest)
        if clock_mhz < 1:
            raise ArchError("clock must be at least 1 MHz")
        self.clock_mhz = clock_mhz
        self.cycle = 0

    def scale_delay(self, delay: int) -> int:
        """Model microseconds -> clock cycles (ceil: never early)."""
        return -(-delay * self.clock_mhz // 1)

    def _enqueue(self, signal: SignalInstance, delay: int) -> None:
        if delay > 0:
            due = self.now + self.scale_delay(delay)
        elif self._activity_stack:
            due = self.now + 1     # registered output: visible next edge
        else:
            due = self.now         # environment stimulus: sampled this edge
        if due > self.now:
            self.pool.push_delayed(signal, due)
        else:
            self.pool.push_ready(signal)

    def tick(self) -> int:
        """One rising edge.  Returns how many events were consumed."""
        self.pool.release_due(self.now)
        # snapshot: one event per instance bank, plus one creation slot
        sources = list(self.pool.ready_handles())
        signals: list[SignalInstance] = [
            self.pool.pop_for(handle) for handle in sources
        ]
        if self.pool.has_ready_creation():
            signals.append(self.pool.pop_creation())
        for signal in signals:
            self.dispatch(signal)
        self.cycle += 1
        self.now += 1
        return len(signals)

    def run_cycles(self, cycles: int) -> int:
        consumed = 0
        for _ in range(cycles):
            consumed += self.tick()
        return consumed

    def run_to_quiescence(self, max_cycles: int = 10_000_000) -> int:
        """Clock until no event is pending or scheduled.  Returns cycles."""
        cycles = 0
        while cycles < max_cycles:
            if self.pool.is_idle():
                break
            if self.pool.ready_count == 0:
                due = self.pool.next_due_time()
                if due is None:
                    break
                # fast-forward the clock to the next scheduled edge
                # (idle edges are free; only active ticks count below)
                self.cycle += due - self.now
                self.now = due
            self.tick()
            cycles += 1
        else:
            raise ArchError(f"no quiescence within {max_cycles} cycles")
        return cycles

    def run_until(self, time_us: int, max_cycles: int = 10_000_000) -> int:
        """Clock until model time *time_us* (µs × clock = target cycle)."""
        target_cycle = time_us * self.clock_mhz
        cycles = 0
        while self.now < target_cycle:
            if self.pool.is_idle():
                self.cycle = target_cycle
                self.now = target_cycle
                break
            if self.pool.ready_count == 0:
                due = self.pool.next_due_time()
                if due is None or due > target_cycle:
                    self.cycle = target_cycle
                    self.now = target_cycle
                    break
                self.cycle += due - self.now
                self.now = due
            self.tick()
            cycles += 1
            if cycles > max_cycles:
                raise ArchError(f"exceeded {max_cycles} cycles")
        return cycles
