"""The model compiler — one specification in, two consistent halves out.

Paper section 4: "Repeatable mappings are defined that produce compilable
text (e.g., C, VHDL) according to a single consistent set of
architectural rules. ... The result is several text files of two (in this
example) types.  One is all the C that is to be implemented in software;
the other is VHDL.  The two halves are known to fit together because the
interface was generated."

:class:`ModelCompiler.compile` does exactly that pipeline:

1. lower the component to its build manifest (parse + analyze + IR);
2. derive the partition from the marks;
3. resolve each class against the mapping :class:`~repro.mda.rules.RuleSet`;
4. emit C for the software classes, VHDL for the hardware classes,
   the kernel/runtime support files, and both halves of the generated
   interface — all collected into a :class:`Build`.

The emission steps are module-level pure functions of the manifest so
that :class:`repro.build.IncrementalCompiler` can replay any subset of
them against cached inputs and produce byte-identical artifacts.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

from repro.marks.model import MarkSet
from repro.marks.partition import Partition, derive_partition
from repro.xuml.component import Component
from repro.xuml.model import Model

from .cgen import CGenerator
from .clint import LintFinding, lint_c
from .interfacegen import InterfaceSpec, build_interface_spec
from .manifest import ComponentManifest, build_manifest
from .naming import c_ident, vhdl_ident
from .rules import RuleSet
from .vhdlgen import VhdlGenerator
from .vlint import lint_vhdl


@dataclass(frozen=True)
class ClassPlan:
    """Which emitter claims each class, per the mapping rules."""

    #: class key letters -> name of the mapping rule that claimed it
    rules_applied: dict[str, str]
    software: tuple[str, ...]
    hardware: tuple[str, ...]
    systemc: tuple[str, ...]

    def target_of(self, class_key: str) -> str:
        if class_key in self.hardware:
            return "vhdl"
        if class_key in self.systemc:
            return "systemc"
        return "c"


def classify_classes(
    component: Component, rules: RuleSet, marks: MarkSet
) -> ClassPlan:
    """Resolve every class of *component* to its mapping target."""
    rules_applied: dict[str, str] = {}
    software: list[str] = []
    hardware: list[str] = []
    systemc: list[str] = []
    for klass in component.classes:
        path = f"{component.name}.{klass.key_letters}"
        rule = rules.resolve(path, marks)
        rules_applied[klass.key_letters] = rule.name
        if rule.target == "vhdl":
            hardware.append(klass.key_letters)
        elif rule.target == "systemc":
            systemc.append(klass.key_letters)
        else:
            software.append(klass.key_letters)
    return ClassPlan(
        rules_applied, tuple(software), tuple(hardware), tuple(systemc)
    )


def emit_types_artifacts(
    manifest: ComponentManifest, component_name: str
) -> dict[str, str]:
    """The shared C types header (emitted for every build)."""
    comp = c_ident(component_name)
    return {f"{comp}_types.h": CGenerator(manifest).emit_types_header()}


def emit_c_runtime_artifacts(
    manifest: ComponentManifest, component_name: str
) -> dict[str, str]:
    """The single-task software architecture (when any class is software)."""
    comp = c_ident(component_name)
    cgen = CGenerator(manifest)
    return {
        f"{comp}_arch_rt.h": cgen.emit_arch_header(),
        f"{comp}_kernel.c": cgen.emit_kernel_source(),
    }


def emit_vhdl_runtime_artifacts(
    manifest: ComponentManifest, component_name: str
) -> dict[str, str]:
    """The clocked hardware runtime package (when any class is hardware)."""
    return {
        f"{vhdl_ident(component_name)}_rt_pkg.vhd": (
            VhdlGenerator(manifest).emit_runtime_package()),
    }


def emit_class_artifacts(
    manifest: ComponentManifest, component_name: str, class_key: str,
    target: str, marks: MarkSet,
) -> dict[str, str]:
    """Every artifact attributable to one class under one mapping target."""
    klass = manifest.classes[class_key]
    if target == "vhdl":
        clock = marks.get(f"{component_name}.{class_key}", "clock_mhz")
        return {
            f"{vhdl_ident(klass.name)}.vhd": (
                VhdlGenerator(manifest).emit_entity(klass, clock_mhz=clock)),
        }
    if target == "systemc":
        from .syscgen import SystemCGenerator

        return {
            f"{c_ident(klass.name)}_sc.h": (
                SystemCGenerator(manifest).emit_module(klass)),
        }
    comp = c_ident(component_name)
    kl = c_ident(class_key)
    cgen = CGenerator(manifest)
    return {
        f"{comp}_{kl}.h": cgen.emit_class_header(klass),
        f"{comp}_{kl}.c": cgen.emit_class_source(klass),
    }


def emit_interface_artifacts(
    interface: InterfaceSpec, component_name: str
) -> dict[str, str]:
    """Both halves of the generated interface, from the one spec."""
    comp = c_ident(component_name)
    return {
        f"{comp}_interface.h": interface.emit_c_header(),
        f"{vhdl_ident(component_name)}_interface_pkg.vhd": (
            interface.emit_vhdl_package()),
    }


@dataclass
class Build:
    """Everything one compilation produced."""

    model: Model
    component_name: str
    manifest: ComponentManifest
    partition: Partition
    interface: InterfaceSpec
    #: class key letters -> name of the mapping rule that claimed it
    rules_applied: dict[str, str]
    #: artifact file name -> generated text
    artifacts: dict[str, str] = field(default_factory=dict)

    @property
    def c_artifacts(self) -> dict[str, str]:
        return {p: t for p, t in self.artifacts.items()
                if p.endswith((".c", ".h"))}

    @property
    def vhdl_artifacts(self) -> dict[str, str]:
        return {p: t for p, t in self.artifacts.items() if p.endswith(".vhd")}

    def total_lines(self) -> int:
        """Generated lines of text — the E2 cost proxy for a rewrite."""
        return sum(text.count("\n") for text in self.artifacts.values())

    def lines_for_class(self, class_key: str) -> int:
        """Generated lines attributable to one class's artifacts."""
        needle_c = c_ident(class_key)
        needle_v = vhdl_ident(self.manifest.classes[class_key].name)
        total = 0
        for path, text in self.artifacts.items():
            stem = path.rsplit(".", 1)[0]
            if stem.endswith(f"_{needle_c}") or stem == needle_v:
                total += text.count("\n")
        return total

    def lint(self) -> list[LintFinding]:
        """Run the structural checkers over every artifact."""
        findings: list[LintFinding] = []
        for path, text in self.artifacts.items():
            if path.endswith((".c", ".h")):
                findings.extend(lint_c(path, text))
            elif path.endswith(".vhd"):
                findings.extend(lint_vhdl(path, text))
        return findings

    def write_to(self, directory) -> list[str]:
        """Materialize the artifacts on disk; returns written paths.

        Each file is written to a temporary sibling and renamed into
        place, so an interrupted export never leaves a partial artifact
        — readers see either the old text or the new, never a torn file.
        """
        import pathlib

        root = pathlib.Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        written = []
        for path, text in sorted(self.artifacts.items()):
            target = root / path
            fd, tmp = tempfile.mkstemp(dir=root, prefix=f".{path}.")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, target)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            written.append(str(target))
        return written


class ModelCompiler:
    """Compiles one component of a model against a mark set."""

    def __init__(
        self,
        model: Model,
        component: str | None = None,
        rules: RuleSet | None = None,
    ):
        self.model = model
        if component is None:
            components = model.components
            if len(components) != 1:
                raise ValueError("model has several components; name one")
            self.component = components[0]
        else:
            self.component = model.component(component)
        self.rules = rules or RuleSet.standard()

    def compile(self, marks: MarkSet) -> Build:
        """Run the full mapping pipeline for *marks*."""
        manifest = build_manifest(self.model, self.component)
        partition = derive_partition(self.model, self.component, marks)
        return self.assemble(manifest, partition, marks)

    def assemble(
        self, manifest: ComponentManifest, partition: Partition,
        marks: MarkSet,
    ) -> Build:
        """Emit every artifact for precomputed *manifest* + *partition*."""
        name = self.component.name
        interface = build_interface_spec(manifest, partition, marks)
        plan = classify_classes(self.component, self.rules, marks)

        artifacts: dict[str, str] = {}
        artifacts.update(emit_types_artifacts(manifest, name))
        if plan.software:
            artifacts.update(emit_c_runtime_artifacts(manifest, name))
            for key in plan.software:
                artifacts.update(
                    emit_class_artifacts(manifest, name, key, "c", marks))
        if plan.hardware:
            artifacts.update(emit_vhdl_runtime_artifacts(manifest, name))
            for key in plan.hardware:
                artifacts.update(
                    emit_class_artifacts(manifest, name, key, "vhdl", marks))
        for key in plan.systemc:
            artifacts.update(
                emit_class_artifacts(manifest, name, key, "systemc", marks))

        # the generated interface: both halves from one spec, always
        artifacts.update(emit_interface_artifacts(interface, name))

        # a snapshot of the sticky notes this build answered to
        artifacts["marks.mks"] = marks.dumps()

        return Build(
            model=self.model,
            component_name=name,
            manifest=manifest,
            partition=partition,
            interface=interface,
            rules_applied=plan.rules_applied,
            artifacts=artifacts,
        )
