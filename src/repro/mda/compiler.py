"""The model compiler — one specification in, two consistent halves out.

Paper section 4: "Repeatable mappings are defined that produce compilable
text (e.g., C, VHDL) according to a single consistent set of
architectural rules. ... The result is several text files of two (in this
example) types.  One is all the C that is to be implemented in software;
the other is VHDL.  The two halves are known to fit together because the
interface was generated."

:class:`ModelCompiler.compile` does exactly that pipeline:

1. lower the component to its build manifest (parse + analyze + IR);
2. derive the partition from the marks;
3. resolve each class against the mapping :class:`~repro.mda.rules.RuleSet`;
4. emit C for the software classes, VHDL for the hardware classes,
   the kernel/runtime support files, and both halves of the generated
   interface — all collected into a :class:`Build`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.marks.model import MarkSet
from repro.marks.partition import Partition, derive_partition
from repro.xuml.model import Model

from .cgen import CGenerator
from .clint import LintFinding, lint_c
from .interfacegen import InterfaceSpec, build_interface_spec
from .manifest import ComponentManifest, build_manifest
from .naming import c_ident, vhdl_ident
from .rules import RuleSet
from .vhdlgen import VhdlGenerator
from .vlint import lint_vhdl


@dataclass
class Build:
    """Everything one compilation produced."""

    model: Model
    component_name: str
    manifest: ComponentManifest
    partition: Partition
    interface: InterfaceSpec
    #: class key letters -> name of the mapping rule that claimed it
    rules_applied: dict[str, str]
    #: artifact file name -> generated text
    artifacts: dict[str, str] = field(default_factory=dict)

    @property
    def c_artifacts(self) -> dict[str, str]:
        return {p: t for p, t in self.artifacts.items()
                if p.endswith((".c", ".h"))}

    @property
    def vhdl_artifacts(self) -> dict[str, str]:
        return {p: t for p, t in self.artifacts.items() if p.endswith(".vhd")}

    def total_lines(self) -> int:
        """Generated lines of text — the E2 cost proxy for a rewrite."""
        return sum(text.count("\n") for text in self.artifacts.values())

    def lines_for_class(self, class_key: str) -> int:
        """Generated lines attributable to one class's artifacts."""
        needle_c = c_ident(class_key)
        needle_v = vhdl_ident(self.manifest.classes[class_key].name)
        total = 0
        for path, text in self.artifacts.items():
            stem = path.rsplit(".", 1)[0]
            if stem.endswith(f"_{needle_c}") or stem == needle_v:
                total += text.count("\n")
        return total

    def lint(self) -> list[LintFinding]:
        """Run the structural checkers over every artifact."""
        findings: list[LintFinding] = []
        for path, text in self.artifacts.items():
            if path.endswith((".c", ".h")):
                findings.extend(lint_c(path, text))
            elif path.endswith(".vhd"):
                findings.extend(lint_vhdl(path, text))
        return findings

    def write_to(self, directory) -> list[str]:
        """Materialize the artifacts on disk; returns written paths."""
        import pathlib

        root = pathlib.Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        written = []
        for path, text in sorted(self.artifacts.items()):
            target = root / path
            target.write_text(text)
            written.append(str(target))
        return written


class ModelCompiler:
    """Compiles one component of a model against a mark set."""

    def __init__(
        self,
        model: Model,
        component: str | None = None,
        rules: RuleSet | None = None,
    ):
        self.model = model
        if component is None:
            components = model.components
            if len(components) != 1:
                raise ValueError("model has several components; name one")
            self.component = components[0]
        else:
            self.component = model.component(component)
        self.rules = rules or RuleSet.standard()

    def compile(self, marks: MarkSet) -> Build:
        """Run the full mapping pipeline for *marks*."""
        manifest = build_manifest(self.model, self.component)
        partition = derive_partition(self.model, self.component, marks)
        interface = build_interface_spec(manifest, partition, marks)

        rules_applied: dict[str, str] = {}
        artifacts: dict[str, str] = {}
        comp = c_ident(self.component.name)

        cgen = CGenerator(manifest)
        vgen = VhdlGenerator(manifest)

        software: list[str] = []
        hardware: list[str] = []
        systemc: list[str] = []
        for klass in self.component.classes:
            path = f"{self.component.name}.{klass.key_letters}"
            rule = self.rules.resolve(path, marks)
            rules_applied[klass.key_letters] = rule.name
            if rule.target == "vhdl":
                hardware.append(klass.key_letters)
            elif rule.target == "systemc":
                systemc.append(klass.key_letters)
            else:
                software.append(klass.key_letters)

        artifacts[f"{comp}_types.h"] = cgen.emit_types_header()
        if software:
            artifacts[f"{comp}_arch_rt.h"] = cgen.emit_arch_header()
            artifacts[f"{comp}_kernel.c"] = cgen.emit_kernel_source()
            for key in software:
                klass = manifest.classes[key]
                kl = c_ident(key)
                artifacts[f"{comp}_{kl}.h"] = cgen.emit_class_header(klass)
                artifacts[f"{comp}_{kl}.c"] = cgen.emit_class_source(klass)
        if hardware:
            artifacts[f"{vhdl_ident(self.component.name)}_rt_pkg.vhd"] = (
                vgen.emit_runtime_package())
            for key in hardware:
                klass = manifest.classes[key]
                clock = marks.get(
                    f"{self.component.name}.{key}", "clock_mhz")
                artifacts[f"{vhdl_ident(klass.name)}.vhd"] = (
                    vgen.emit_entity(klass, clock_mhz=clock))

        if systemc:
            from .syscgen import SystemCGenerator

            scgen = SystemCGenerator(manifest)
            for key in systemc:
                klass = manifest.classes[key]
                artifacts[f"{c_ident(klass.name)}_sc.h"] = (
                    scgen.emit_module(klass))

        # the generated interface: both halves from one spec, always
        artifacts[f"{comp}_interface.h"] = interface.emit_c_header()
        artifacts[f"{vhdl_ident(self.component.name)}_interface_pkg.vhd"] = (
            interface.emit_vhdl_package())

        # a snapshot of the sticky notes this build answered to
        artifacts["marks.mks"] = marks.dumps()

        return Build(
            model=self.model,
            component_name=self.component.name,
            manifest=manifest,
            partition=partition,
            interface=interface,
            rules_applied=rules_applied,
            artifacts=artifacts,
        )
