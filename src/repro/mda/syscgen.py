"""The SystemC mapping — a third target, added without touching models.

The paper's complaint about SystemC is that it is a *starting point* that
"presumes too much implementation" (section 1).  Nothing stops it being a
*target*: this module adds a SystemC emitter and a mapping rule selected
by the ``processor`` mark, demonstrating section 3's promise — "this
allows for retargeting models to different implementation technologies as
they change" — as a working extension: no model edits, no new metamodel,
one new rule prepended to the rule set.

Each class maps to an ``SC_MODULE`` with a clocked ``SC_METHOD``, the
state table as nested switches, attributes as member data, and events as
a typed payload union — the same manifest the C and VHDL emitters print.
"""

from __future__ import annotations

from .manifest import ClassManifest, ComponentManifest, tag_to_dtype
from .naming import banner, c_ident, c_macro, c_type_of
from .rules import MappingRule

#: the mark value that routes a class to the SystemC mapping
SYSTEMC_PROCESSOR = "systemc"


def _is_systemc(path: str, marks) -> bool:
    return marks.get(path, "processor") == SYSTEMC_PROCESSOR


SYSTEMC_RULE = MappingRule(
    "systemc-class", "systemc", _is_systemc,
    "classes marked processor=systemc map to an SC_MODULE",
)

_BIN_CPP = {
    "and": "&&", "or": "||", "==": "==", "!=": "!=",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
}


class SystemCGenerator:
    """Emits SystemC (C++) modules from the build manifest."""

    def __init__(self, manifest: ComponentManifest):
        self._manifest = manifest

    def emit_module(self, klass: ClassManifest) -> str:
        m = self._manifest
        name = c_ident(klass.name)
        lines = [banner(f"class {klass.name} ({klass.key}) — SystemC "
                        "mapping", "//")]
        guard = f"{c_macro(m.name)}_{c_macro(klass.key)}_SC_H"
        lines.append(f"#ifndef {guard}")
        lines.append(f"#define {guard}")
        lines.append("")
        lines.append("#include <systemc.h>")
        lines.append(f'#include "{c_ident(m.name)}_types.h"')
        lines.append("")
        lines.append(f"SC_MODULE({name}) {{")
        lines.append("    sc_in<bool> clk;")
        lines.append("    sc_in<bool> rst_n;")
        lines.append("    sc_fifo_in<int> ev_id;")
        lines.append("    sc_fifo_in<sc_bv<256> > ev_payload;")
        lines.append("    sc_fifo_out<int> out_msg_id;")
        lines.append("")
        if klass.states:
            lines.append("    enum state_t {")
            for state_name, number in klass.states:
                lines.append(f"        ST_{c_macro(state_name)} = {number},")
            lines.append("    };")
            lines.append("    state_t current_state;")
        for attr_name, tag, _default in klass.attributes:
            ctype = c_type_of(tag_to_dtype(tag, m.enums))
            lines.append(f"    {ctype} {c_ident(attr_name)};")
        lines.append("")
        lines.append(f"    SC_CTOR({name}) {{")
        lines.append("        SC_METHOD(step);")
        lines.append("        sensitive << clk.pos();")
        if klass.initial_state is not None:
            lines.append(f"        current_state = "
                         f"ST_{c_macro(klass.initial_state)};")
        lines.append("    }")
        lines.append("")
        lines.append("    void step() {")
        lines.append("        if (!rst_n.read()) {")
        if klass.initial_state is not None:
            lines.append(f"            current_state = "
                         f"ST_{c_macro(klass.initial_state)};")
        lines.append("            return;")
        lines.append("        }")
        lines.append("        int event;")
        lines.append("        if (!ev_id.nb_read(event)) return;")
        lines.append("        switch (current_state) {")
        for state_name, _number in klass.states:
            lines.append(f"        case ST_{c_macro(state_name)}:")
            lines.append("            switch (event) {")
            for index, label in enumerate(sorted(klass.events), start=1):
                if klass.events[label].creation:
                    continue
                response = klass.response(state_name, label)
                lines.append(f"            case {index}: /* {label} */")
                if response == "transition":
                    to_state = klass.transitions[(state_name, label)]
                    lines.append(f"                current_state = "
                                 f"ST_{c_macro(to_state)};")
                    lines.append(f"                enter_{c_ident(to_state)}();")
                elif response == "ignore":
                    lines.append("                /* ignored */")
                else:
                    lines.append("                SC_REPORT_ERROR"
                                 f"(\"{klass.key}\", \"cant happen\");")
                lines.append("                break;")
            lines.append("            default:")
            lines.append("                break;")
            lines.append("            }")
            lines.append("            break;")
        lines.append("        }")
        lines.append("    }")
        lines.append("")
        for state_name, _number in klass.states:
            lines.append(f"    void enter_{c_ident(state_name)}() {{")
            body = self._action_lines(klass, state_name)
            for line in body:
                lines.append("        " + line)
            lines.append("    }")
            lines.append("")
        lines.append("};")
        lines.append("")
        lines.append("#endif")
        return "\n".join(lines) + "\n"

    def _action_lines(self, klass: ClassManifest, state: str) -> list[str]:
        printer = _SysCPrinter(self._manifest, klass)
        lines: list[str] = []
        printer.print_block(klass.activities.get(state, []), lines, 0)
        return lines or ["/* no actions */"]


class _SysCPrinter:
    """Prints action IR as SystemC-flavoured C++ statements."""

    def __init__(self, manifest: ComponentManifest, klass: ClassManifest):
        self._m = manifest
        self._klass = klass

    def _pad(self, indent: int) -> str:
        return "    " * indent

    def print_block(self, block: list, lines: list, indent: int) -> None:
        for stmt in block:
            self.print_stmt(stmt, lines, indent)

    def print_stmt(self, stmt: list, lines: list, indent: int) -> None:
        pad = self._pad(indent)
        tag = stmt[0]
        if tag == "assign_var":
            lines.append(f"{pad}auto {c_ident(stmt[1])} = "
                         f"{self.expr(stmt[2])};")
        elif tag == "assign_attr":
            if stmt[1][0] == "self":
                lines.append(f"{pad}{c_ident(stmt[2])} = "
                             f"{self.expr(stmt[3])};")
            else:
                lines.append(f"{pad}rt_attr_write({self.expr(stmt[1])}, "
                             f"\"{stmt[2]}\", {self.expr(stmt[3])});")
        elif tag == "generate":
            target = self.expr(stmt[4]) if stmt[4] is not None else "0"
            delay = self.expr(stmt[5]) if stmt[5] is not None else "0"
            lines.append(f"{pad}rt_generate(CLASS_{c_macro(stmt[2])}, "
                         f"/*{stmt[1]}*/ 0, {target}, {delay});")
        elif tag == "if":
            first = True
            for cond, body in stmt[1]:
                keyword = "if" if first else "} else if"
                lines.append(f"{pad}{keyword} ({self.expr(cond)}) {{")
                self.print_block(body, lines, indent + 1)
                first = False
            if stmt[2] is not None:
                lines.append(f"{pad}}} else {{")
                self.print_block(stmt[2], lines, indent + 1)
            lines.append(f"{pad}}}")
        elif tag == "while":
            lines.append(f"{pad}while ({self.expr(stmt[1])}) {{")
            self.print_block(stmt[2], lines, indent + 1)
            lines.append(f"{pad}}}")
        elif tag in ("create", "delete", "select_extent", "select_related",
                     "relate", "unrelate", "foreach"):
            lines.append(f"{pad}/* population op via architecture: "
                         f"{tag} */")
        elif tag == "break":
            lines.append(f"{pad}break;")
        elif tag == "continue":
            lines.append(f"{pad}continue;")
        elif tag == "return":
            value = self.expr(stmt[1]) if stmt[1] is not None else ""
            lines.append(f"{pad}return {value};".replace(" ;", ";"))
        elif tag == "exprstmt":
            lines.append(f"{pad}(void)({self.expr(stmt[1])});")
        else:
            raise ValueError(f"cannot print IR statement {tag!r}")

    def expr(self, ir: list) -> str:
        tag = ir[0]
        if tag == "int":
            return str(ir[1])
        if tag == "real":
            return repr(float(ir[1]))
        if tag == "str":
            return f"\"{ir[1]}\""
        if tag == "bool":
            return "true" if ir[1] else "false"
        if tag == "enum":
            return f"{c_macro(ir[1])}_{c_macro(ir[2])}"
        if tag == "self":
            return "this_handle"
        if tag == "selected":
            return "selected"
        if tag == "var":
            return c_ident(ir[1])
        if tag == "param":
            return f"params.{c_ident(ir[1])}"
        if tag == "attr":
            if ir[1][0] == "self":
                return c_ident(ir[2])
            return f"rt_attr_read({self.expr(ir[1])}, \"{ir[2]}\")"
        if tag == "un":
            op = ir[1]
            operand = self.expr(ir[2])
            if op == "-":
                return f"(-{operand})"
            if op == "not":
                return f"(!{operand})"
            return f"rt_{op}({operand})"
        if tag == "bin":
            return (f"({self.expr(ir[2])} {_BIN_CPP[ir[1]]} "
                    f"{self.expr(ir[3])})")
        if tag == "bridge":
            args = ", ".join(self.expr(v) for _n, v in ir[3])
            return f"rt_bridge_{c_ident(ir[1])}_{c_ident(ir[2])}({args})"
        if tag in ("classop", "instop"):
            args = ", ".join(self.expr(v) for _n, v in ir[3])
            return f"op_{c_ident(ir[2])}({args})"
        raise ValueError(f"cannot print IR expression {tag!r}")
