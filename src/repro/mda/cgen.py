"""The C mapping — software half of the model compiler.

Maps every software-partition class onto C text under one architectural
rule set (paper section 4):

* one ``<class>.h`` / ``<class>.c`` pair per class: state and event
  enums, per-event parameter structs, the instance data struct, and a
  ``<class>_dispatch`` function whose nested ``switch`` realizes the
  state transition table;
* action language lowered to C statements; instance/relationship
  dynamics become calls into the architecture runtime API (``rt_*``),
  declared in the emitted ``arch_rt.h`` — the classic xtUML software
  architecture shape;
* a ``kernel.c`` with the event queue discipline the profile demands
  (per-instance FIFO, self-directed events first) and the single-task
  main loop.

The emitted text is printed *from the build manifest*, the same lowered
IR the C-architecture simulator executes, so text and behaviour are two
views of one artifact.
"""

from __future__ import annotations

from .manifest import ClassManifest, ComponentManifest
from .naming import banner, c_ident, c_macro, c_type_of
from .manifest import tag_to_dtype

_BIN_C = {
    "and": "&&", "or": "||", "==": "==", "!=": "!=",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
}


class CGenerator:
    """Emits the C artifacts of one component's software partition."""

    def __init__(self, manifest: ComponentManifest):
        self._manifest = manifest
        self._temp_counter = 0

    # -- public entry points -------------------------------------------------

    def emit_types_header(self) -> str:
        m = self._manifest
        lines = [banner(f"{m.name} shared types", "//")]
        lines.append(f"#ifndef {c_macro(m.name)}_TYPES_H")
        lines.append(f"#define {c_macro(m.name)}_TYPES_H")
        lines.append("")
        lines.append("#include <stdint.h>")
        lines.append("#include <stdbool.h>")
        lines.append("#include <stddef.h>")
        lines.append("")
        lines.append("typedef uint32_t instance_handle_t;")
        lines.append("#define RT_NULL_HANDLE ((instance_handle_t)0u)")
        lines.append("typedef struct instance_set {")
        lines.append("    instance_handle_t *items;")
        lines.append("    size_t count;")
        lines.append("} instance_set_t;")
        lines.append("")
        for name, enumerators in sorted(m.enums.items()):
            lines.append(f"typedef enum {c_ident(name)} {{")
            for code, enumerator in enumerate(enumerators):
                lines.append(f"    {c_macro(name)}_{c_macro(enumerator)} = {code},")
            lines.append(f"}} {c_ident(name)}_t;")
            lines.append("")
        lines.append("typedef enum class_id {")
        for key in sorted(m.classes):
            lines.append(f"    CLASS_{c_macro(key)} = {m.classes[key].number},")
        lines.append("} class_id_t;")
        lines.append("")
        lines.append("#endif")
        return "\n".join(lines) + "\n"

    def emit_arch_header(self) -> str:
        m = self._manifest
        lines = [banner(f"{m.name} architecture runtime API", "//")]
        lines.append(f"#ifndef {c_macro(m.name)}_ARCH_RT_H")
        lines.append(f"#define {c_macro(m.name)}_ARCH_RT_H")
        lines.append("")
        lines.append(f'#include "{c_ident(m.name)}_types.h"')
        lines.append("")
        lines.append("instance_handle_t rt_create(class_id_t cls);")
        lines.append("void rt_delete(instance_handle_t inst);")
        lines.append("instance_set_t rt_instances_of(class_id_t cls);")
        lines.append("instance_set_t rt_navigate(instance_handle_t from,")
        lines.append("                           int assoc, class_id_t to_cls,")
        lines.append("                           const char *phrase);")
        lines.append("void rt_relate(instance_handle_t a, instance_handle_t b,")
        lines.append("               int assoc, const char *phrase);")
        lines.append("void rt_unrelate(instance_handle_t a, instance_handle_t b,")
        lines.append("                 int assoc, const char *phrase);")
        lines.append("void rt_generate(class_id_t cls, int event_id,")
        lines.append("                 instance_handle_t target,")
        lines.append("                 uint64_t delay, const void *params);")
        lines.append("void rt_generate_creation(class_id_t cls, int event_id,")
        lines.append("                          uint64_t delay, const void *params);")
        lines.append("double rt_bridge(const char *entity, const char *op,")
        lines.append("                 const void *args);")
        lines.append("void rt_set_free(instance_set_t set);")
        lines.append("")
        lines.append("#endif")
        return "\n".join(lines) + "\n"

    def emit_class_header(self, klass: ClassManifest) -> str:
        m = self._manifest
        kl = c_ident(klass.key)
        lines = [banner(f"class {klass.name} ({klass.key})", "//")]
        lines.append(f"#ifndef {c_macro(m.name)}_{c_macro(klass.key)}_H")
        lines.append(f"#define {c_macro(m.name)}_{c_macro(klass.key)}_H")
        lines.append("")
        lines.append(f'#include "{c_ident(m.name)}_types.h"')
        lines.append("")
        if klass.states:
            lines.append(f"typedef enum {kl}_state {{")
            for name, number in klass.states:
                lines.append(f"    {c_macro(klass.key)}_STATE_{c_macro(name)} = {number},")
            lines.append(f"}} {kl}_state_t;")
            lines.append("")
        if klass.events:
            lines.append(f"typedef enum {kl}_event {{")
            for index, label in enumerate(sorted(klass.events), start=1):
                lines.append(f"    {c_macro(klass.key)}_EV_{c_macro(label)} = {index},")
            lines.append(f"}} {kl}_event_t;")
            lines.append("")
        for label in sorted(klass.events):
            event = klass.events[label]
            if not event.params:
                continue
            lines.append(f"typedef struct {kl}_{c_ident(label)}_params {{")
            for pname, ptag in event.params:
                ctype = c_type_of(tag_to_dtype(ptag, m.enums))
                lines.append(f"    {ctype} {c_ident(pname)};")
            lines.append(f"}} {kl}_{c_ident(label)}_params_t;")
            lines.append("")
        lines.append(f"typedef struct {kl}_data {{")
        lines.append("    instance_handle_t handle;")
        if klass.states:
            lines.append(f"    {kl}_state_t state;")
        for name, tag, _default in klass.attributes:
            ctype = c_type_of(tag_to_dtype(tag, m.enums))
            lines.append(f"    {ctype} {c_ident(name)};")
        lines.append(f"}} {kl}_data_t;")
        lines.append("")
        lines.append(f"{kl}_data_t *{kl}_data(instance_handle_t inst);")
        if klass.states:
            lines.append(f"void {kl}_dispatch(instance_handle_t inst, "
                         f"{kl}_event_t event, const void *params);")
        for op_name, op in sorted(klass.operations.items()):
            ret = "void" if op.returns is None else c_type_of(
                tag_to_dtype(op.returns, m.enums))
            args = ["instance_handle_t self_inst"] if op.instance_based else []
            args += [
                f"{c_type_of(tag_to_dtype(ptag, m.enums))} {c_ident(pname)}"
                for pname, ptag in op.params
            ]
            lines.append(f"{ret} {kl}_op_{c_ident(op_name)}"
                         f"({', '.join(args) or 'void'});")
        lines.append("")
        lines.append("#endif")
        return "\n".join(lines) + "\n"

    def emit_class_source(self, klass: ClassManifest) -> str:
        m = self._manifest
        kl = c_ident(klass.key)
        lines = [banner(f"class {klass.name} ({klass.key}) behaviour", "//")]
        lines.append(f'#include "{c_ident(m.name)}_{kl}.h"')
        lines.append(f'#include "{c_ident(m.name)}_arch_rt.h"')
        lines.append("")

        for state_name, _number in klass.states:
            lines.append(self._emit_entry_action(klass, state_name))
            lines.append("")

        for op_name in sorted(klass.operations):
            lines.append(self._emit_operation(klass, op_name))
            lines.append("")

        if klass.states:
            lines.append(self._emit_dispatch(klass))
        return "\n".join(lines) + "\n"

    def emit_kernel_source(self) -> str:
        m = self._manifest
        lines = [banner(f"{m.name} software kernel", "//")]
        lines.append(f'#include "{c_ident(m.name)}_types.h"')
        lines.append(f'#include "{c_ident(m.name)}_arch_rt.h"')
        lines.append("")
        lines.append("/* Event queue discipline (profile rules):")
        lines.append(" *  - one FIFO pair per instance: self-directed events")
        lines.append(" *    are consumed before any other pending event;")
        lines.append(" *  - each dispatched event runs to completion before")
        lines.append(" *    the next is consumed (single task, one thread).")
        lines.append(" */")
        lines.append("typedef struct queued_event {")
        lines.append("    class_id_t cls;")
        lines.append("    int event_id;")
        lines.append("    instance_handle_t target;")
        lines.append("    instance_handle_t sender;")
        lines.append("    uint64_t due_time;")
        lines.append("    unsigned char params[64];")
        lines.append("    struct queued_event *next;")
        lines.append("} queued_event_t;")
        lines.append("")
        lines.append("static queued_event_t *self_queue_head;")
        lines.append("static queued_event_t *other_queue_head;")
        lines.append("static uint64_t now_us;")
        lines.append("")
        lines.append("void kernel_enqueue(queued_event_t *ev, bool self_directed)")
        lines.append("{")
        lines.append("    queued_event_t **head =")
        lines.append("        self_directed ? &self_queue_head : &other_queue_head;")
        lines.append("    while (*head) head = &(*head)->next;")
        lines.append("    ev->next = 0;")
        lines.append("    *head = ev;")
        lines.append("}")
        lines.append("")
        lines.append("queued_event_t *kernel_next(void)")
        lines.append("{")
        lines.append("    queued_event_t *ev = self_queue_head;")
        lines.append("    if (ev) { self_queue_head = ev->next; return ev; }")
        lines.append("    ev = other_queue_head;")
        lines.append("    if (ev) { other_queue_head = ev->next; return ev; }")
        lines.append("    return 0;")
        lines.append("}")
        lines.append("")
        lines.append("void kernel_run(void)")
        lines.append("{")
        lines.append("    queued_event_t *ev;")
        lines.append("    while ((ev = kernel_next()) != 0) {")
        lines.append("        if (ev->due_time > now_us) now_us = ev->due_time;")
        lines.append("        kernel_dispatch_to_class(ev);  /* run to completion */")
        lines.append("    }")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- internals ---------------------------------------------------------------

    def _emit_entry_action(self, klass: ClassManifest, state_name: str) -> str:
        kl = c_ident(klass.key)
        ir = klass.activities.get(state_name, [])
        params = self._entering_params(klass, state_name)
        body = self._print_block(klass, ir, params, indent=1)
        lines = [f"/* entry action of state {state_name} */"]
        lines.append(f"static void {kl}_enter_{c_ident(state_name)}"
                     f"(instance_handle_t self_inst, const void *event_params)")
        lines.append("{")
        if params:
            struct = f"{kl}_entry_{c_ident(state_name)}_view"
            lines.append("    /* parameters shared by every entering event */")
            lines.append("    struct {")
            for pname, ptag in params:
                ctype = c_type_of(tag_to_dtype(ptag, self._manifest.enums))
                lines.append(f"        {ctype} {c_ident(pname)};")
            lines.append("    } const *params_view = event_params;")
            lines.append(f"    (void)sizeof(struct {struct} *);")
        else:
            lines.append("    (void)event_params;")
        lines.append("    (void)self_inst;")
        if body.strip():
            lines.append(body)
        lines.append("}")
        return "\n".join(lines)

    def _entering_params(self, klass: ClassManifest, state_name: str):
        """Parameters every event entering *state_name* shares (ordered)."""
        labels = sorted(
            {ev for (_s, ev), to in klass.transitions.items() if to == state_name}
            | {ev for ev, to in klass.creations.items() if to == state_name}
        )
        if not labels:
            return []
        shared = list(klass.events[labels[0]].params)
        for label in labels[1:]:
            theirs = dict(klass.events[label].params)
            shared = [(n, t) for n, t in shared if theirs.get(n) == t]
        return shared

    def _emit_operation(self, klass: ClassManifest, op_name: str) -> str:
        m = self._manifest
        kl = c_ident(klass.key)
        op = klass.operations[op_name]
        ret = "void" if op.returns is None else c_type_of(
            tag_to_dtype(op.returns, m.enums))
        args = ["instance_handle_t self_inst"] if op.instance_based else []
        args += [
            f"{c_type_of(tag_to_dtype(ptag, m.enums))} {c_ident(pname)}"
            for pname, ptag in op.params
        ]
        params = list(op.params)
        body = self._print_block(klass, op.ir, params, indent=1,
                                 params_are_args=True)
        lines = [f"{ret} {kl}_op_{c_ident(op_name)}({', '.join(args) or 'void'})"]
        lines.append("{")
        if op.instance_based:
            lines.append("    (void)self_inst;")
        if body.strip():
            lines.append(body)
        lines.append("}")
        return "\n".join(lines)

    def _emit_dispatch(self, klass: ClassManifest) -> str:
        kl = c_ident(klass.key)
        km = c_macro(klass.key)
        lines = [f"/* state transition table of {klass.key}, as code */"]
        lines.append(f"void {kl}_dispatch(instance_handle_t inst, "
                     f"{kl}_event_t event, const void *params)")
        lines.append("{")
        lines.append(f"    {kl}_data_t *self_data = {kl}_data(inst);")
        lines.append("    switch (self_data->state) {")
        for state_name, _num in klass.states:
            lines.append(f"    case {km}_STATE_{c_macro(state_name)}:")
            lines.append("        switch (event) {")
            for label in sorted(klass.events):
                if klass.events[label].creation:
                    continue
                response = klass.response(state_name, label)
                lines.append(f"        case {km}_EV_{c_macro(label)}:")
                if response == "transition":
                    to_state = klass.transitions[(state_name, label)]
                    lines.append(
                        f"            self_data->state = "
                        f"{km}_STATE_{c_macro(to_state)};")
                    lines.append(
                        f"            {kl}_enter_{c_ident(to_state)}"
                        f"(inst, params);")
                    lines.append("            break;")
                elif response == "ignore":
                    lines.append("            /* ignored */")
                    lines.append("            break;")
                else:
                    lines.append(
                        "            rt_cant_happen(inst, (int)event);")
                    lines.append("            break;")
            lines.append("        default:")
            lines.append("            rt_cant_happen(inst, (int)event);")
            lines.append("            break;")
            lines.append("        }")
            lines.append("        break;")
        lines.append("    }")
        lines.append("}")
        return "\n".join(lines)

    # -- IR printing ---------------------------------------------------------------

    def _print_block(self, klass: ClassManifest, block: list, params,
                     indent: int, params_are_args: bool = False) -> str:
        printer = _CPrinter(self._manifest, klass, dict(params), params_are_args)
        printer.scan_var_classes(block)
        lines: list[str] = []
        declared: set[str] = set()
        printer.collect_locals(block, declared, lines, indent)
        printer.print_block(block, lines, indent)
        return "\n".join(lines)


class _CPrinter:
    def __init__(self, manifest, klass, params, params_are_args):
        self._m = manifest
        self._klass = klass
        self._params = params
        self._params_are_args = params_are_args
        self._tmp = 0
        self._var_classes: dict[str, str] = {}
        self._selected_class: str | None = None
        self._filter_class: str = klass.key

    def scan_var_classes(self, block: list) -> None:
        """Record which class each instance-valued local refers to."""
        from .actionir import walk_ir_statements

        for stmt in walk_ir_statements(block):
            tag = stmt[0]
            if tag == "create" or tag == "select_extent":
                self._var_classes[stmt[1]] = stmt[2] if tag == "create" else stmt[3]
            elif tag == "select_related":
                self._var_classes[stmt[1]] = stmt[4][-1][0]
            elif tag == "foreach":
                iterable = stmt[2]
                if iterable[0] == "var" and iterable[1] in self._var_classes:
                    self._var_classes[stmt[1]] = self._var_classes[iterable[1]]

    def _pad(self, indent: int) -> str:
        return "    " * indent

    # locals are declared up-front, C89-style, typed from the IR shape
    def collect_locals(self, block: list, declared: set, lines, indent) -> None:
        from .actionir import walk_ir_statements

        for stmt in walk_ir_statements(block):
            tag = stmt[0]
            if tag == "assign_var" and stmt[1] not in declared:
                declared.add(stmt[1])
                lines.append(f"{self._pad(indent)}double {c_ident(stmt[1])} = 0; "
                             "/* inferred scalar */")
            elif tag == "create" and stmt[1] not in declared:
                declared.add(stmt[1])
                lines.append(f"{self._pad(indent)}instance_handle_t "
                             f"{c_ident(stmt[1])} = RT_NULL_HANDLE;")
            elif tag in ("select_extent", "select_related"):
                if stmt[1] in declared:
                    continue
                declared.add(stmt[1])
                if stmt[2]:  # many
                    lines.append(f"{self._pad(indent)}instance_set_t "
                                 f"{c_ident(stmt[1])} = {{0, 0}};")
                else:
                    lines.append(f"{self._pad(indent)}instance_handle_t "
                                 f"{c_ident(stmt[1])} = RT_NULL_HANDLE;")
            elif tag == "foreach" and stmt[1] not in declared:
                declared.add(stmt[1])
                lines.append(f"{self._pad(indent)}instance_handle_t "
                             f"{c_ident(stmt[1])} = RT_NULL_HANDLE;")

    def print_block(self, block: list, lines: list, indent: int) -> None:
        for stmt in block:
            self.print_stmt(stmt, lines, indent)

    def print_stmt(self, stmt: list, lines: list, indent: int) -> None:
        pad = self._pad(indent)
        tag = stmt[0]
        if tag == "assign_var":
            lines.append(f"{pad}{c_ident(stmt[1])} = {self.expr(stmt[2])};")
        elif tag == "assign_attr":
            target = self.instance_data(stmt[1])
            lines.append(f"{pad}{target}->{c_ident(stmt[2])} = "
                         f"{self.expr(stmt[3])};")
        elif tag == "create":
            lines.append(f"{pad}{c_ident(stmt[1])} = "
                         f"rt_create(CLASS_{c_macro(stmt[2])});")
        elif tag == "delete":
            lines.append(f"{pad}rt_delete({self.expr(stmt[1])});")
        elif tag == "select_extent":
            self._print_select_extent(stmt, lines, indent)
        elif tag == "select_related":
            self._print_select_related(stmt, lines, indent)
        elif tag == "relate":
            phrase = f'"{stmt[4]}"' if stmt[4] else "0"
            lines.append(f"{pad}rt_relate({self.expr(stmt[1])}, "
                         f"{self.expr(stmt[2])}, {stmt[3][1:]}, {phrase});")
        elif tag == "unrelate":
            phrase = f'"{stmt[4]}"' if stmt[4] else "0"
            lines.append(f"{pad}rt_unrelate({self.expr(stmt[1])}, "
                         f"{self.expr(stmt[2])}, {stmt[3][1:]}, {phrase});")
        elif tag == "generate":
            self._print_generate(stmt, lines, indent)
        elif tag == "if":
            first = True
            for cond, body in stmt[1]:
                keyword = "if" if first else "} else if"
                lines.append(f"{pad}{keyword} ({self.expr(cond)}) {{")
                self.print_block(body, lines, indent + 1)
                first = False
            if stmt[2] is not None:
                lines.append(f"{pad}}} else {{")
                self.print_block(stmt[2], lines, indent + 1)
            lines.append(f"{pad}}}")
        elif tag == "while":
            lines.append(f"{pad}while ({self.expr(stmt[1])}) {{")
            self.print_block(stmt[2], lines, indent + 1)
            lines.append(f"{pad}}}")
        elif tag == "foreach":
            loop = f"it_{self._next_tmp()}"
            set_expr = self.expr(stmt[2])
            lines.append(f"{pad}for (size_t {loop} = 0; "
                         f"{loop} < {set_expr}.count; ++{loop}) {{")
            lines.append(f"{self._pad(indent + 1)}{c_ident(stmt[1])} = "
                         f"{set_expr}.items[{loop}];")
            self.print_block(stmt[3], lines, indent + 1)
            lines.append(f"{pad}}}")
        elif tag == "break":
            lines.append(f"{pad}break;")
        elif tag == "continue":
            lines.append(f"{pad}continue;")
        elif tag == "return":
            if stmt[1] is None:
                lines.append(f"{pad}return;")
            else:
                lines.append(f"{pad}return {self.expr(stmt[1])};")
        elif tag == "exprstmt":
            lines.append(f"{pad}(void){self.expr(stmt[1])};")
        else:
            raise ValueError(f"cannot print IR statement {tag!r}")

    def _print_select_extent(self, stmt, lines, indent) -> None:
        pad = self._pad(indent)
        var, many, class_key, where = stmt[1], stmt[2], stmt[3], stmt[4]
        self._filter_class = class_key
        if where is None and many:
            lines.append(f"{pad}{c_ident(var)} = "
                         f"rt_instances_of(CLASS_{c_macro(class_key)});")
            return
        tmp = f"cand_{self._next_tmp()}"
        lines.append(f"{pad}{{")
        inner = self._pad(indent + 1)
        lines.append(f"{inner}instance_set_t {tmp} = "
                     f"rt_instances_of(CLASS_{c_macro(class_key)});")
        self._print_filter(lines, indent + 1, tmp, var, many, where)
        lines.append(f"{pad}}}")

    def _print_select_related(self, stmt, lines, indent) -> None:
        pad = self._pad(indent)
        var, many, start, hops, where = stmt[1], stmt[2], stmt[3], stmt[4], stmt[5]
        self._filter_class = hops[-1][0]
        tmp = f"nav_{self._next_tmp()}"
        lines.append(f"{pad}{{")
        inner = self._pad(indent + 1)
        current = self.expr(start)
        lines.append(f"{inner}instance_set_t {tmp} = "
                     f"rt_single({current});")
        for class_key, assoc, phrase in hops:
            phrase_c = f'"{phrase}"' if phrase else "0"
            lines.append(f"{inner}{tmp} = rt_navigate_set({tmp}, "
                         f"{assoc[1:]}, CLASS_{c_macro(class_key)}, {phrase_c});")
        self._print_filter(lines, indent + 1, tmp, var, many, where)
        lines.append(f"{pad}}}")

    def _print_filter(self, lines, indent, tmp, var, many, where) -> None:
        inner = self._pad(indent)
        if where is None:
            if many:
                lines.append(f"{inner}{c_ident(var)} = {tmp};")
            else:
                lines.append(f"{inner}{c_ident(var)} = "
                             f"{tmp}.count ? {tmp}.items[0] : RT_NULL_HANDLE;")
            return
        loop = f"wi_{self._next_tmp()}"
        if many:
            lines.append(f"{inner}{c_ident(var)} = rt_set_empty();")
        else:
            lines.append(f"{inner}{c_ident(var)} = RT_NULL_HANDLE;")
        lines.append(f"{inner}for (size_t {loop} = 0; "
                     f"{loop} < {tmp}.count; ++{loop}) {{")
        body = self._pad(indent + 1)
        lines.append(f"{body}instance_handle_t selected = {tmp}.items[{loop}];")
        outer_selected = self._selected_class
        self._selected_class = self._filter_class
        try:
            lines.append(f"{body}if (!({self.expr(where)})) continue;")
        finally:
            self._selected_class = outer_selected
        if many:
            lines.append(f"{body}rt_set_add(&{c_ident(var)}, selected);")
        else:
            lines.append(f"{body}{c_ident(var)} = selected;")
            lines.append(f"{body}break;")
        lines.append(f"{inner}}}")

    def _print_generate(self, stmt, lines, indent) -> None:
        pad = self._pad(indent)
        label, class_key, args, target, delay = (
            stmt[1], stmt[2], stmt[3], stmt[4], stmt[5])
        kl = c_ident(class_key)
        km = c_macro(class_key)
        delay_c = self.expr(delay) if delay is not None else "0"
        if args:
            tmp = f"ev_{self._next_tmp()}"
            lines.append(f"{pad}{{")
            inner = self._pad(indent + 1)
            lines.append(f"{inner}{kl}_{c_ident(label)}_params_t {tmp};")
            for name, value in args:
                lines.append(f"{inner}{tmp}.{c_ident(name)} = "
                             f"{self.expr(value)};")
            params_ref = f"&{tmp}"
            if target is None:
                lines.append(f"{inner}rt_generate_creation(CLASS_{km}, "
                             f"{km}_EV_{c_macro(label)}, {delay_c}, {params_ref});")
            else:
                lines.append(f"{inner}rt_generate(CLASS_{km}, "
                             f"{km}_EV_{c_macro(label)}, {self.expr(target)}, "
                             f"{delay_c}, {params_ref});")
            lines.append(f"{pad}}}")
        else:
            if target is None:
                lines.append(f"{pad}rt_generate_creation(CLASS_{km}, "
                             f"{km}_EV_{c_macro(label)}, {delay_c}, 0);")
            else:
                lines.append(f"{pad}rt_generate(CLASS_{km}, "
                             f"{km}_EV_{c_macro(label)}, {self.expr(target)}, "
                             f"{delay_c}, 0);")

    def _next_tmp(self) -> int:
        self._tmp += 1
        return self._tmp

    # -- expressions ------------------------------------------------------------

    def instance_data(self, expr_ir: list) -> str:
        """C lvalue base for attribute access on an instance expression."""
        handle = self.expr(expr_ir)
        class_key = self._class_of_expr(expr_ir)
        return f"{c_ident(class_key)}_data({handle})"

    def _class_of_expr(self, expr_ir: list) -> str:
        """Class whose data struct an instance-valued expression denotes."""
        tag = expr_ir[0]
        if tag == "self":
            return self._klass.key
        if tag == "selected" and self._selected_class is not None:
            return self._selected_class
        if tag == "var":
            return self._var_classes.get(expr_ir[1], self._klass.key)
        if tag == "param":
            ptag = dict(self._params).get(expr_ir[1], "")
            if isinstance(ptag, str) and ptag.startswith("inst_ref:"):
                return ptag.split(":", 1)[1]
            return self._klass.key
        if tag == "attr":
            owner = self._class_of_expr(expr_ir[1])
            attr_tag = self._attr_tag(owner, expr_ir[2])
            if attr_tag.startswith("inst_ref:"):
                return attr_tag.split(":", 1)[1]
        return self._klass.key

    def _attr_tag(self, class_key: str, attr: str) -> str:
        manifest = self._m.classes.get(class_key)
        if manifest is not None:
            for name, tag, _default in manifest.attributes:
                if name == attr:
                    return tag
        return "integer"

    def expr(self, ir: list) -> str:
        tag = ir[0]
        if tag == "int":
            return str(ir[1])
        if tag == "real":
            return repr(float(ir[1]))
        if tag == "str":
            escaped = ir[1].replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if tag == "bool":
            return "true" if ir[1] else "false"
        if tag == "enum":
            return f"{c_macro(ir[1])}_{c_macro(ir[2])}"
        if tag == "self":
            return "self_inst"
        if tag == "selected":
            return "selected"
        if tag == "var":
            return c_ident(ir[1])
        if tag == "param":
            if self._params_are_args:
                return c_ident(ir[1])
            return f"params_view->{c_ident(ir[1])}"
        if tag == "attr":
            base = ir[1]
            owner_data = self._attr_owner_data(base)
            return f"{owner_data}->{c_ident(ir[2])}"
        if tag == "un":
            op = ir[1]
            operand = self.expr(ir[2])
            if op == "-":
                return f"(-{operand})"
            if op == "not":
                return f"(!{operand})"
            if op == "cardinality":
                return f"rt_cardinality({operand})"
            if op == "empty":
                return f"(rt_cardinality({operand}) == 0)"
            if op == "not_empty":
                return f"(rt_cardinality({operand}) != 0)"
            raise ValueError(f"unknown unary {op!r}")
        if tag == "bin":
            return (f"({self.expr(ir[2])} {_BIN_C[ir[1]]} "
                    f"{self.expr(ir[3])})")
        if tag == "bridge":
            args = ", ".join(self.expr(value) for _n, value in ir[3]) or "0"
            return f'rt_bridge("{ir[1]}", "{ir[2]}", ({args}))'
        if tag == "classop":
            kl = c_ident(ir[1])
            args = ", ".join(self.expr(value) for _n, value in ir[3])
            return f"{kl}_op_{c_ident(ir[2])}({args})"
        if tag == "instop":
            # instance operations: owner class is the target's class
            args = [self.expr(ir[1])]
            args += [self.expr(value) for _n, value in ir[3]]
            owner = self._instop_owner(ir[2])
            return f"{c_ident(owner)}_op_{c_ident(ir[2])}({', '.join(args)})"
        raise ValueError(f"cannot print IR expression {tag!r}")

    def _attr_owner_data(self, base_ir: list) -> str:
        if base_ir[0] == "self":
            return f"{c_ident(self._klass.key)}_data(self_inst)"
        handle = self.expr(base_ir)
        owner = self._class_of_expr(base_ir)
        return f"{c_ident(owner)}_data({handle})"

    def _instop_owner(self, op_name: str) -> str:
        for key, manifest in self._m.classes.items():
            if op_name in manifest.operations:
                return key
        return self._klass.key
