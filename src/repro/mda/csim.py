"""The C-architecture simulator — the generated software, executed.

Mirrors the dispatch discipline of the emitted ``kernel.c``: a single
task draining two global FIFOs (self-directed events first, then send
order), each dispatched event running to completion.  Time is the model's
microsecond clock; delayed events re-enter the queues at their due time,
exactly like the kernel's timer list.
"""

from __future__ import annotations

from repro.runtime.events import SignalInstance

from .archrt import ArchError, TargetMachine
from .manifest import ComponentManifest


class CSoftwareMachine(TargetMachine):
    """Executes the software half the way the generated kernel does."""

    architecture = "c-single-task"

    def __init__(self, manifest: ComponentManifest):
        super().__init__(manifest)

    def _choose_source(self) -> int | None:
        """kernel_next(): global self queue first, then global FIFO."""
        candidates: list[tuple[bool, int, int]] = []
        for handle in self.pool.ready_handles():
            head = self.pool.peek_for(handle)
            candidates.append((not head.is_self_directed, head.sequence, handle))
        if self.pool.has_ready_creation():
            candidates.append((True, self.pool._creations[0].sequence, -1))
        if not candidates:
            return None
        return min(candidates)[2]

    def step(self) -> bool:
        self.pool.release_due(self.now)
        source = self._choose_source()
        if source is None:
            return False
        if source == -1:
            signal: SignalInstance = self.pool.pop_creation()
        else:
            signal = self.pool.pop_for(source)
        self.dispatch(signal)
        return True

    def run_to_quiescence(self, max_steps: int = 1_000_000) -> int:
        steps = 0
        while steps < max_steps:
            if self.step():
                steps += 1
                continue
            due = self.pool.next_due_time()
            if due is None:
                break
            self.now = max(self.now, due)
        else:
            raise ArchError(f"no quiescence within {max_steps} steps")
        return steps

    def run_until(self, time: int, max_steps: int = 1_000_000) -> int:
        if time < self.now:
            raise ArchError("cannot run backwards")
        steps = 0
        while True:
            while self.step():
                steps += 1
                if steps > max_steps:
                    raise ArchError(f"exceeded {max_steps} steps")
            due = self.pool.next_due_time()
            if due is None or due > time:
                break
            self.now = max(self.now, due)
        self.now = time
        return steps
