"""The VHDL mapping — hardware half of the model compiler.

Maps every hardware-partition class onto behavioural VHDL under the same
architectural rules as the C mapping:

* one entity per class, with a clock, a reset, an incoming event port
  (event id + parameter record from the generated interface package) and
  an outgoing event port towards the signal router;
* one clocked FSM process realizing the state transition table as nested
  ``case`` statements — the Moore-style formulation of the profile is
  exactly an FSM with entry actions;
* attributes become registers; bounded action code is printed inline as
  sequential statements; instance-population dynamics route through the
  emitted runtime package ``<component>_rt_pkg`` (hardware classes are
  realized as fixed-capacity instance banks, the standard restriction for
  hardware mapping).

The emitted text is behavioural (simulation-grade) VHDL: the offline
environment has no synthesis tool, and the paper's claim under test is
interface consistency and behaviour preservation, not timing closure.
"""

from __future__ import annotations

from .manifest import ClassManifest, ComponentManifest, tag_to_dtype
from .naming import banner, c_macro, vhdl_ident, vhdl_type_of

_BIN_VHDL = {
    "and": "and", "or": "or", "==": "=", "!=": "/=",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "mod",
}


class VhdlGenerator:
    """Emits the VHDL artifacts of one component's hardware partition."""

    def __init__(self, manifest: ComponentManifest):
        self._manifest = manifest

    def emit_runtime_package(self) -> str:
        """The hardware architecture services: instance banks, routing."""
        m = self._manifest
        pkg = f"{vhdl_ident(m.name)}_rt_pkg"
        lines = [banner(f"{m.name} hardware architecture runtime", "--")]
        lines.append("library ieee;")
        lines.append("use ieee.std_logic_1164.all;")
        lines.append("use ieee.numeric_std.all;")
        lines.append("")
        lines.append(f"package {pkg} is")
        lines.append("")
        lines.append("    subtype instance_handle_t is unsigned(31 downto 0);")
        lines.append("    constant RT_NULL_HANDLE : instance_handle_t := "
                     "(others => '0');")
        lines.append("    constant MAX_INSTANCES : natural := 64;")
        lines.append("    type instance_set_t is array (0 to MAX_INSTANCES - 1)"
                     " of instance_handle_t;")
        lines.append("")
        lines.append("    -- instance bank services (fixed-capacity banks;")
        lines.append("    -- the hardware mapping's population restriction)")
        lines.append("    function rt_create(cls : integer) "
                     "return instance_handle_t;")
        lines.append("    procedure rt_delete(inst : in instance_handle_t);")
        lines.append("    procedure rt_relate(a, b : in instance_handle_t; "
                     "assoc : in integer);")
        lines.append("    procedure rt_unrelate(a, b : in instance_handle_t; "
                     "assoc : in integer);")
        lines.append("    procedure rt_generate(cls : in integer; "
                     "event_id : in integer;")
        lines.append("                          target : in instance_handle_t; "
                     "delay_cycles : in natural);")
        lines.append("")
        lines.append(f"end package {pkg};")
        return "\n".join(lines) + "\n"

    def emit_entity(self, klass: ClassManifest, clock_mhz: int = 100) -> str:
        """Entity + FSM architecture for one hardware class."""
        m = self._manifest
        name = vhdl_ident(klass.name)
        pkg = f"{vhdl_ident(m.name)}_rt_pkg"
        lines = [banner(
            f"class {klass.name} ({klass.key}) — hardware mapping "
            f"@ {clock_mhz} MHz", "--")]
        lines.append("library ieee;")
        lines.append("use ieee.std_logic_1164.all;")
        lines.append("use ieee.numeric_std.all;")
        lines.append(f"use work.{pkg}.all;")
        lines.append(f"use work.{vhdl_ident(m.name)}_interface_pkg.all;")
        lines.append("")
        lines.append(f"entity {name} is")
        lines.append("    generic (")
        lines.append(f"        CLOCK_MHZ : natural := {clock_mhz}")
        lines.append("    );")
        lines.append("    port (")
        lines.append("        clk          : in  std_logic;")
        lines.append("        rst_n        : in  std_logic;")
        lines.append("        ev_valid     : in  std_logic;")
        lines.append("        ev_id        : in  integer;")
        lines.append("        ev_target    : in  instance_handle_t;")
        lines.append("        ev_payload   : in  std_logic_vector(255 downto 0);")
        lines.append("        out_valid    : out std_logic;")
        lines.append("        out_msg_id   : out integer;")
        lines.append("        out_payload  : out std_logic_vector(255 downto 0);")
        lines.append("        busy         : out std_logic")
        lines.append("    );")
        lines.append(f"end entity {name};")
        lines.append("")
        lines.append(f"architecture rtl of {name} is")
        lines.append("")
        if klass.states:
            state_list = ", ".join(
                f"st_{vhdl_ident(s)}" for s, _n in klass.states
            )
            lines.append(f"    type state_t is ({state_list});")
            initial = klass.initial_state or klass.states[0][0]
            lines.append(f"    signal current_state : state_t := "
                         f"st_{vhdl_ident(initial)};")
        for attr_name, tag, _default in klass.attributes:
            vtype = vhdl_type_of(tag_to_dtype(tag, m.enums))
            lines.append(f"    signal r_{vhdl_ident(attr_name)} : {vtype};")
        lines.append("")
        for label in sorted(klass.events):
            lines.append(f"    constant EV_{c_macro(label)} : integer := "
                         f"{self._event_code(klass, label)};")
        lines.append("")
        lines.append("begin")
        lines.append("")
        lines.append("    fsm : process (clk)")
        lines.append("    begin")
        lines.append("        if rising_edge(clk) then")
        lines.append("            if rst_n = '0' then")
        initial = klass.initial_state or (
            klass.states[0][0] if klass.states else None)
        if initial is not None:
            lines.append(f"                current_state <= "
                         f"st_{vhdl_ident(initial)};")
        lines.append("                out_valid <= '0';")
        lines.append("            elsif ev_valid = '1' then")
        lines.append("                case current_state is")
        for state_name, _number in klass.states:
            lines.append(f"                    when st_{vhdl_ident(state_name)} =>")
            lines.append("                        case ev_id is")
            for label in sorted(klass.events):
                if klass.events[label].creation:
                    continue
                response = klass.response(state_name, label)
                lines.append(f"                            when "
                             f"EV_{c_macro(label)} =>")
                if response == "transition":
                    to_state = klass.transitions[(state_name, label)]
                    lines.append(f"                                "
                                 f"current_state <= st_{vhdl_ident(to_state)};")
                    lines.append(f"                                "
                                 f"-- entry actions of {to_state}:")
                    for action_line in self._entry_action_lines(klass, to_state):
                        lines.append("                                "
                                     + action_line)
                elif response == "ignore":
                    lines.append("                                null;"
                                 "  -- ignored")
                else:
                    lines.append("                                "
                                 "assert false report \"cant happen\" "
                                 "severity error;")
            lines.append("                            when others =>")
            lines.append("                                null;")
            lines.append("                        end case;")
        lines.append("                end case;")
        lines.append("            end if;")
        lines.append("        end if;")
        lines.append("    end process fsm;")
        lines.append("")
        lines.append("    busy <= '0';")
        lines.append("")
        lines.append("end architecture rtl;")
        return "\n".join(lines) + "\n"

    def _event_code(self, klass: ClassManifest, label: str) -> int:
        return sorted(klass.events).index(label) + 1

    def _entry_action_lines(self, klass: ClassManifest, state: str) -> list[str]:
        """Print the lowered entry action as VHDL sequential statements."""
        printer = _VhdlPrinter(self._manifest, klass)
        lines: list[str] = []
        printer.print_block(klass.activities.get(state, []), lines, 0)
        return lines or ["null;"]


class _VhdlPrinter:
    """Prints action IR as VHDL sequential statements.

    Dynamic population operations are mapped onto runtime-package
    procedure calls, mirroring the instance-bank architecture.
    """

    def __init__(self, manifest: ComponentManifest, klass: ClassManifest):
        self._m = manifest
        self._klass = klass

    def _pad(self, indent: int) -> str:
        return "    " * indent

    def print_block(self, block: list, lines: list, indent: int) -> None:
        for stmt in block:
            self.print_stmt(stmt, lines, indent)

    def print_stmt(self, stmt: list, lines: list, indent: int) -> None:
        pad = self._pad(indent)
        tag = stmt[0]
        if tag == "assign_var":
            lines.append(f"{pad}v_{vhdl_ident(stmt[1])} := {self.expr(stmt[2])};")
        elif tag == "assign_attr":
            if stmt[1][0] == "self":
                lines.append(f"{pad}r_{vhdl_ident(stmt[2])} <= "
                             f"{self.expr(stmt[3])};")
            else:
                lines.append(f"{pad}-- remote attribute write via router:")
                lines.append(f"{pad}rt_attr_write({self.expr(stmt[1])}, "
                             f"\"{stmt[2]}\", {self.expr(stmt[3])});")
        elif tag == "create":
            lines.append(f"{pad}v_{vhdl_ident(stmt[1])} := "
                         f"rt_create({self._class_number(stmt[2])});")
        elif tag == "delete":
            lines.append(f"{pad}rt_delete({self.expr(stmt[1])});")
        elif tag == "select_extent":
            lines.append(f"{pad}rt_select_extent(v_{vhdl_ident(stmt[1])}, "
                         f"{self._class_number(stmt[3])});")
        elif tag == "select_related":
            hops = ", ".join(str(int(h[1][1:])) for h in stmt[4])
            lines.append(f"{pad}rt_select_related(v_{vhdl_ident(stmt[1])}, "
                         f"{self.expr(stmt[3])}, ({hops}));")
        elif tag == "relate":
            lines.append(f"{pad}rt_relate({self.expr(stmt[1])}, "
                         f"{self.expr(stmt[2])}, {int(stmt[3][1:])});")
        elif tag == "unrelate":
            lines.append(f"{pad}rt_unrelate({self.expr(stmt[1])}, "
                         f"{self.expr(stmt[2])}, {int(stmt[3][1:])});")
        elif tag == "generate":
            label, class_key = stmt[1], stmt[2]
            target = self.expr(stmt[4]) if stmt[4] is not None else "RT_NULL_HANDLE"
            delay = self.expr(stmt[5]) if stmt[5] is not None else "0"
            lines.append(f"{pad}rt_generate({self._class_number(class_key)}, "
                         f"EV_{c_macro(label)}, {target}, {delay});")
        elif tag == "if":
            first = True
            for cond, body in stmt[1]:
                keyword = "if" if first else "elsif"
                lines.append(f"{pad}{keyword} {self.expr(cond)} then")
                self.print_block(body, lines, indent + 1)
                first = False
            if stmt[2] is not None:
                lines.append(f"{pad}else")
                self.print_block(stmt[2], lines, indent + 1)
            lines.append(f"{pad}end if;")
        elif tag == "while":
            lines.append(f"{pad}while {self.expr(stmt[1])} loop")
            self.print_block(stmt[2], lines, indent + 1)
            lines.append(f"{pad}end loop;")
        elif tag == "foreach":
            lines.append(f"{pad}for idx in {self.expr(stmt[2])}'range loop")
            lines.append(f"{self._pad(indent + 1)}v_{vhdl_ident(stmt[1])} := "
                         f"{self.expr(stmt[2])}(idx);")
            self.print_block(stmt[3], lines, indent + 1)
            lines.append(f"{pad}end loop;")
        elif tag == "break":
            lines.append(f"{pad}exit;")
        elif tag == "continue":
            lines.append(f"{pad}next;")
        elif tag == "return":
            lines.append(f"{pad}return;")
        elif tag == "exprstmt":
            lines.append(f"{pad}-- {self.expr(stmt[1])};")
        else:
            raise ValueError(f"cannot print IR statement {tag!r}")

    def _class_number(self, class_key: str) -> int:
        return self._m.classes[class_key].number

    def expr(self, ir: list) -> str:
        tag = ir[0]
        if tag == "int":
            return str(ir[1])
        if tag == "real":
            return repr(float(ir[1]))
        if tag == "str":
            return f"\"{ir[1]}\""
        if tag == "bool":
            return "true" if ir[1] else "false"
        if tag == "enum":
            return f"{vhdl_ident(ir[1])}_t'val({ir[3]})"
        if tag == "self":
            return "ev_target"
        if tag == "selected":
            return "v_selected"
        if tag == "var":
            return f"v_{vhdl_ident(ir[1])}"
        if tag == "param":
            return f"p_{vhdl_ident(ir[1])}"
        if tag == "attr":
            if ir[1][0] == "self":
                return f"r_{vhdl_ident(ir[2])}"
            return f"rt_attr_read({self.expr(ir[1])}, \"{ir[2]}\")"
        if tag == "un":
            op = ir[1]
            operand = self.expr(ir[2])
            if op == "-":
                return f"(-{operand})"
            if op == "not":
                return f"(not {operand})"
            if op == "cardinality":
                return f"rt_cardinality({operand})"
            if op == "empty":
                return f"(rt_cardinality({operand}) = 0)"
            if op == "not_empty":
                return f"(rt_cardinality({operand}) /= 0)"
            raise ValueError(f"unknown unary {op!r}")
        if tag == "bin":
            return (f"({self.expr(ir[2])} {_BIN_VHDL[ir[1]]} "
                    f"{self.expr(ir[3])})")
        if tag == "bridge":
            args = ", ".join(self.expr(v) for _n, v in ir[3])
            return f"rt_bridge_{vhdl_ident(ir[1])}_{vhdl_ident(ir[2])}({args})"
        if tag == "classop":
            args = ", ".join(self.expr(v) for _n, v in ir[3])
            return f"{vhdl_ident(ir[1])}_op_{vhdl_ident(ir[2])}({args})"
        if tag == "instop":
            args = ", ".join(
                [self.expr(ir[1])] + [self.expr(v) for _n, v in ir[3]])
            return f"op_{vhdl_ident(ir[2])}({args})"
        raise ValueError(f"cannot print IR expression {tag!r}")
