"""Mapping rules — what a mark *selects*.

Paper section 3: "Mapping rules are applied to model elements that have
been marked to indicate which rule to apply — hardware or software."

A :class:`MappingRule` pairs a match predicate over (element, marks) with
a target language; a :class:`RuleSet` resolves each class to exactly one
rule, most-specific first.  The stock rule set is the paper's example:
``isHardware`` selects the VHDL mapping, everything else gets the C
mapping.  New targets (say, SystemC) are added by prepending a rule — no
model change, no mark-vocabulary change beyond the new mark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.marks.model import MarkSet


class RuleError(Exception):
    """No rule matched, or a rule set is ill-formed."""


@dataclass(frozen=True)
class MappingRule:
    """One mapping rule.

    ``matches`` receives ``(element_path, marks)`` and answers whether
    this rule applies; ``target`` names the emitter that realizes it.
    """

    name: str
    target: str                     # "c" | "vhdl" | future targets
    matches: Callable[[str, MarkSet], bool]
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name} -> {self.target}"


def _is_hardware(path: str, marks: MarkSet) -> bool:
    return bool(marks.get(path, "isHardware"))


def _always(path: str, marks: MarkSet) -> bool:
    return True


HARDWARE_RULE = MappingRule(
    "hardware-class", "vhdl", _is_hardware,
    "classes marked isHardware map to a VHDL entity + FSM process",
)

SOFTWARE_RULE = MappingRule(
    "software-class", "c", _always,
    "unmarked classes map to C under the single-task architecture",
)


@dataclass
class RuleSet:
    """An ordered list of rules; the first match wins."""

    rules: list[MappingRule] = field(default_factory=list)

    @classmethod
    def standard(cls) -> "RuleSet":
        """The stock SoC rule set of the paper's example."""
        return cls([HARDWARE_RULE, SOFTWARE_RULE])

    def prepend(self, rule: MappingRule) -> "RuleSet":
        """A new rule set with *rule* taking precedence."""
        return RuleSet([rule] + list(self.rules))

    def resolve(self, element_path: str, marks: MarkSet) -> MappingRule:
        for rule in self.rules:
            if rule.matches(element_path, marks):
                return rule
        raise RuleError(f"no mapping rule matches {element_path!r}")

    def targets(self) -> tuple[str, ...]:
        seen: list[str] = []
        for rule in self.rules:
            if rule.target not in seen:
                seen.append(rule.target)
        return tuple(seen)
