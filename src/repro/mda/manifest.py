"""The build manifest — what the model compiler actually emitted.

The manifest is the machine-readable twin of the generated text: state
tables, event signatures, attribute layouts and lowered action IR, all in
plain dict/list/str form (JSON-able).  The C and VHDL emitters print
*from the manifest*, and the target-architecture simulators *execute* the
manifest — so the text and the simulated behaviour cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oal.analyzer import analyze_activity
from repro.oal.parser import parse_activity
from repro.xuml.component import Component
from repro.xuml.datatypes import (
    CoreType,
    DataType,
    EnumType,
    InstRefType,
    InstSetType,
)
from repro.xuml.model import Model
from repro.xuml.statemachine import EventResponse

from .actionir import lower_block


def dtype_tag(dtype: DataType) -> str:
    """Serialize a data type to its manifest tag."""
    if isinstance(dtype, EnumType):
        return f"enum:{dtype.name}"
    if isinstance(dtype, InstRefType):
        return f"inst_ref:{dtype.class_key}"
    if isinstance(dtype, InstSetType):
        return f"inst_ref_set:{dtype.class_key}"
    return dtype.value


def tag_to_dtype(tag: str, enums: dict[str, tuple[str, ...]]) -> DataType:
    """Deserialize a manifest tag back to a data type."""
    if tag.startswith("enum:"):
        name = tag[len("enum:"):]
        return EnumType(name, tuple(enums[name]))
    if tag.startswith("inst_ref:"):
        return InstRefType(tag[len("inst_ref:"):])
    if tag.startswith("inst_ref_set:"):
        return InstSetType(tag[len("inst_ref_set:"):])
    return CoreType(tag)


@dataclass
class EventManifest:
    label: str
    params: list[tuple[str, str]]          # (name, dtype tag)
    creation: bool
    meaning: str = ""


@dataclass
class OperationManifest:
    name: str
    params: list[tuple[str, str]]
    returns: str | None
    instance_based: bool
    ir: list = field(default_factory=list)


@dataclass
class ClassManifest:
    """Everything the architecture needs to realize one class."""

    key: str
    name: str
    number: int
    attributes: list[tuple[str, str, object]]   # (name, dtype tag, default)
    states: list[tuple[str, int]]
    initial_state: str | None
    #: (state, event) -> to_state
    transitions: dict[tuple[str, str], str]
    #: (state, event) -> "ignore" | "cant_happen" (transition pairs omitted)
    non_transitions: dict[tuple[str, str], str]
    #: creation event -> destination state
    creations: dict[str, str]
    events: dict[str, EventManifest]
    #: state name -> lowered action IR
    activities: dict[str, list]
    operations: dict[str, OperationManifest]
    #: derived attribute -> lowered IR of "return <expr>;"
    derived: dict[str, list]

    @property
    def is_active(self) -> bool:
        return bool(self.states)

    def response(self, state: str, label: str) -> str:
        """"transition" | "ignore" | "cant_happen" for a (state, event)."""
        if (state, label) in self.transitions:
            return "transition"
        return self.non_transitions.get((state, label), "cant_happen")


@dataclass
class ComponentManifest:
    """The whole translated component."""

    name: str
    enums: dict[str, tuple[str, ...]]
    #: Rn -> ((class, phrase, mult), (class, phrase, mult), link or None)
    associations: dict[str, tuple]
    classes: dict[str, ClassManifest]
    externals: dict[str, tuple[str, ...]]      # EE -> bridge names

    def klass(self, key: str) -> ClassManifest:
        return self.classes[key]


def build_manifest(model: Model, component: Component) -> ComponentManifest:
    """Lower one component to its manifest (parses + analyzes every action)."""
    from repro.xuml.klass import Operation

    classes: dict[str, ClassManifest] = {}
    for klass in component.classes:
        machine = klass.statemachine
        activities: dict[str, list] = {}
        for state in machine.states:
            block = parse_activity(state.activity)
            analysis = analyze_activity(block, model, component, klass, state)
            activities[state.name] = lower_block(block, analysis, component)

        operations: dict[str, OperationManifest] = {}
        for operation in klass.operations:
            block = parse_activity(operation.body)
            analysis = analyze_activity(
                block, model, component, klass, None, operation=operation
            )
            operations[operation.name] = OperationManifest(
                operation.name,
                [(p.name, dtype_tag(p.dtype)) for p in operation.parameters],
                dtype_tag(operation.returns) if operation.returns is not None else None,
                operation.instance_based,
                lower_block(block, analysis, component),
            )

        derived: dict[str, list] = {}
        for attribute in klass.attributes:
            if attribute.derived is None:
                continue
            pseudo = Operation(
                f"derived_{attribute.name}",
                f"return {attribute.derived};",
                instance_based=True,
                returns=attribute.dtype,
            )
            block = parse_activity(pseudo.body)
            analysis = analyze_activity(
                block, model, component, klass, None, operation=pseudo
            )
            derived[attribute.name] = lower_block(block, analysis, component)

        transitions = {
            (t.from_state, t.event_label): t.to_state
            for t in machine.transitions
        }
        non_transitions: dict[tuple[str, str], str] = {}
        for state in machine.states:
            for event in klass.events:
                if (state.name, event.label) in transitions:
                    continue
                response = machine.response_to(state.name, event.label)
                if response is EventResponse.IGNORE:
                    non_transitions[(state.name, event.label)] = "ignore"
                elif response is EventResponse.CANT_HAPPEN:
                    non_transitions[(state.name, event.label)] = "cant_happen"

        classes[klass.key_letters] = ClassManifest(
            key=klass.key_letters,
            name=klass.name,
            number=klass.number,
            attributes=[
                (a.name, dtype_tag(a.dtype), a.initial_value)
                for a in klass.attributes
                if a.derived is None
            ],
            states=[(s.name, s.number) for s in machine.states],
            initial_state=machine.initial_state,
            transitions=transitions,
            non_transitions=non_transitions,
            creations={
                ct.event_label: ct.to_state
                for ct in machine.creation_transitions
            },
            events={
                e.label: EventManifest(
                    e.label,
                    [(p.name, dtype_tag(p.dtype)) for p in e.parameters],
                    e.creation,
                    e.meaning,
                )
                for e in klass.events
            },
            activities=activities,
            operations=operations,
            derived=derived,
        )

    associations = {
        a.number: (
            (a.one.class_key, a.one.phrase, a.one.mult.value),
            (a.other.class_key, a.other.phrase, a.other.mult.value),
            a.link_class_key,
        )
        for a in component.associations
    }
    return ComponentManifest(
        name=component.name,
        enums={e.name: e.enumerators for e in component.types.enums},
        associations=associations,
        classes=classes,
        externals={
            ee.key_letters: tuple(b.name for b in ee.bridges)
            for ee in component.externals
        },
    )
