"""Control-flow signals used by the IR evaluator.

``break``/``continue``/``return`` unwind through Python exceptions.
These classes used to be copy-pasted into both the abstract runtime's
interpreter and the target-architecture runtime; one definition lives
here now, so "the semantics of break" cannot fork.
"""

from __future__ import annotations


class BreakSignal(Exception):
    """Raised by ``break``; caught by the innermost loop."""


class ContinueSignal(Exception):
    """Raised by ``continue``; caught by the innermost loop."""


class ReturnSignal(Exception):
    """Raised by ``return``; caught by the activity/operation entry."""

    def __init__(self, value):
        self.value = value
        super().__init__()
