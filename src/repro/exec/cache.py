"""The lowering cache — parse/analyze/lower each component once.

Lowering is a pure function of the model's content, so the cache is
content-addressed with the *build layer's* fingerprint
(:func:`repro.build.fingerprint.model_fingerprint`): two structurally
identical models — e.g. a catalog model rebuilt for every verification
case — share one lowered form, while any model edit changes the key and
misses.  The abstract runtime hits this cache at model-load, which is
what lets it execute IR with no per-run parse/analyze cost; the
signal-flow analyzer hits the same cache, so analysis and execution
read literally the same lowered bodies.

Hit/miss counters are kept module-level (``repro check`` prints them)
and mirrored into the active metrics registry when observability is on
(``exec.lower_cache.hits`` / ``exec.lower_cache.misses``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oal.analyzer import analyze_activity
from repro.oal.parser import parse_activity
from repro.xuml.component import Component
from repro.xuml.model import Model

from .ir import lower_block


@dataclass(frozen=True)
class LoweredComponent:
    """One component's activities, operations and derived bodies, lowered.

    Keys mirror what the executors look up: ``activities`` by
    ``(class_key, state_name)``, ``operations`` by ``(class_key, name)``,
    ``derived`` by ``(class_key, attribute_name)``.  ``event_parameters``
    holds, per activity, the parameter names its analysis declared
    visible — the dispatch loop uses it to project a signal's payload
    into the frame.
    """

    fingerprint: str
    component_name: str
    activities: dict[tuple[str, str], list] = field(default_factory=dict)
    event_parameters: dict[tuple[str, str], tuple[str, ...]] = field(
        default_factory=dict)
    operations: dict[tuple[str, str], list] = field(default_factory=dict)
    derived: dict[tuple[str, str], list] = field(default_factory=dict)


#: (model fingerprint, component name) -> LoweredComponent
_cache: dict[tuple[str, str], LoweredComponent] = {}
_hits = 0
_misses = 0


def _count(hit: bool) -> None:
    global _hits, _misses
    from repro.obs.metrics import active_registry

    registry = active_registry()
    if hit:
        _hits += 1
        if registry is not None:
            registry.counter("exec.lower_cache.hits").inc()
    else:
        _misses += 1
        if registry is not None:
            registry.counter("exec.lower_cache.misses").inc()


def lowering_cache_stats() -> dict[str, int]:
    """Snapshot of the cache: entries held, hits and misses so far."""
    return {"entries": len(_cache), "hits": _hits, "misses": _misses}


def clear_lowering_cache() -> None:
    """Drop every cached lowering and reset the counters (tests)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def _lower_component_uncached(
    model: Model, component: Component, fingerprint: str
) -> LoweredComponent:
    from repro.xuml.klass import Operation

    lowered = LoweredComponent(fingerprint, component.name)
    for klass in component.classes:
        key = klass.key_letters
        for state in klass.statemachine.states:
            block = parse_activity(state.activity)
            analysis = analyze_activity(block, model, component, klass, state)
            lowered.activities[(key, state.name)] = lower_block(
                block, analysis, component)
            lowered.event_parameters[(key, state.name)] = tuple(
                analysis.event_parameters)
        for operation in klass.operations:
            block = parse_activity(operation.body)
            analysis = analyze_activity(
                block, model, component, klass, None, operation=operation)
            lowered.operations[(key, operation.name)] = lower_block(
                block, analysis, component)
        for attribute in klass.attributes:
            if attribute.derived is None:
                continue
            pseudo = Operation(
                f"derived_{attribute.name}",
                f"return {attribute.derived};",
                instance_based=True,
                returns=attribute.dtype,
            )
            block = parse_activity(pseudo.body)
            analysis = analyze_activity(
                block, model, component, klass, None, operation=pseudo)
            lowered.derived[(key, attribute.name)] = lower_block(
                block, analysis, component)
    return lowered


def lower_component(model: Model, component: Component) -> LoweredComponent:
    """The component's lowered form, served from the fingerprint cache."""
    # Imported lazily: the build layer sits above exec in the package
    # graph, and only this entry point reaches up for the fingerprint.
    from repro.build.fingerprint import model_fingerprint

    key = (model_fingerprint(model), component.name)
    cached = _cache.get(key)
    if cached is not None:
        _count(hit=True)
        return cached
    _count(hit=False)
    lowered = _lower_component_uncached(model, component, key[0])
    _cache[key] = lowered
    return lowered
