"""The one IR evaluator — every executor runs actions through this.

:class:`IRExecutor` evaluates the lowered action IR of :mod:`.ir`
against a *host*: the object that owns instances, links, signals and
bridges.  The abstract runtime (:class:`repro.runtime.Simulation`), the
generated-architecture simulators (:class:`repro.mda.TargetMachine` and
its csim/vsim/cosim subclasses) and ad-hoc test harnesses are all hosts;
none of them contains action semantics of its own anymore.  OAL action
semantics exist in exactly one place — here — so "the three executors
disagree on what an action means" is a bug that can no longer be
written.

The host is duck-typed; the surface the evaluator calls is:

* population — ``create_instance(class_key)``, ``delete_instance(h)``,
  ``instances_of(class_key)``
* attributes — ``read_attribute(h, name)``, ``write_attribute(h, name, v)``
* links — ``relate(l, r, rnum, phrase)``, ``unrelate(...)``,
  ``navigate(h, rnum, class_key, phrase)``
* signals — ``send_signal(target, class_key, label, params, sender=,
  delay=)``, ``send_creation(class_key, label, params, sender=, delay=)``
* calls — ``call_bridge(self_handle, entity, op, kwargs)``,
  ``call_class_operation(class_key, op, kwargs)``,
  ``call_instance_operation(h, op, kwargs)``
* policy — ``loop_bound`` (read on every loop, so a host may tighten it
  after construction)

Failure types are the host's dialect: the abstract runtime reports
``OALRuntimeError``/``SelectionError``, the architecture runtime reports
``ArchError``.  The evaluator takes both constructors at creation time
so the *meaning* of a failure is shared while its type stays layer-local.
"""

from __future__ import annotations

from repro.oal.errors import OALRuntimeError

from .controlflow import BreakSignal, ContinueSignal, ReturnSignal
from .cvalues import as_instance_set, c_div, c_mod

#: Name `repro check` and diagnostics print for the unified core.
CORE_NAME = "repro.exec"


class Frame:
    """One activity/operation invocation: locals, self, params, selected."""

    __slots__ = ("locals", "self_handle", "params", "selected")

    def __init__(self, self_handle, params):
        self.locals: dict[str, object] = {}
        self.self_handle = self_handle
        self.params = dict(params)
        self.selected = None


class IRExecutor:
    """Executes lowered action IR against a host (see module docstring).

    One executor is created per host and reused for every activity,
    operation and derived-attribute body; each :meth:`run` opens a fresh
    :class:`Frame`, so reentrant calls (an operation invoked from an
    activity) nest safely.  ``ops_executed`` counts dynamically executed
    IR statements across all frames — the architecture cost model's raw
    material.
    """

    __slots__ = ("host", "ops_executed", "_error", "_selection_error",
                 "_stmt", "_expr")

    def __init__(self, host, error=OALRuntimeError, selection_error=None):
        self.host = host
        self.ops_executed = 0
        self._error = error
        self._selection_error = selection_error or error
        # Bind both dispatch tables once; evaluation then costs one dict
        # lookup per node instead of a getattr-by-name chain per visit.
        self._stmt = {
            "assign_var": self._stmt_assign_var,
            "assign_attr": self._stmt_assign_attr,
            "create": self._stmt_create,
            "delete": self._stmt_delete,
            "select_extent": self._stmt_select_extent,
            "select_related": self._stmt_select_related,
            "relate": self._stmt_relate,
            "unrelate": self._stmt_unrelate,
            "generate": self._stmt_generate,
            "if": self._stmt_if,
            "while": self._stmt_while,
            "foreach": self._stmt_foreach,
            "break": self._stmt_break,
            "continue": self._stmt_continue,
            "return": self._stmt_return,
            "exprstmt": self._stmt_exprstmt,
        }
        self._expr = {
            "int": self._expr_literal,
            "real": self._expr_literal,
            "str": self._expr_literal,
            "bool": self._expr_literal,
            "enum": self._expr_enum,
            "self": self._expr_self,
            "selected": self._expr_selected,
            "var": self._expr_var,
            "param": self._expr_param,
            "attr": self._expr_attr,
            "un": self._expr_un,
            "bin": self._expr_bin,
            "bridge": self._expr_bridge,
            "classop": self._expr_classop,
            "instop": self._expr_instop,
        }

    # -- entry point ----------------------------------------------------------

    def run(self, block: list, self_handle, params):
        """Execute one IR block; returns the ``return`` value, if any."""
        frame = Frame(self_handle, params)
        try:
            self._exec_block(block, frame)
        except ReturnSignal as ret:
            return ret.value
        except (BreakSignal, ContinueSignal):  # pragma: no cover - analyzer prevents
            raise self._error("break/continue escaped its loop") from None
        return None

    # -- statements ------------------------------------------------------------

    def _exec_block(self, block: list, frame: Frame) -> None:
        stmt_table = self._stmt
        for stmt in block:
            self.ops_executed += 1
            try:
                handler = stmt_table[stmt[0]]
            except KeyError:
                raise self._error(f"unknown IR statement {stmt[0]!r}") from None
            handler(stmt, frame)

    def _stmt_assign_var(self, stmt, frame) -> None:
        frame.locals[stmt[1]] = self._eval(stmt[2], frame)

    def _stmt_assign_attr(self, stmt, frame) -> None:
        handle = self._require(self._eval(stmt[1], frame))
        self.host.write_attribute(handle, stmt[2], self._eval(stmt[3], frame))

    def _stmt_create(self, stmt, frame) -> None:
        frame.locals[stmt[1]] = self.host.create_instance(stmt[2])

    def _stmt_delete(self, stmt, frame) -> None:
        self.host.delete_instance(self._require(self._eval(stmt[1], frame)))

    def _stmt_select_extent(self, stmt, frame) -> None:
        handles = self.host.instances_of(stmt[3])
        handles = self._filter(handles, stmt[4], frame)
        if stmt[2]:
            frame.locals[stmt[1]] = tuple(handles)
        else:
            frame.locals[stmt[1]] = handles[0] if handles else None

    def _stmt_select_related(self, stmt, frame) -> None:
        start = self._eval(stmt[3], frame)
        current = () if start is None else (start,)
        for class_key, number, phrase in stmt[4]:
            gathered: set[int] = set()
            for handle in current:
                gathered.update(
                    self.host.navigate(handle, number, class_key, phrase))
            current = tuple(sorted(gathered))
        current = self._filter(current, stmt[5], frame)
        if stmt[2]:
            frame.locals[stmt[1]] = tuple(current)
        else:
            if len(current) > 1:
                raise self._selection_error(
                    f"select one {stmt[1]}: navigation produced "
                    f"{len(current)} instances")
            frame.locals[stmt[1]] = current[0] if current else None

    def _stmt_relate(self, stmt, frame) -> None:
        self.host.relate(
            self._require(self._eval(stmt[1], frame)),
            self._require(self._eval(stmt[2], frame)),
            stmt[3], stmt[4],
        )

    def _stmt_unrelate(self, stmt, frame) -> None:
        self.host.unrelate(
            self._require(self._eval(stmt[1], frame)),
            self._require(self._eval(stmt[2], frame)),
            stmt[3], stmt[4],
        )

    def _stmt_generate(self, stmt, frame) -> None:
        params = {name: self._eval(value, frame) for name, value in stmt[3]}
        delay = int(self._eval(stmt[5], frame)) if stmt[5] is not None else 0
        if stmt[4] is None:
            self.host.send_creation(stmt[2], stmt[1], params,
                                    sender=frame.self_handle, delay=delay)
        else:
            target = self._require(self._eval(stmt[4], frame))
            self.host.send_signal(target, stmt[2], stmt[1], params,
                                  sender=frame.self_handle, delay=delay)

    def _stmt_if(self, stmt, frame) -> None:
        for cond, body in stmt[1]:
            if self._eval(cond, frame):
                self._exec_block(body, frame)
                return
        if stmt[2] is not None:
            self._exec_block(stmt[2], frame)

    def _stmt_while(self, stmt, frame) -> None:
        guard = 0
        bound = self.host.loop_bound
        while self._eval(stmt[1], frame):
            guard += 1
            if guard > bound:
                raise self._error(
                    f"while loop exceeded {bound} iterations")
            try:
                self._exec_block(stmt[2], frame)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _stmt_foreach(self, stmt, frame) -> None:
        for handle in self._eval(stmt[2], frame):
            frame.locals[stmt[1]] = handle
            try:
                self._exec_block(stmt[3], frame)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _stmt_break(self, stmt, frame) -> None:
        raise BreakSignal

    def _stmt_continue(self, stmt, frame) -> None:
        raise ContinueSignal

    def _stmt_return(self, stmt, frame) -> None:
        raise ReturnSignal(
            self._eval(stmt[1], frame) if stmt[1] is not None else None)

    def _stmt_exprstmt(self, stmt, frame) -> None:
        self._eval(stmt[1], frame)

    def _filter(self, handles, where, frame: Frame):
        handles = tuple(handles)
        if where is None:
            return handles
        kept = []
        outer = frame.selected
        try:
            for handle in handles:
                frame.selected = handle
                if self._eval(where, frame):
                    kept.append(handle)
        finally:
            frame.selected = outer
        return tuple(kept)

    # -- expressions -------------------------------------------------------------

    def _eval(self, ir: list, frame: Frame):
        try:
            handler = self._expr[ir[0]]
        except KeyError:
            raise self._error(f"unknown IR expression {ir[0]!r}") from None
        return handler(ir, frame)

    def _expr_literal(self, ir, frame):
        return ir[1]

    def _expr_enum(self, ir, frame):
        return ir[2]   # enumerator name — one value space on every target

    def _expr_self(self, ir, frame):
        return frame.self_handle

    def _expr_selected(self, ir, frame):
        return frame.selected

    def _expr_var(self, ir, frame):
        try:
            return frame.locals[ir[1]]
        except KeyError:
            raise self._error(
                f"variable {ir[1]!r} read before assignment") from None

    def _expr_param(self, ir, frame):
        try:
            return frame.params[ir[1]]
        except KeyError:
            raise self._error(
                f"event carries no parameter {ir[1]!r}") from None

    def _expr_attr(self, ir, frame):
        handle = self._require(self._eval(ir[1], frame))
        return self.host.read_attribute(handle, ir[2])

    def _expr_un(self, ir, frame):
        op = ir[1]
        value = self._eval(ir[2], frame)
        if op == "-":
            return -value
        if op == "not":
            return not value
        if op == "cardinality":
            return len(as_instance_set(value))
        if op == "empty":
            return len(as_instance_set(value)) == 0
        if op == "not_empty":
            return len(as_instance_set(value)) != 0
        raise self._error(f"unknown unary operator {op!r}")

    def _expr_bin(self, ir, frame):
        op = ir[1]
        if op == "and":
            return bool(self._eval(ir[2], frame)) and bool(
                self._eval(ir[3], frame))
        if op == "or":
            return bool(self._eval(ir[2], frame)) or bool(
                self._eval(ir[3], frame))
        left = self._eval(ir[2], frame)
        right = self._eval(ir[3], frame)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return c_div(left, right)
            if right == 0:
                raise self._error("division by zero")
            return left / right
        if op == "%":
            return c_mod(left, right)
        raise self._error(f"unknown binary operator {op!r}")

    def _expr_bridge(self, ir, frame):
        kwargs = {name: self._eval(value, frame) for name, value in ir[3]}
        return self.host.call_bridge(frame.self_handle, ir[1], ir[2], kwargs)

    def _expr_classop(self, ir, frame):
        kwargs = {name: self._eval(value, frame) for name, value in ir[3]}
        return self.host.call_class_operation(ir[1], ir[2], kwargs)

    def _expr_instop(self, ir, frame):
        target = self._require(self._eval(ir[1], frame))
        kwargs = {name: self._eval(value, frame) for name, value in ir[3]}
        return self.host.call_instance_operation(target, ir[2], kwargs)

    # -- misc --------------------------------------------------------------------

    def _require(self, handle):
        if handle is None:
            raise self._error("empty instance reference")
        return handle
