"""The execution core — one lowered action IR, one evaluator.

The paper's central claim (§4) is consistency by construction: generate
both sides of every interface from one specification and they cannot
diverge.  This package applies the same principle to the toolchain
itself.  OAL action semantics used to be implemented three times — an
AST tree-walker in the abstract runtime, an IR evaluator in the
target-architecture runtime, and a private AST walk in the signal-flow
analyzer — kept identical only by discipline.  Now there is one lowered
form (:mod:`.ir`), one evaluator (:mod:`.evaluator`), one definition of
C value semantics (:mod:`.cvalues`) and control flow (:mod:`.controlflow`),
and a content-addressed lowering cache (:mod:`.cache`) so the lowering
is paid once per model, not once per executor.

* :func:`lower_block` — AST → action IR (the only lowering)
* :class:`IRExecutor` — the only action evaluator; abstract runtime,
  csim, vsim and the co-sim engine all execute through it
* :func:`lower_component` — fingerprint-keyed lowering cache
* :func:`c_div` / :func:`c_mod` — C integer semantics, imported by both
  the runtime and mda layers (the dependency no longer points upward)
"""

from .cache import (
    LoweredComponent,
    clear_lowering_cache,
    lower_component,
    lowering_cache_stats,
)
from .controlflow import BreakSignal, ContinueSignal, ReturnSignal
from .cvalues import as_instance_set, c_div, c_mod
from .evaluator import CORE_NAME, Frame, IRExecutor
from .ir import (
    ir_op_counts,
    lower_block,
    walk_ir_generates,
    walk_ir_statements,
)

__all__ = [
    "BreakSignal",
    "CORE_NAME",
    "ContinueSignal",
    "Frame",
    "IRExecutor",
    "LoweredComponent",
    "ReturnSignal",
    "as_instance_set",
    "c_div",
    "c_mod",
    "clear_lowering_cache",
    "ir_op_counts",
    "lower_block",
    "lower_component",
    "lowering_cache_stats",
    "walk_ir_generates",
    "walk_ir_statements",
]
