"""The action IR — the one lowered form of OAL the toolchain executes.

Every analyzed activity is lowered into this small, JSON-able IR exactly
once; the C emitter prints IR to C, the VHDL emitter prints IR to VHDL,
the target-architecture simulators (:mod:`repro.mda.csim` /
:mod:`repro.mda.vsim`) *execute* the IR under their architecture's
scheduling rules, the abstract runtime (:mod:`repro.runtime.simulator`)
executes the same IR under the profile's rules, and the signal-flow
analyzer (:mod:`repro.analysis.signalflow`) builds its graph from it.
Because text, simulation and analysis share one lowered form, a
semantics bug shows up as a conformance failure, not a silent
divergence — consistency by construction, applied to the toolchain
itself.

IR nodes are plain lists (tag first), so a build manifest is trivially
serializable:

Expressions::

    ["int", i]  ["real", x]  ["str", s]  ["bool", b]
    ["enum", type_name, enumerator, code]
    ["self"]  ["selected"]  ["var", name]  ["param", name]
    ["attr", target, attr_name]
    ["un", op, operand]          op in - not cardinality empty not_empty
    ["bin", op, left, right]
    ["bridge", entity, operation, [[name, expr], ...]]
    ["classop", class_key, operation, [[name, expr], ...]]
    ["instop", target, operation, [[name, expr], ...]]

Statements::

    ["assign_var", name, expr]
    ["assign_attr", target, attr_name, expr]
    ["create", var, class_key]
    ["delete", expr]
    ["select_extent", var, many, class_key, where|None]
    ["select_related", var, many, start, [[class_key, rnum, phrase], ...], where|None]
    ["relate", left, right, rnum, phrase]
    ["unrelate", left, right, rnum, phrase]
    ["generate", label, class_key, [[name, expr], ...], target|None, delay|None, line]
    ["if", [[cond, block], ...], elseblock|None]
    ["while", cond, block]
    ["foreach", var, iterable, block]
    ["break"]  ["continue"]
    ["return", expr|None]
    ["exprstmt", expr]

``generate`` carries the source line as its (trailing) last element so
the signal-flow analyzer can report send sites without a second walk
over the AST; emitters and the evaluator address elements positionally
from the front and ignore it.
"""

from __future__ import annotations

from repro.oal import ast
from repro.oal.analyzer import AnalyzedActivity
from repro.xuml.component import Component


def lower_block(
    block: ast.Block, analysis: AnalyzedActivity, component: Component
) -> list:
    """Lower a parsed+analyzed block to the action IR."""
    lowerer = _Lowerer(analysis, component)
    return lowerer.block(block)


class _Lowerer:
    def __init__(self, analysis: AnalyzedActivity, component: Component):
        self._analysis = analysis
        self._component = component

    def block(self, block: ast.Block) -> list:
        return [self.stmt(s) for s in block.statements]

    # -- statements ----------------------------------------------------------

    def stmt(self, stmt: ast.Stmt) -> list:
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.NameRef):
                return ["assign_var", stmt.target.name, self.expr(stmt.value)]
            target = stmt.target
            assert isinstance(target, ast.AttrAccess)
            return [
                "assign_attr",
                self.expr(target.target),
                target.attribute,
                self.expr(stmt.value),
            ]
        if isinstance(stmt, ast.CreateInstance):
            return ["create", stmt.variable, stmt.class_key]
        if isinstance(stmt, ast.DeleteInstance):
            return ["delete", self.expr(stmt.target)]
        if isinstance(stmt, ast.SelectFromInstances):
            return [
                "select_extent", stmt.variable, stmt.many, stmt.class_key,
                self.expr(stmt.where) if stmt.where is not None else None,
            ]
        if isinstance(stmt, ast.SelectRelated):
            hops = [[h.class_key, h.association, h.phrase] for h in stmt.hops]
            return [
                "select_related", stmt.variable, stmt.many,
                self.expr(stmt.start), hops,
                self.expr(stmt.where) if stmt.where is not None else None,
            ]
        if isinstance(stmt, ast.Relate):
            return ["relate", self.expr(stmt.left), self.expr(stmt.right),
                    stmt.association, stmt.phrase]
        if isinstance(stmt, ast.Unrelate):
            return ["unrelate", self.expr(stmt.left), self.expr(stmt.right),
                    stmt.association, stmt.phrase]
        if isinstance(stmt, ast.Generate):
            class_key = self._analysis.generate_classes[id(stmt)]
            return [
                "generate", stmt.event_label, class_key,
                [[name, self.expr(value)] for name, value in stmt.arguments],
                self.expr(stmt.target) if stmt.target is not None else None,
                self.expr(stmt.delay) if stmt.delay is not None else None,
                stmt.line,
            ]
        if isinstance(stmt, ast.If):
            return [
                "if",
                [[self.expr(cond), self.block(body)]
                 for cond, body in stmt.branches],
                self.block(stmt.orelse) if stmt.orelse is not None else None,
            ]
        if isinstance(stmt, ast.While):
            return ["while", self.expr(stmt.condition), self.block(stmt.body)]
        if isinstance(stmt, ast.ForEach):
            return ["foreach", stmt.variable, self.expr(stmt.iterable),
                    self.block(stmt.body)]
        if isinstance(stmt, ast.Break):
            return ["break"]
        if isinstance(stmt, ast.Continue):
            return ["continue"]
        if isinstance(stmt, ast.Return):
            return ["return",
                    self.expr(stmt.value) if stmt.value is not None else None]
        if isinstance(stmt, ast.ExprStmt):
            return ["exprstmt", self.expr(stmt.expr)]
        raise TypeError(f"cannot lower statement {type(stmt).__name__}")

    # -- expressions -----------------------------------------------------------

    def expr(self, expr: ast.Expr) -> list:
        if isinstance(expr, ast.IntLit):
            return ["int", expr.value]
        if isinstance(expr, ast.RealLit):
            return ["real", expr.value]
        if isinstance(expr, ast.StringLit):
            return ["str", expr.value]
        if isinstance(expr, ast.BoolLit):
            return ["bool", expr.value]
        if isinstance(expr, ast.EnumLit):
            etype = self._component.types.enum(expr.enum_name)
            return ["enum", expr.enum_name, expr.enumerator,
                    etype.code_of(expr.enumerator)]
        if isinstance(expr, ast.SelfRef):
            return ["self"]
        if isinstance(expr, ast.SelectedRef):
            return ["selected"]
        if isinstance(expr, ast.NameRef):
            return ["var", expr.name]
        if isinstance(expr, ast.ParamRef):
            return ["param", expr.name]
        if isinstance(expr, ast.AttrAccess):
            return ["attr", self.expr(expr.target), expr.attribute]
        if isinstance(expr, ast.Unary):
            return ["un", expr.op, self.expr(expr.operand)]
        if isinstance(expr, ast.Binary):
            return ["bin", expr.op, self.expr(expr.left), self.expr(expr.right)]
        if isinstance(expr, ast.BridgeCall):
            arguments = [[name, self.expr(value)]
                         for name, value in expr.arguments]
            if self._analysis.static_operation_calls.get(id(expr)):
                return ["classop", expr.entity, expr.operation, arguments]
            return ["bridge", expr.entity, expr.operation, arguments]
        if isinstance(expr, ast.OperationCall):
            arguments = [[name, self.expr(value)]
                         for name, value in expr.arguments]
            return ["instop", self.expr(expr.target), expr.operation, arguments]
        raise TypeError(f"cannot lower expression {type(expr).__name__}")


def walk_ir_statements(block: list):
    """Yield every statement in an IR block, depth-first."""
    for stmt in block:
        yield stmt
        tag = stmt[0]
        if tag == "if":
            for _, body in stmt[1]:
                yield from walk_ir_statements(body)
            if stmt[2] is not None:
                yield from walk_ir_statements(stmt[2])
        elif tag in ("while", "foreach"):
            yield from walk_ir_statements(stmt[-1])


def walk_ir_generates(block: list, in_loop: bool = False,
                      conditional: bool = False):
    """Yield ``(generate_stmt, in_loop, conditional)`` for every send.

    The flags carry the control-flow context the signal-flow analyzer
    needs: a send under ``if`` may not fire on every visit to its state
    (*conditional*), and a send under ``while``/``for each`` may fire
    many times (*in_loop*, which also implies *conditional* because the
    loop may run zero times).
    """
    for stmt in block:
        tag = stmt[0]
        if tag == "generate":
            yield stmt, in_loop, conditional
        elif tag == "if":
            for _, body in stmt[1]:
                yield from walk_ir_generates(body, in_loop, True)
            if stmt[2] is not None:
                yield from walk_ir_generates(stmt[2], in_loop, True)
        elif tag in ("while", "foreach"):
            yield from walk_ir_generates(stmt[-1], True, True)


def ir_op_counts(block: list) -> dict[str, int]:
    """Histogram of statement tags — the cost model's raw material."""
    counts: dict[str, int] = {}
    for stmt in walk_ir_statements(block):
        counts[stmt[0]] = counts.get(stmt[0], 0) + 1
    return counts
