"""C value semantics — the arithmetic every executor must agree on.

The profile promises a model means the same thing before and after
translation, so the whole toolchain fixes one value representation:

* integer/timestamp -> ``int``; real -> ``float``; boolean -> ``bool``;
  string -> ``str``; enum -> the enumerator name (``str``);
* instance reference -> an ``int`` handle or ``None``;
* instance set -> a sorted ``tuple`` of handles.

Arithmetic follows C semantics (the software mapping target): integer
division and remainder truncate toward zero.  These two functions used
to live in the abstract runtime's interpreter and were *imported by the
target-architecture runtime* — an inverted dependency.  They now live
here, below both layers, and everything imports them from the core.
"""

from __future__ import annotations

from repro.oal.errors import OALRuntimeError


def c_div(left: int, right: int) -> int:
    """C-style integer division: truncation toward zero."""
    if right == 0:
        raise OALRuntimeError("integer division by zero")
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def c_mod(left: int, right: int) -> int:
    """C-style remainder: sign follows the dividend."""
    if right == 0:
        raise OALRuntimeError("integer remainder by zero")
    return left - c_div(left, right) * right


def as_instance_set(value) -> tuple:
    """Coerce a value to the instance-set representation.

    ``None`` (an empty instance reference) is the empty set; a single
    handle is a one-element set; a tuple passes through.  Used by the
    ``cardinality``/``empty``/``not_empty`` unary operators.
    """
    if value is None:
        return ()
    if isinstance(value, tuple):
        return value
    return (value,)
