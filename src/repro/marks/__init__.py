"""Marks and partitions (paper section 3).

* :class:`MarkSet` — sticky notes kept outside the model, with a declared
  vocabulary (:data:`STANDARD_MARKS`, headed by ``isHardware``)
* :func:`derive_partition` — marks -> hardware/software split + boundary
* :func:`validate_marks` — keep marking files honest against the model
* :func:`diff_marks` / :func:`partition_change_cost` — repartition cost
"""

from .diff import ChangeKind, MarkChange, diff_marks, partition_change_cost
from .model import (
    CRC_KINDS,
    RELIABILITY_MARKS,
    STANDARD_MARKS,
    Mark,
    MarkDefinition,
    MarkError,
    MarkSet,
)
from .partition import (
    Partition,
    SignalFlow,
    all_partitions,
    derive_partition,
    marks_for_partition,
    partition_from_flows,
    signal_flows,
)
from .validate import MarkViolation, validate_marks

__all__ = [
    "CRC_KINDS",
    "ChangeKind",
    "Mark",
    "MarkChange",
    "MarkDefinition",
    "MarkError",
    "MarkSet",
    "MarkViolation",
    "Partition",
    "RELIABILITY_MARKS",
    "STANDARD_MARKS",
    "SignalFlow",
    "all_partitions",
    "derive_partition",
    "diff_marks",
    "marks_for_partition",
    "partition_from_flows",
    "partition_change_cost",
    "signal_flows",
    "validate_marks",
]
