"""Partition derivation — from marks to a hardware/software split.

"At system construction time, the conceptual objects are mapped to
hardware and software" (paper section 4).  The split is decided solely by
``isHardware`` marks; everything else in the toolchain (generators,
interface spec, co-simulation) consumes the derived :class:`Partition`,
never the marks directly — so a partition change really is "a matter of
changing the placement of the marks".

The partition also computes the *boundary*: every (sender class, event)
pair whose receiver lives on the other side.  Boundary signals are what
the interface generator turns into bus messages with generated C and
VHDL endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oal import ast
from repro.oal.analyzer import analyze_activity
from repro.oal.parser import parse_activity
from repro.xuml.component import Component
from repro.xuml.model import Model

from .model import MarkSet


@dataclass(frozen=True)
class SignalFlow:
    """A statically discovered signal path: sender class -> receiver class."""

    sender_class: str
    receiver_class: str
    event_label: str

    def __str__(self) -> str:
        return f"{self.sender_class} --{self.event_label}--> {self.receiver_class}"


def signal_flows(model: Model, component: Component) -> tuple[SignalFlow, ...]:
    """All (sender, receiver, event) triples found in the component's actions.

    Discovered by walking every state activity's ``generate`` statements;
    the analyzer resolves each statement's receiving class.  Environment
    injections are not included (they have no sending class).
    """
    flows: set[SignalFlow] = set()
    for klass in component.classes:
        for state in klass.statemachine.states:
            block = parse_activity(state.activity)
            analysis = analyze_activity(block, model, component, klass, state)
            for stmt in ast.walk_statements(block):
                if isinstance(stmt, ast.Generate):
                    receiver = analysis.generate_classes[id(stmt)]
                    flows.add(SignalFlow(klass.key_letters, receiver, stmt.event_label))
    return tuple(sorted(flows, key=lambda f: (f.sender_class, f.receiver_class, f.event_label)))


@dataclass
class Partition:
    """The realized hardware/software split of one component."""

    component_name: str
    hardware_classes: tuple[str, ...]
    software_classes: tuple[str, ...]
    boundary_flows: tuple[SignalFlow, ...]
    internal_flows: tuple[SignalFlow, ...] = field(default_factory=tuple)

    def side_of(self, class_key: str) -> str:
        if class_key in self.hardware_classes:
            return "hw"
        if class_key in self.software_classes:
            return "sw"
        raise KeyError(f"class {class_key!r} is not in this partition")

    @property
    def is_pure_software(self) -> bool:
        return not self.hardware_classes

    @property
    def is_pure_hardware(self) -> bool:
        return not self.software_classes

    def describe(self) -> str:
        lines = [f"partition of component {self.component_name}:"]
        lines.append(f"  hardware: {', '.join(self.hardware_classes) or '(none)'}")
        lines.append(f"  software: {', '.join(self.software_classes) or '(none)'}")
        lines.append(f"  boundary signals: {len(self.boundary_flows)}")
        for flow in self.boundary_flows:
            lines.append(f"    {flow}")
        return "\n".join(lines)


def derive_partition(
    model: Model, component: Component, marks: MarkSet
) -> Partition:
    """Compute the partition the marks describe."""
    return partition_from_flows(
        component, marks, signal_flows(model, component))


def partition_from_flows(
    component: Component, marks: MarkSet, flows: tuple[SignalFlow, ...]
) -> Partition:
    """Derive the partition from marks and precomputed signal flows.

    Flow discovery re-parses every state activity, but the flows depend
    only on the model — not the marks — so retarget-heavy callers (the
    incremental build cache) compute them once and re-split cheaply here.
    """
    hardware: list[str] = []
    software: list[str] = []
    for klass in component.classes:
        path = f"{component.name}.{klass.key_letters}"
        if marks.get(path, "isHardware"):
            hardware.append(klass.key_letters)
        else:
            software.append(klass.key_letters)
    side = {key: "hw" for key in hardware}
    side.update({key: "sw" for key in software})
    boundary = tuple(
        flow for flow in flows
        if side[flow.sender_class] != side[flow.receiver_class]
    )
    internal = tuple(
        flow for flow in flows
        if side[flow.sender_class] == side[flow.receiver_class]
    )
    return Partition(
        component.name, tuple(hardware), tuple(software), boundary, internal
    )


def all_partitions(component: Component) -> tuple[tuple[str, ...], ...]:
    """Every possible hardware subset of the component's classes.

    Used by the E4 sweep; for k classes this is 2^k candidate partitions,
    ordered by (size, lexicographic) for reproducible sweeps.
    """
    keys = sorted(component.class_keys)
    subsets: list[tuple[str, ...]] = []
    for bits in range(1 << len(keys)):
        subset = tuple(keys[i] for i in range(len(keys)) if bits & (1 << i))
        subsets.append(subset)
    subsets.sort(key=lambda s: (len(s), s))
    return tuple(subsets)


def marks_for_partition(
    component: Component, hardware_classes: tuple[str, ...],
    base: MarkSet | None = None,
) -> MarkSet:
    """Produce the mark set that realizes *hardware_classes*.

    Starts from *base* (default: empty standard-vocabulary set) and sets
    ``isHardware`` explicitly on every class — the generated marking file
    is the complete, reviewable record of the partition decision.
    """
    marks = base.copy() if base is not None else MarkSet()
    for key in component.class_keys:
        path = f"{component.name}.{key}"
        marks.set(path, "isHardware", key in hardware_classes)
    return marks
