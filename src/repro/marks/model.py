"""Marks — "sticky notes" on model elements.

Paper section 3: "Marks describe models but they are not a part of them
... a lightweight, non-intrusive extension to models that captures
information required for mappings without polluting those models."

Concretely, a :class:`Mark` is a ``(element_path, name, value)`` triple
kept in a :class:`MarkSet` that lives entirely outside the
:class:`~repro.xuml.model.Model`; element paths are the
``"Component.KeyLetters"`` strings of :mod:`repro.xuml.model`.  The mark
*vocabulary* is declared by :class:`MarkDefinition` so that mark files
can be validated; the standard vocabulary of this model compiler is
:data:`STANDARD_MARKS`, headed by the paper's own example, ``isHardware``.
"""

from __future__ import annotations

from dataclasses import dataclass


class MarkError(Exception):
    """Invalid mark or marking file."""


@dataclass(frozen=True)
class MarkDefinition:
    """Declares one mark name: its value type and default."""

    name: str
    value_type: type            # bool, int, or str
    default: object
    description: str = ""

    def coerce(self, raw: str):
        """Parse a textual value from a marking file."""
        if self.value_type is bool:
            lowered = raw.strip().lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no"):
                return False
            raise MarkError(f"mark {self.name}: {raw!r} is not a boolean")
        if self.value_type is int:
            try:
                return int(raw.strip())
            except ValueError:
                raise MarkError(f"mark {self.name}: {raw!r} is not an integer") from None
        return raw.strip()


#: Reliability marks — platform-level protection of boundary messages,
#: selected outside the model exactly like the partition itself.  They
#: apply to the *receiver* class: every bus message delivered to a class
#: marked ``crc`` is framed with a CRC trailer and sequence number by
#: both generated interface halves, and retransmitted on loss up to
#: ``maxRetries`` times with exponential ``retryBackoffNs`` backoff.
RELIABILITY_MARKS: tuple[MarkDefinition, ...] = (
    MarkDefinition("crc", str, "none",
                   "frame this class's boundary messages with a CRC "
                   "trailer (none | crc8 | crc16)"),
    MarkDefinition("maxRetries", int, 0,
                   "retransmission budget for protected boundary messages"),
    MarkDefinition("retryBackoffNs", int, 2000,
                   "base ack-timeout of the retransmit protocol, in "
                   "bus-time nanoseconds (doubles per attempt)"),
    MarkDefinition("isCritical", bool, False,
                   "count any lost message to this class as a platform "
                   "failure in the fault report"),
)

#: The model compiler's mark vocabulary.
STANDARD_MARKS: tuple[MarkDefinition, ...] = (
    MarkDefinition("isHardware", bool, False,
                   "map this class onto the hardware partition (VHDL)"),
    MarkDefinition("clock_mhz", int, 100,
                   "clock frequency of the hardware block"),
    MarkDefinition("processor", str, "cpu0",
                   "which processor runs this software class"),
    MarkDefinition("priority", int, 0,
                   "dispatch priority in the software architecture"),
    MarkDefinition("queue_depth", int, 16,
                   "event queue depth reserved for this class"),
    MarkDefinition("bus", str, "ahb0",
                   "bus segment carrying this class's cross-partition signals"),
    MarkDefinition("unroll_loops", bool, False,
                   "hardware mapping hint: unroll bounded loops"),
) + RELIABILITY_MARKS

#: CRC kinds the reliability framing understands.
CRC_KINDS: tuple[str, ...] = ("none", "crc8", "crc16")


@dataclass(frozen=True)
class Mark:
    """One sticky note: *name* = *value* attached to *element_path*."""

    element_path: str
    name: str
    value: object

    def __str__(self) -> str:
        return f"{self.element_path} {self.name} = {self.value}"


class MarkSet:
    """A collection of marks, at most one value per (element, mark name)."""

    def __init__(self, definitions: tuple[MarkDefinition, ...] = STANDARD_MARKS):
        self._definitions = {d.name: d for d in definitions}
        self._marks: dict[tuple[str, str], Mark] = {}

    # -- vocabulary ----------------------------------------------------------

    @property
    def definitions(self) -> tuple[MarkDefinition, ...]:
        return tuple(self._definitions.values())

    def definition(self, name: str) -> MarkDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise MarkError(f"unknown mark name {name!r}") from None

    # -- content -------------------------------------------------------------

    def set(self, element_path: str, name: str, value) -> Mark:
        definition = self.definition(name)
        if not isinstance(value, definition.value_type):
            raise MarkError(
                f"mark {name} on {element_path}: expected "
                f"{definition.value_type.__name__}, got {type(value).__name__}"
            )
        mark = Mark(element_path, name, value)
        self._marks[(element_path, name)] = mark
        return mark

    def clear(self, element_path: str, name: str) -> bool:
        return self._marks.pop((element_path, name), None) is not None

    def get(self, element_path: str, name: str):
        """Value of the mark, falling back to the vocabulary default."""
        mark = self._marks.get((element_path, name))
        if mark is not None:
            return mark.value
        return self.definition(name).default

    def is_explicit(self, element_path: str, name: str) -> bool:
        return (element_path, name) in self._marks

    def marks_on(self, element_path: str) -> tuple[Mark, ...]:
        return tuple(
            mark for (path, _), mark in sorted(self._marks.items())
            if path == element_path
        )

    @property
    def marks(self) -> tuple[Mark, ...]:
        return tuple(mark for _, mark in sorted(self._marks.items()))

    def __len__(self) -> int:
        return len(self._marks)

    def copy(self) -> "MarkSet":
        duplicate = MarkSet(self.definitions)
        duplicate._marks = dict(self._marks)
        return duplicate

    # -- marking files ----------------------------------------------------------

    def dumps(self) -> str:
        """Serialize to the marking-file format (one sticky note per line)."""
        lines = ["# marking file — sticky notes, not part of the model"]
        lines.extend(str(mark) for mark in self.marks)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(
        cls, text: str, definitions: tuple[MarkDefinition, ...] = STANDARD_MARKS
    ) -> "MarkSet":
        """Parse a marking file: ``Component.KL markName = value`` lines."""
        marks = cls(definitions)
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            head, equals, raw_value = stripped.partition("=")
            if not equals:
                raise MarkError(f"line {lineno}: expected 'path name = value'")
            parts = head.split()
            if len(parts) != 2:
                raise MarkError(f"line {lineno}: expected 'path name = value'")
            element_path, name = parts
            definition = marks.definition(name)
            marks.set(element_path, name, definition.coerce(raw_value))
        return marks
