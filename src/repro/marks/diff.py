"""Mark-set diffing — the unit of repartitioning cost.

"Changing the partition is a matter of changing the placement of the
marks" (paper section 4).  E2 quantifies that: the cost of moving from
one partition to another, measured in *mark flips*, versus the lines of
implementation text the change touches in an implementation-first
workflow.  This module computes the flips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .model import MarkSet


class ChangeKind(enum.Enum):
    ADDED = "added"
    REMOVED = "removed"
    CHANGED = "changed"


@dataclass(frozen=True)
class MarkChange:
    """One edit between two marking files."""

    kind: ChangeKind
    element_path: str
    mark_name: str
    old_value: object = None
    new_value: object = None

    def __str__(self) -> str:
        if self.kind is ChangeKind.ADDED:
            return f"+ {self.element_path} {self.mark_name} = {self.new_value}"
        if self.kind is ChangeKind.REMOVED:
            return f"- {self.element_path} {self.mark_name} (was {self.old_value})"
        return (
            f"~ {self.element_path} {self.mark_name}: "
            f"{self.old_value} -> {self.new_value}"
        )


def diff_marks(old: MarkSet, new: MarkSet) -> list[MarkChange]:
    """All edits needed to turn *old* into *new* (deterministic order)."""
    old_map = {(m.element_path, m.name): m.value for m in old.marks}
    new_map = {(m.element_path, m.name): m.value for m in new.marks}
    changes: list[MarkChange] = []
    for key in sorted(set(old_map) | set(new_map)):
        path, name = key
        if key not in old_map:
            changes.append(MarkChange(ChangeKind.ADDED, path, name,
                                      new_value=new_map[key]))
        elif key not in new_map:
            changes.append(MarkChange(ChangeKind.REMOVED, path, name,
                                      old_value=old_map[key]))
        elif old_map[key] != new_map[key]:
            changes.append(MarkChange(ChangeKind.CHANGED, path, name,
                                      old_value=old_map[key],
                                      new_value=new_map[key]))
    return changes


def partition_change_cost(old: MarkSet, new: MarkSet) -> int:
    """Number of ``isHardware`` flips between two marking sets.

    This is the paper's claimed cost of a repartition: the count of
    sticky notes that moved.
    """
    return sum(
        1 for change in diff_marks(old, new) if change.mark_name == "isHardware"
    )
