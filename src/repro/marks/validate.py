"""Validation of mark sets against a model.

Marks live outside the model, so nothing stops a marking file referring
to elements that do not exist or that have been renamed.  The validator
is what keeps sticky notes honest: every finding is a
:class:`MarkViolation`, and ``strict=True`` raises on errors.
"""

from __future__ import annotations

from repro.analysis.findings import MarkViolation
from repro.xuml.model import Model

from .model import CRC_KINDS, MarkError, MarkSet


#: Marks that make sense as component-wide defaults (software
#: architecture knobs).  Everything else in the vocabulary targets one
#: class — ``isHardware`` on a component, say, moves nothing into
#: hardware, and silently accepting it hides a dead sticky note.
COMPONENT_MARKS: frozenset[str] = frozenset(
    {"bus", "processor", "priority", "queue_depth"})


def validate_marks(
    marks: MarkSet, model: Model, strict: bool = False
) -> list[MarkViolation]:
    """Check every mark refers to a real element with a sensible value."""
    violations: list[MarkViolation] = []
    known_paths = set(model.class_paths())
    known_components = {component.name for component in model.components}

    for mark in marks.marks:
        if mark.element_path in known_paths:
            pass  # class-level: every mark in the vocabulary applies
        elif mark.element_path in known_components:
            # component-level marks are allowed only as architecture
            # defaults (e.g. the default bus); a class-only mark here
            # used to be swallowed silently and do nothing
            if mark.name not in COMPONENT_MARKS:
                violations.append(MarkViolation(
                    mark.element_path, mark.name,
                    f"{mark.name} targets a class, not a component — "
                    f"attach it to one of the component's classes "
                    f"(component-level marks: "
                    f"{'/'.join(sorted(COMPONENT_MARKS))})",
                ))
                continue
        else:
            violations.append(MarkViolation(
                mark.element_path, mark.name,
                "element does not exist in the model",
            ))
            continue

        if mark.name == "clock_mhz" and isinstance(mark.value, int):
            if not 1 <= mark.value <= 10_000:
                violations.append(MarkViolation(
                    mark.element_path, mark.name,
                    f"clock of {mark.value} MHz is outside 1..10000",
                ))
        if mark.name == "queue_depth" and isinstance(mark.value, int):
            if mark.value < 1:
                violations.append(MarkViolation(
                    mark.element_path, mark.name,
                    "queue depth must be at least 1",
                ))
        if mark.name == "clock_mhz" and not marks.get(mark.element_path, "isHardware"):
            violations.append(MarkViolation(
                mark.element_path, mark.name,
                "clock_mhz only applies to isHardware elements",
            ))

        # reliability marks: keep the protection vocabulary honest
        if mark.name == "crc" and mark.value not in CRC_KINDS:
            violations.append(MarkViolation(
                mark.element_path, mark.name,
                f"{mark.value!r} is not one of {'/'.join(CRC_KINDS)}",
            ))
        if mark.name == "maxRetries" and isinstance(mark.value, int):
            if not 0 <= mark.value <= 16:
                violations.append(MarkViolation(
                    mark.element_path, mark.name,
                    f"retry budget of {mark.value} is outside 0..16",
                ))
            elif mark.value > 0 and \
                    marks.get(mark.element_path, "crc") == "none":
                violations.append(MarkViolation(
                    mark.element_path, mark.name,
                    "retransmission requires a crc mark (retries are "
                    "triggered by CRC rejection)",
                ))
        if mark.name == "retryBackoffNs" and isinstance(mark.value, int):
            if mark.value < 1:
                violations.append(MarkViolation(
                    mark.element_path, mark.name,
                    "retry backoff must be at least 1 ns",
                ))
        if mark.name == "isCritical" and mark.value and \
                marks.get(mark.element_path, "crc") == "none":
            violations.append(MarkViolation(
                mark.element_path, mark.name,
                "a critical class needs a crc mark so losses are "
                "detectable",
            ))

    if strict and violations:
        details = "; ".join(str(v) for v in violations)
        raise MarkError(f"marking set is invalid: {details}")
    return violations
