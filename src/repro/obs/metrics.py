"""Metrics registry — counters, gauges and fixed-bucket histograms.

One registry is the single source of measurement truth for the whole
toolchain: the runtime scheduler (queue depth, dispatch wait), the
co-simulation engine and bus (signal latency, occupancy, retransmits)
and the build scheduler/store (hit/miss/evict, per-job wall time) all
report into the same namespace, so ``repro metrics`` can print one
coherent table instead of three bespoke ones.

Instrumented code looks the registry up **once**, at construction time,
via :func:`active_registry`.  When no registry is active the lookup
returns ``None`` and every hook collapses to a single ``is not None``
test — the hot path pays nothing for observability it did not ask for.

The percentile helper here is the one shared by every caller (including
:class:`repro.cosim.perf.LatencyProbe`): ceil-based nearest rank, which
never under-reports the tail at small sample counts the way round-based
indexing does.
"""

from __future__ import annotations

import math
from contextlib import contextmanager


class MetricsError(Exception):
    """Bad metric name, bucket layout, or percentile fraction."""


def percentile_nearest_rank(values, fraction: float) -> float:
    """Ceil-based nearest-rank percentile of *values*.

    ``fraction`` is in 0..1.  The rank is ``ceil(fraction * (n - 1))``
    over the sorted samples, so the estimate is always an observed value
    and the tail is never under-reported: the p99 of 100 distinct
    samples is the 100th value, not the 99th (round-based indexing — the
    bug this helper replaces — picks the 99th).  Empty input is NaN.
    """
    if not 0.0 <= fraction <= 1.0:
        raise MetricsError(f"percentile fraction {fraction} is outside 0..1")
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    index = math.ceil(fraction * (len(ordered) - 1))
    return float(ordered[index])


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name}: cannot add {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value; remembers its high-water mark."""

    __slots__ = ("name", "value", "max_value", "_set")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        self.value = value
        self.max_value = value if not self._set else max(self.max_value, value)
        self._set = True


#: Default histogram bucket upper bounds — wide enough for nanosecond
#: latencies and small enough for queue depths; callers with a known
#: range pass their own.
DEFAULT_BUCKETS: tuple[int, ...] = (
    1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
)


class Histogram:
    """Fixed-bucket distribution that also retains raw samples.

    The buckets give a cheap shape summary (``bucket_counts[i]`` counts
    observations ``<= buckets[i]``, with one overflow bucket at the
    end); the retained samples make :meth:`percentile` *exact* — the
    shared ceil-based nearest-rank helper over real observations, not a
    bucket-boundary approximation.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "_samples", "total")

    def __init__(self, name: str, buckets: tuple[int, ...] = DEFAULT_BUCKETS):
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricsError(
                f"histogram {name}: buckets must be strictly increasing, "
                f"got {buckets!r}")
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self._samples: list[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.bucket_counts[index] += 1
        self._samples.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else float("nan")

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return self.total / len(self._samples)

    def percentile(self, fraction: float) -> float:
        return percentile_nearest_rank(self._samples, fraction)

    def bucket_table(self) -> tuple[tuple[float, int], ...]:
        """(upper bound, count) pairs; the overflow bound is +inf."""
        bounds = self.buckets + (float("inf"),)
        return tuple(zip(bounds, self.bucket_counts))


def _number(value: float):
    """Ints stay ints in reports; everything else rounds readably."""
    if isinstance(value, int):
        return value
    if math.isnan(value):
        return None
    return int(value) if float(value).is_integer() else round(value, 3)


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: dict) -> None:
        if not name or not isinstance(name, str):
            raise MetricsError(f"metric name must be a non-empty string, "
                               f"got {name!r}")
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise MetricsError(
                    f"metric {name!r} already registered with another type")

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._claim(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._claim(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: tuple[int, ...] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._claim(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    # -- introspection -------------------------------------------------------

    @property
    def counters(self) -> tuple[Counter, ...]:
        return tuple(self._counters[n] for n in sorted(self._counters))

    @property
    def gauges(self) -> tuple[Gauge, ...]:
        return tuple(self._gauges[n] for n in sorted(self._gauges))

    @property
    def histograms(self) -> tuple[Histogram, ...]:
        return tuple(self._histograms[n] for n in sorted(self._histograms))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> dict:
        """A JSON-ready snapshot, stable under key sorting."""
        return {
            "counters": {c.name: c.value for c in self.counters},
            "gauges": {g.name: _number(g.value) for g in self.gauges},
            "histograms": {
                h.name: {
                    "count": h.count,
                    "sum": _number(h.total),
                    "min": _number(h.min),
                    "max": _number(h.max),
                    "mean": _number(h.mean()),
                    "p50": _number(h.percentile(0.50)),
                    "p90": _number(h.percentile(0.90)),
                    "p99": _number(h.percentile(0.99)),
                }
                for h in self.histograms
            },
        }

    def render_table(self) -> str:
        """One aligned text table over every metric, sorted by name."""
        rows: list[tuple[str, str, str]] = []
        for counter in self.counters:
            rows.append((counter.name, "counter", str(counter.value)))
        for gauge in self.gauges:
            rows.append((gauge.name, "gauge",
                         f"{_number(gauge.value)} (max {_number(gauge.max_value)})"))
        for histogram in self.histograms:
            rows.append((
                histogram.name, "histogram",
                f"n={histogram.count} mean={_number(histogram.mean())} "
                f"p50={_number(histogram.percentile(0.50))} "
                f"p99={_number(histogram.percentile(0.99))} "
                f"max={_number(histogram.max)}"))
        if not rows:
            return "(no metrics recorded)"
        rows.sort()
        width = max(len(name) for name, _, _ in rows)
        return "\n".join(
            f"{name:{width}s}  {kind:9s}  {detail}"
            for name, kind, detail in rows)


#: The process-wide registry instrumented code reports into, or None.
_ACTIVE: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    """The registry hooks should report into; None disables them."""
    return _ACTIVE


def set_active_registry(
        registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install *registry* (or None to disable); returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def observe(registry: MetricsRegistry | None = None):
    """Run a block with a registry active; yields that registry.

    ``with observe() as registry: ...`` is the one-liner the CLI and the
    tests use: everything constructed inside the block reports into
    *registry*, everything outside stays a no-op.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_active_registry(active)
    try:
        yield active
    finally:
        set_active_registry(previous)
