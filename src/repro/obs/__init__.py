"""Unified observability: structured trace export, metrics, critical path.

* :mod:`~repro.obs.export` — versioned JSONL trace serialization with a
  byte-identical round-trip guarantee
* :mod:`~repro.obs.metrics` — one registry of counters/gauges/histograms
  shared by the runtime, the co-simulation and the build cache; hooks
  are no-ops unless a registry is :func:`observe`-d
* :mod:`~repro.obs.critical` — longest send→consume→transition chain of
  a recorded run

Surface: ``repro trace`` and ``repro metrics`` (see :mod:`repro.cli`).
"""

from .critical import CriticalPath, CriticalStep, critical_path
from .export import (
    SCHEMA,
    SCHEMA_VERSION,
    TraceSchemaError,
    attach_machine_trace,
    batch_report_trace,
    dump_jsonl,
    load_jsonl,
    read_jsonl,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    active_registry,
    observe,
    percentile_nearest_rank,
    set_active_registry,
)

__all__ = [
    "Counter",
    "CriticalPath",
    "CriticalStep",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "SCHEMA",
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "active_registry",
    "attach_machine_trace",
    "batch_report_trace",
    "critical_path",
    "dump_jsonl",
    "load_jsonl",
    "observe",
    "percentile_nearest_rank",
    "read_jsonl",
    "set_active_registry",
    "write_jsonl",
]
