"""Structured JSONL trace export — one stable, versioned schema.

A trace stream is one header line followed by one line per event:

    {"schema":"repro.trace","version":1}
    {"data":{...},"index":0,"kind":"instance_created","time":0}

Every line is canonical JSON (sorted keys, no whitespace), which makes
the format *byte-stable*: ``load_jsonl`` followed by ``dump_jsonl``
reproduces the input byte for byte, so traces can be diffed, content-
addressed and archived without a parser in the loop.  Readers reject
any stream whose schema name or version they do not understand — the
version is the contract that lets the format evolve without silently
misreading old archives.

Beyond the runtime's own :class:`~repro.runtime.tracing.Trace`, two
helpers lift the other subsystems' events into the same schema:
:func:`attach_machine_trace` records a co-simulation's bus-level signal
traffic, and :func:`batch_report_trace` serializes a batch build's
per-job outcomes — so one loader and one toolchain serve all three.
"""

from __future__ import annotations

import json
import pathlib

from repro.runtime.tracing import Trace, TraceKind

#: Schema identifier carried by every trace stream's header line.
SCHEMA = "repro.trace"

#: Bump on any change to the line layout or event encoding.
SCHEMA_VERSION = 1

_KINDS = {kind.value: kind for kind in TraceKind}


class TraceSchemaError(Exception):
    """The stream is not a trace this reader understands."""


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dump_jsonl(trace: Trace) -> str:
    """Serialize *trace* to the versioned JSONL format (ends with \\n)."""
    lines = [_dumps({"schema": SCHEMA, "version": SCHEMA_VERSION})]
    lines.extend(
        _dumps({
            "data": event.data,
            "index": event.index,
            "kind": event.kind.value,
            "time": event.time,
        })
        for event in trace
    )
    return "\n".join(lines) + "\n"


def load_jsonl(text: str) -> Trace:
    """Parse a trace stream back into a :class:`Trace`.

    Raises :class:`TraceSchemaError` for a missing/foreign header, an
    unsupported version, malformed lines, unknown event kinds, or
    event indices that do not form the gap-free 0..n-1 sequence an
    append-only trace guarantees.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceSchemaError("empty stream: missing trace header line")
    header = _parse_line(lines[0], 1)
    if header.get("schema") != SCHEMA:
        raise TraceSchemaError(
            f"not a {SCHEMA} stream (header schema is "
            f"{header.get('schema')!r})")
    version = header.get("version")
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported trace schema version {version!r} "
            f"(this reader understands version {SCHEMA_VERSION})")
    trace = Trace()
    for lineno, line in enumerate(lines[1:], start=2):
        record = _parse_line(line, lineno)
        try:
            kind_name = record["kind"]
            time = record["time"]
            index = record["index"]
            data = record["data"]
        except KeyError as exc:
            raise TraceSchemaError(
                f"line {lineno}: event record misses field {exc}") from None
        kind = _KINDS.get(kind_name)
        if kind is None:
            raise TraceSchemaError(
                f"line {lineno}: unknown event kind {kind_name!r}")
        if not isinstance(data, dict):
            raise TraceSchemaError(
                f"line {lineno}: event data must be an object, "
                f"got {type(data).__name__}")
        event = trace.record(time, kind, **data)
        if event.index != index:
            raise TraceSchemaError(
                f"line {lineno}: event index {index} breaks the "
                f"append-only sequence (expected {event.index})")
    return trace


def _parse_line(line: str, lineno: int) -> dict:
    try:
        parsed = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"line {lineno}: not JSON ({exc})") from None
    if not isinstance(parsed, dict):
        raise TraceSchemaError(
            f"line {lineno}: expected a JSON object, "
            f"got {type(parsed).__name__}")
    return parsed


def write_jsonl(trace: Trace, path) -> str:
    """Write *trace* to *path*; returns the path written."""
    target = pathlib.Path(path)
    target.write_text(dump_jsonl(trace))
    return str(target)


def read_jsonl(path) -> Trace:
    """Load a trace stream from *path*."""
    return load_jsonl(pathlib.Path(path).read_text())


# -- lifting other subsystems' events into the schema ------------------------


def attach_machine_trace(machine) -> Trace:
    """Record a co-simulation's signal traffic into a fresh trace.

    Installs ``on_sent`` / ``on_consumed`` observers on *machine* (a
    :class:`~repro.cosim.engine.CoSimMachine`); times are platform
    nanoseconds.  The returned trace exports through the same schema as
    a runtime trace.
    """
    trace = Trace()

    def on_sent(time_ns: int, signal) -> None:
        trace.record(
            time_ns, TraceKind.SIGNAL_SENT,
            sequence=signal.sequence, label=signal.label,
            target=signal.target_handle, sender=signal.sender_handle,
            activity=signal.activity_id, delay=0,
        )

    def on_consumed(time_ns: int, signal) -> None:
        trace.record(
            time_ns, TraceKind.SIGNAL_CONSUMED,
            sequence=signal.sequence, label=signal.label,
            target=signal.target_handle, sender=signal.sender_handle,
            sent_activity=signal.activity_id,
        )

    machine.on_sent.append(on_sent)
    machine.on_consumed.append(on_consumed)
    return trace


def batch_report_trace(report) -> Trace:
    """Serialize a batch build's per-job outcomes as trace events.

    *report* is a :class:`~repro.build.scheduler.BatchReport`; each job
    becomes one LOG event (timestamped in whole elapsed microseconds of
    the job itself, since batch jobs have no shared clock).
    """
    trace = Trace()
    for result in report.results:
        trace.record(
            int(result.elapsed_s * 1_000_000), TraceKind.LOG,
            record="build_job", job=result.job.label, ok=result.ok,
            error=result.error, classes_compiled=result.classes_compiled,
            classes_reused=result.classes_reused,
            store_hits=result.store.hits, store_misses=result.store.misses,
        )
    return trace
