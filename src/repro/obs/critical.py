"""Critical-path analysis over a recorded trace.

The causality rules (paper section 2) make a trace a DAG: a consumed
signal starts exactly one activity, and that activity's sends are
caused by it.  The *critical path* is the longest
send → consume → transition chain through that DAG — the sequence of
dependent dispatches that bounds how fast the run could possibly have
finished, no matter how much hardware parallelism a partition buys.
``repro trace --critical`` prints it; E10 uses it to explain *why* the
E4 partitions rank the way they do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.tracing import Trace, TraceKind


@dataclass(frozen=True)
class CriticalStep:
    """One link of the chain: a signal that was sent and consumed."""

    sequence: int
    label: str
    target: int | None
    sent_time: int
    consumed_time: int

    def __str__(self) -> str:
        return (f"#{self.sequence} {self.label} -> instance "
                f"{self.target} (sent t={self.sent_time}, "
                f"consumed t={self.consumed_time})")


@dataclass(frozen=True)
class CriticalPath:
    """The longest causality chain of one run."""

    steps: tuple[CriticalStep, ...]
    end_time: int = 0

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def start_time(self) -> int:
        return self.steps[0].sent_time if self.steps else 0

    @property
    def span(self) -> int:
        return self.end_time - self.start_time if self.steps else 0

    def labels(self) -> tuple[str, ...]:
        return tuple(step.label for step in self.steps)

    def render(self) -> str:
        if not self.steps:
            return "critical path: empty trace (no consumed signals)"
        lines = [
            f"critical path: {self.length} dependent signal(s), "
            f"t={self.start_time}..{self.end_time} (span {self.span})"
        ]
        lines.extend(f"  {step}" for step in self.steps)
        return "\n".join(lines)


def critical_path(trace: Trace) -> CriticalPath:
    """The longest send→consume→transition chain recorded in *trace*.

    Chains follow the causality edges the checker in
    :mod:`repro.runtime.causality` verifies: signal *s* links to every
    signal sent by the activity that *s*'s consumption started.  Ties
    break toward lower sequence numbers, so the result is deterministic.
    Traces without activity events (e.g. bus-level co-sim recordings)
    yield single-link chains.
    """
    sent: dict[int, dict] = {}
    sent_time: dict[int, int] = {}
    consumed: dict[int, dict] = {}
    consumed_time: dict[int, int] = {}
    activity_of: dict[int, int] = {}        # consumed sequence -> activity
    activity_end: dict[int, int] = {}
    sends_of_activity: dict[int, list[int]] = {}

    for event in trace:
        data = event.data
        if event.kind is TraceKind.SIGNAL_SENT:
            sequence = data["sequence"]
            sent[sequence] = data
            sent_time[sequence] = event.time
            sends_of_activity.setdefault(data.get("activity", 0), []).append(
                sequence)
        elif event.kind is TraceKind.SIGNAL_CONSUMED:
            sequence = data["sequence"]
            consumed[sequence] = data
            consumed_time[sequence] = event.time
        elif event.kind is TraceKind.ACTIVITY_START:
            sequence = data.get("consumed_sequence")
            if sequence is not None:
                activity_of[sequence] = data["activity"]
        elif event.kind is TraceKind.ACTIVITY_END:
            activity_end[data["activity"]] = event.time

    if not consumed:
        return CriticalPath(steps=())

    # Causality edges only point at strictly later sequence stamps (a
    # signal is sent after the signal that caused it was consumed), so a
    # single pass in decreasing sequence order is a topological DP.
    best_length: dict[int, int] = {}
    best_child: dict[int, int | None] = {}
    for sequence in sorted(consumed, reverse=True):
        activity = activity_of.get(sequence)
        length, child = 0, None
        for candidate in sends_of_activity.get(activity, ()):  # type: ignore[arg-type]
            candidate_length = best_length.get(candidate, 0)
            if candidate_length > length or (
                    candidate_length == length and child is not None
                    and candidate < child):
                length, child = candidate_length, candidate
        best_length[sequence] = length + 1
        best_child[sequence] = child

    root = max(best_length, key=lambda seq: (best_length[seq], -seq))
    chain: list[int] = []
    cursor: int | None = root
    while cursor is not None:
        chain.append(cursor)
        cursor = best_child[cursor]

    steps = tuple(
        CriticalStep(
            sequence=sequence,
            label=consumed[sequence].get("label", "?"),
            target=consumed[sequence].get("target"),
            sent_time=sent_time.get(sequence, consumed_time[sequence]),
            consumed_time=consumed_time[sequence],
        )
        for sequence in chain
    )
    last = chain[-1]
    end_time = activity_end.get(
        activity_of.get(last, -1), consumed_time[last])
    return CriticalPath(steps=steps, end_time=end_time)
