"""Exception hierarchy for the Executable UML metamodel.

All metamodel-layer failures derive from :class:`ModelError` so callers can
catch one type at the model boundary.  Construction-time failures (duplicate
key letters, dangling references) raise eagerly; whole-model consistency is
checked by :mod:`repro.xuml.wellformed`, which *collects* violations instead
of raising, because a modeling tool must report every problem at once.
"""

from __future__ import annotations


class ModelError(Exception):
    """Base class for all metamodel errors."""


class DuplicateElementError(ModelError):
    """An element with the same name/key was already defined in this scope."""


class UnknownElementError(ModelError):
    """A lookup referenced an element that does not exist."""


class DefinitionError(ModelError):
    """An element definition is internally inconsistent."""


class WellFormednessError(ModelError):
    """Raised by ``check(strict=True)`` when a model has violations."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(f"model is not well-formed:\n{lines}")
