"""Well-formedness checking (the profile's OCL-style rules).

A modelling tool must report *all* problems in one pass, so the checker
collects :class:`Violation` records instead of raising on the first one.
``check_model(strict=True)`` raises :class:`WellFormednessError` when any
ERROR-severity violation exists; WARNING-severity findings (unreachable
states, unhandled events) never raise.

Action-language bodies are parsed and analyzed too (lazily imported from
:mod:`repro.oal` to keep the package layering acyclic), because a model
whose activities do not compile is not executable — and executability is
the whole point (paper section 2).
"""

from __future__ import annotations

from repro.analysis.findings import Severity, Violation

from .errors import WellFormednessError
from .model import Model

__all__ = ["Severity", "Violation", "check_model"]


def check_model(
    model: Model, strict: bool = False, check_actions: bool = True
) -> list[Violation]:
    """Run every well-formedness rule over *model*.

    Returns the full list of violations; with ``strict=True`` raises
    :class:`WellFormednessError` if any ERROR is present.
    """
    violations: list[Violation] = []
    for component in model.components:
        _check_component(component, violations)
    if check_actions:
        _check_actions(model, violations)

    if strict:
        errors = [v for v in violations if v.severity is Severity.ERROR]
        if errors:
            raise WellFormednessError(errors)
    return violations


def _check_component(component, violations: list[Violation]) -> None:
    for klass in component.classes:
        _check_class(component, klass, violations)
    for association in component.associations:
        _check_association(component, association, violations)


def _check_class(component, klass, violations: list[Violation]) -> None:
    where = f"{component.name}.{klass.key_letters}"

    # identifiers reference real attributes
    for identifier in klass.identifiers:
        for attr_name in identifier.attribute_names:
            if not klass.has_attribute(attr_name):
                violations.append(Violation(
                    Severity.ERROR, where,
                    f"identifier {identifier.label} references unknown "
                    f"attribute {attr_name!r}",
                ))

    # referential attributes formalize real associations this class joins
    for attribute in klass.attributes:
        if attribute.referential is None:
            continue
        if not component.has_association(attribute.referential):
            violations.append(Violation(
                Severity.ERROR, where,
                f"attribute {attribute.name!r} formalizes unknown "
                f"association {attribute.referential!r}",
            ))
            continue
        association = component.association(attribute.referential)
        if klass.key_letters not in association.participants():
            violations.append(Violation(
                Severity.ERROR, where,
                f"attribute {attribute.name!r} formalizes {attribute.referential} "
                f"but {klass.key_letters} does not participate in it",
            ))

    _check_statemachine(component, klass, violations, where)


def _check_statemachine(component, klass, violations, where: str) -> None:
    machine = klass.statemachine
    if machine.is_empty():
        if klass.events:
            violations.append(Violation(
                Severity.ERROR, where,
                "class declares events but has no state machine",
            ))
        return

    if machine.initial_state is None:
        violations.append(Violation(
            Severity.ERROR, where, "state machine has no initial state",
        ))
    elif not machine.has_state(machine.initial_state):
        violations.append(Violation(
            Severity.ERROR, where,
            f"initial state {machine.initial_state!r} is not a state",
        ))

    for transition in machine.transitions:
        if not machine.has_state(transition.from_state):
            violations.append(Violation(
                Severity.ERROR, where,
                f"transition from unknown state {transition.from_state!r}",
            ))
        if not machine.has_state(transition.to_state):
            violations.append(Violation(
                Severity.ERROR, where,
                f"transition to unknown state {transition.to_state!r}",
            ))
        if not klass.has_event(transition.event_label):
            violations.append(Violation(
                Severity.ERROR, where,
                f"transition on undeclared event {transition.event_label!r}",
            ))
        elif klass.event(transition.event_label).creation:
            violations.append(Violation(
                Severity.ERROR, where,
                f"creation event {transition.event_label!r} used on a "
                "normal transition",
            ))

    for creation in machine.creation_transitions:
        if not machine.has_state(creation.to_state):
            violations.append(Violation(
                Severity.ERROR, where,
                f"creation transition to unknown state {creation.to_state!r}",
            ))
        if not klass.has_event(creation.event_label):
            violations.append(Violation(
                Severity.ERROR, where,
                f"creation transition on undeclared event "
                f"{creation.event_label!r}",
            ))
        elif not klass.event(creation.event_label).creation:
            violations.append(Violation(
                Severity.ERROR, where,
                f"event {creation.event_label!r} drives a creation transition "
                "but is not declared creation=True",
            ))

    # reachability (warning only)
    reachable = machine.reachable_states()
    for state in machine.states:
        if state.name not in reachable:
            violations.append(Violation(
                Severity.WARNING, where,
                f"state {state.name!r} is unreachable",
            ))

    # declared events never appearing in the table (warning only)
    handled = machine.events_handled()
    for event in klass.events:
        if event.label not in handled:
            violations.append(Violation(
                Severity.WARNING, where,
                f"event {event.label!r} is declared but never handled",
            ))


def _check_association(component, association, violations: list[Violation]) -> None:
    where = f"{component.name}.{association.number}"
    for end in (association.one, association.other):
        if not component.has_class(end.class_key):
            violations.append(Violation(
                Severity.ERROR, where,
                f"association end references unknown class {end.class_key!r}",
            ))
    if association.link_class_key is not None:
        if not component.has_class(association.link_class_key):
            violations.append(Violation(
                Severity.ERROR, where,
                f"link class {association.link_class_key!r} is unknown",
            ))
    if association.is_reflexive and association.one.phrase == association.other.phrase:
        violations.append(Violation(
            Severity.ERROR, where,
            "reflexive association ends must carry distinct phrases",
        ))


def _check_actions(model: Model, violations: list[Violation]) -> None:
    """Parse + statically analyze every activity, operation and derived expr."""
    from repro.oal.analyzer import AnalysisError, analyze_activity
    from repro.oal.parser import OALSyntaxError, parse_activity

    for component in model.components:
        for klass in component.classes:
            for state in klass.statemachine.states:
                if not state.activity.strip():
                    continue
                where = f"{component.name}.{klass.key_letters}.{state.name}"
                try:
                    block = parse_activity(state.activity)
                    analyze_activity(block, model, component, klass, state)
                except OALSyntaxError as exc:
                    violations.append(Violation(
                        Severity.ERROR, where, f"activity does not parse: {exc}",
                    ))
                except AnalysisError as exc:
                    violations.append(Violation(
                        Severity.ERROR, where, f"activity is ill-typed: {exc}",
                    ))
            for operation in klass.operations:
                if not operation.body.strip():
                    continue
                where = f"{component.name}.{klass.key_letters}::{operation.name}"
                try:
                    block = parse_activity(operation.body)
                    analyze_activity(
                        block, model, component, klass, None, operation=operation
                    )
                except OALSyntaxError as exc:
                    violations.append(Violation(
                        Severity.ERROR, where, f"operation does not parse: {exc}",
                    ))
                except AnalysisError as exc:
                    violations.append(Violation(
                        Severity.ERROR, where, f"operation is ill-typed: {exc}",
                    ))
