"""Fluent builder API for constructing models concisely.

The metamodel classes are deliberately explicit; building a realistic
model through them is verbose.  The builder gives example models, tests
and users a compact declarative surface::

    b = ModelBuilder("Microwave")
    c = b.component("control")
    c.enum("DoorState", ["CLOSED", "OPEN"])
    oven = c.klass("MicrowaveOven", "MO", number=1)
    oven.attr("oven_id", "unique_id")
    oven.attr("remaining", "integer")
    oven.identifier(1, "oven_id")
    oven.event("MO1", "cook button pressed", params=[("seconds", "integer")])
    oven.state("Idle", 1, activity="self.remaining = 0;")
    oven.trans("Idle", "MO1", "Cooking")
    model = b.build()          # well-formedness checked here

Type names are resolved lazily at ``build()`` time so enums may be
declared after the attributes that use them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .association import Association, AssociationEnd, Multiplicity
from .attribute import Attribute, Identifier
from .component import Component
from .datatypes import CoreType, DataType, InstRefType, InstSetType
from .event import EventParameter, EventSpec
from .external import BridgeSpec, ExternalEntity
from .klass import ModelClass, Operation
from .model import Model
from .statemachine import State
from .wellformed import check_model

_CORE_BY_NAME = {t.value: t for t in CoreType}

_MULT_BY_NAME = {m.value: m for m in Multiplicity}
_MULT_BY_NAME.update({"0..*": Multiplicity.ZERO_MANY, "1..1": Multiplicity.ONE})


def parse_multiplicity(text: str) -> Multiplicity:
    """Parse a multiplicity string (``"1"``, ``"0..1"``, ``"*"``, ``"1..*"``)."""
    try:
        return _MULT_BY_NAME[text]
    except KeyError:
        raise ValueError(f"unknown multiplicity {text!r}") from None


@dataclass
class _PendingType:
    """A type reference by name, resolved against the component at build()."""

    name: str

    def resolve(self, component: Component) -> DataType:
        name = self.name.strip()
        if name in _CORE_BY_NAME:
            return _CORE_BY_NAME[name]
        if name.startswith("inst_ref_set<") and name.endswith(">"):
            return InstSetType(name[len("inst_ref_set<"):-1])
        if name.startswith("inst_ref<") and name.endswith(">"):
            return InstRefType(name[len("inst_ref<"):-1])
        if name in component.types:
            return component.types.enum(name)
        raise ValueError(
            f"unknown type {name!r} in component {component.name!r}"
        )


def _as_type(spec: str | DataType) -> DataType | _PendingType:
    if isinstance(spec, str):
        return _PendingType(spec)
    return spec


class ClassBuilder:
    """Builder facade over one :class:`ModelClass`."""

    def __init__(self, component_builder: "ComponentBuilder", klass: ModelClass):
        self._cb = component_builder
        self._klass = klass
        self._pending_attr_types: list[tuple[Attribute, _PendingType]] = []
        self._pending_params: list[tuple[object, int, _PendingType]] = []

    @property
    def key_letters(self) -> str:
        return self._klass.key_letters

    def attr(
        self,
        name: str,
        dtype: str | DataType,
        default: object | None = None,
        referential: str | None = None,
        derived: str | None = None,
    ) -> "ClassBuilder":
        resolved = _as_type(dtype)
        placeholder = CoreType.INTEGER if isinstance(resolved, _PendingType) else resolved
        attribute = Attribute(
            name, placeholder, default=default, referential=referential, derived=derived
        )
        self._klass.add_attribute(attribute)
        if isinstance(resolved, _PendingType):
            self._pending_attr_types.append((attribute, resolved))
        return self

    def identifier(self, number: int, *attribute_names: str) -> "ClassBuilder":
        self._klass.add_identifier(Identifier(number, tuple(attribute_names)))
        return self

    def event(
        self,
        label: str,
        meaning: str = "",
        params: list[tuple[str, str | DataType]] | None = None,
        creation: bool = False,
    ) -> "ClassBuilder":
        parameters = []
        pendings = []
        for index, (pname, ptype) in enumerate(params or []):
            resolved = _as_type(ptype)
            placeholder = (
                CoreType.INTEGER if isinstance(resolved, _PendingType) else resolved
            )
            parameters.append(EventParameter(pname, placeholder))
            if isinstance(resolved, _PendingType):
                pendings.append((index, resolved))
        spec = EventSpec(label, meaning, tuple(parameters), creation=creation)
        self._klass.add_event(spec)
        for index, pending in pendings:
            self._pending_params.append((spec, index, pending))
        return self

    def state(
        self, name: str, number: int, activity: str = "", final: bool = False
    ) -> "ClassBuilder":
        self._klass.statemachine.add_state(State(name, number, activity, final=final))
        return self

    def initial(self, state_name: str) -> "ClassBuilder":
        self._klass.statemachine.initial_state = state_name
        return self

    def trans(self, from_state: str, event_label: str, to_state: str) -> "ClassBuilder":
        self._klass.statemachine.add_transition(from_state, event_label, to_state)
        return self

    def creation(self, event_label: str, to_state: str) -> "ClassBuilder":
        self._klass.statemachine.add_creation_transition(event_label, to_state)
        return self

    def ignore(self, state: str, event_label: str) -> "ClassBuilder":
        self._klass.statemachine.set_ignored(state, event_label)
        return self

    def cant_happen(self, state: str, event_label: str) -> "ClassBuilder":
        self._klass.statemachine.set_cant_happen(state, event_label)
        return self

    def operation(
        self,
        name: str,
        body: str = "",
        instance_based: bool = True,
        returns: str | DataType | None = None,
        params: list[tuple[str, str | DataType]] | None = None,
    ) -> "ClassBuilder":
        parameters = tuple(
            EventParameter(pname, _resolve_now(ptype, self._cb._component))
            for pname, ptype in (params or [])
        )
        rtype = (
            _resolve_now(returns, self._cb._component) if returns is not None else None
        )
        self._klass.add_operation(
            Operation(name, body, instance_based, rtype, parameters)
        )
        return self

    def _finalize(self, component: Component) -> None:
        for attribute, pending in self._pending_attr_types:
            attribute.dtype = pending.resolve(component)
        for spec, index, pending in self._pending_params:
            old = spec.parameters[index]
            resolved = pending.resolve(component)
            spec.parameters = spec.parameters[:index] + (
                EventParameter(old.name, resolved),
            ) + spec.parameters[index + 1:]


def _resolve_now(spec: str | DataType, component: Component) -> DataType:
    resolved = _as_type(spec)
    if isinstance(resolved, _PendingType):
        return resolved.resolve(component)
    return resolved


class ExternalBuilder:
    """Builder facade over one :class:`ExternalEntity`."""

    def __init__(self, component: Component, external: ExternalEntity):
        self._component = component
        self._external = external

    def bridge(
        self,
        name: str,
        params: list[tuple[str, str | DataType]] | None = None,
        returns: str | DataType | None = None,
    ) -> "ExternalBuilder":
        parameters = tuple(
            EventParameter(pname, _resolve_now(ptype, self._component))
            for pname, ptype in (params or [])
        )
        rtype = _resolve_now(returns, self._component) if returns is not None else None
        self._external.add_bridge(BridgeSpec(name, parameters, rtype))
        return self


class ComponentBuilder:
    """Builder facade over one :class:`Component`."""

    def __init__(self, component: Component):
        self._component = component
        self._class_builders: list[ClassBuilder] = []
        self._next_class_number = 1

    def enum(self, name: str, enumerators: list[str]) -> "ComponentBuilder":
        self._component.types.define_enum(name, tuple(enumerators))
        return self

    def klass(self, name: str, key_letters: str, number: int | None = None) -> ClassBuilder:
        if number is None:
            number = self._next_class_number
        self._next_class_number = max(self._next_class_number, number + 1)
        model_class = ModelClass(name, key_letters, number)
        self._component.add_class(model_class)
        builder = ClassBuilder(self, model_class)
        self._class_builders.append(builder)
        return builder

    def ext(self, key_letters: str, name: str = "") -> ExternalBuilder:
        external = ExternalEntity(key_letters, name)
        self._component.add_external(external)
        return ExternalBuilder(self._component, external)

    def assoc(
        self,
        number: str,
        one: tuple[str, str, str],
        other: tuple[str, str, str],
        link: str | None = None,
    ) -> "ComponentBuilder":
        """Add an association: ends are ``(class_key, phrase, multiplicity)``."""
        end_one = AssociationEnd(one[0], one[1], parse_multiplicity(one[2]))
        end_other = AssociationEnd(other[0], other[1], parse_multiplicity(other[2]))
        self._component.add_association(
            Association(number, end_one, end_other, link_class_key=link)
        )
        return self

    def _finalize(self) -> None:
        for builder in self._class_builders:
            builder._finalize(self._component)


class ModelBuilder:
    """Top-level builder producing a checked :class:`Model`."""

    def __init__(self, name: str, description: str = ""):
        self._model = Model(name, description)
        self._component_builders: list[ComponentBuilder] = []

    def component(self, name: str, description: str = "") -> ComponentBuilder:
        component = Component(name, description)
        self._model.add_component(component)
        builder = ComponentBuilder(component)
        self._component_builders.append(builder)
        return builder

    def build(self, check: bool = True, strict: bool = True) -> Model:
        """Finalize pending types and (optionally) verify well-formedness."""
        for builder in self._component_builders:
            builder._finalize()
        if check:
            check_model(self._model, strict=strict)
        return self._model
