"""Core data types of the Executable UML subset.

The paper's profile ("a carefully selected streamlined subset of UML")
needs only a handful of attribute/parameter types: the scalar core types,
user-defined enumerations, and instance reference (set) types used by the
action language.  Everything here is deliberately small — the whole point
of the paper is that this *is* enough.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CoreType(enum.Enum):
    """Built-in scalar types available to attributes and event parameters."""

    INTEGER = "integer"
    REAL = "real"
    BOOLEAN = "boolean"
    STRING = "string"
    UNIQUE_ID = "unique_id"
    TIMESTAMP = "timestamp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class EnumType:
    """A user-defined enumeration type, e.g. ``DoorState::OPEN``.

    Enumerators are ordered; order is meaningful for code generation
    (the C and VHDL generators assign consecutive codes).
    """

    name: str
    enumerators: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.enumerators:
            raise ValueError(f"enum type {self.name!r} needs >= 1 enumerator")
        if len(set(self.enumerators)) != len(self.enumerators):
            raise ValueError(f"enum type {self.name!r} has duplicate enumerators")

    def code_of(self, enumerator: str) -> int:
        """Integer code assigned to *enumerator* by the generators."""
        try:
            return self.enumerators.index(enumerator)
        except ValueError:
            raise KeyError(
                f"{enumerator!r} is not an enumerator of {self.name}"
            ) from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InstRefType:
    """Reference to a single instance of a class (``inst_ref<Class>``)."""

    class_key: str

    def __str__(self) -> str:
        return f"inst_ref<{self.class_key}>"


@dataclass(frozen=True)
class InstSetType:
    """Reference to a set of instances (``inst_ref_set<Class>``)."""

    class_key: str

    def __str__(self) -> str:
        return f"inst_ref_set<{self.class_key}>"


#: Any type a model element may carry.
DataType = CoreType | EnumType | InstRefType | InstSetType


def default_value(dtype: DataType):
    """The value a freshly created attribute of *dtype* holds.

    Mirrors the initial-value rules the code generators bake into the C
    struct initializers and VHDL reset clauses, so the abstract runtime and
    the generated targets agree from cycle zero.
    """
    if isinstance(dtype, EnumType):
        return dtype.enumerators[0]
    if isinstance(dtype, InstRefType):
        return None
    if isinstance(dtype, InstSetType):
        return ()
    if dtype is CoreType.INTEGER:
        return 0
    if dtype is CoreType.REAL:
        return 0.0
    if dtype is CoreType.BOOLEAN:
        return False
    if dtype is CoreType.STRING:
        return ""
    if dtype is CoreType.UNIQUE_ID:
        return 0
    if dtype is CoreType.TIMESTAMP:
        return 0
    raise TypeError(f"unknown data type: {dtype!r}")


def bit_width(dtype: DataType) -> int:
    """Width, in bits, of *dtype* when packed into a bus message.

    Used by the interface generator (:mod:`repro.mda.interfacegen`) so that
    the C struct layout and the VHDL record layout are derived from one
    place — the consistency-by-construction property of paper section 4.
    """
    if isinstance(dtype, EnumType):
        width = max(1, (len(dtype.enumerators) - 1).bit_length())
        return width
    if isinstance(dtype, (InstRefType, InstSetType)):
        return 32  # instance handle
    widths = {
        CoreType.INTEGER: 32,
        CoreType.REAL: 64,
        CoreType.BOOLEAN: 1,
        CoreType.STRING: 256,
        CoreType.UNIQUE_ID: 32,
        CoreType.TIMESTAMP: 64,
    }
    return widths[dtype]


@dataclass
class TypeRegistry:
    """Per-component registry of user-defined types.

    Components own their enumerations; the registry enforces unique names
    and provides lookup for the action-language analyzer.
    """

    _enums: dict[str, EnumType] = field(default_factory=dict)

    def define_enum(self, name: str, enumerators: tuple[str, ...] | list[str]) -> EnumType:
        if name in self._enums:
            raise ValueError(f"enum type {name!r} already defined")
        etype = EnumType(name, tuple(enumerators))
        self._enums[name] = etype
        return etype

    def enum(self, name: str) -> EnumType:
        try:
            return self._enums[name]
        except KeyError:
            raise KeyError(f"no enum type named {name!r}") from None

    @property
    def enums(self) -> tuple[EnumType, ...]:
        return tuple(self._enums.values())

    def __contains__(self, name: str) -> bool:
        return name in self._enums
