"""External entities and bridges.

An external entity is xtUML's stand-in for everything outside the modelled
component: device drivers, the timer service, a logging console, the
architecture underneath.  The action language calls *bridges* on them
(``TIM::timer_start(...)``), and the runtime dispatches those calls to
Python callables registered at simulation time — or, in generated code, to
whatever the model compiler's architecture supplies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .datatypes import DataType
from .errors import DuplicateElementError, UnknownElementError
from .event import EventParameter


@dataclass
class BridgeSpec:
    """Declaration of one bridge operation on an external entity."""

    name: str
    parameters: tuple[EventParameter, ...] = field(default_factory=tuple)
    returns: DataType | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"bridge name {self.name!r} is not an identifier")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"bridge {self.name} has duplicate parameter names")


class ExternalEntity:
    """A named external entity owning a set of bridges."""

    def __init__(self, key_letters: str, name: str = ""):
        if not key_letters.isidentifier():
            raise ValueError(f"key letters {key_letters!r} are not an identifier")
        self.key_letters = key_letters
        self.name = name or key_letters
        self._bridges: dict[str, BridgeSpec] = {}

    def add_bridge(self, bridge: BridgeSpec) -> BridgeSpec:
        if bridge.name in self._bridges:
            raise DuplicateElementError(
                f"{self.key_letters}: bridge {bridge.name!r} already defined"
            )
        self._bridges[bridge.name] = bridge
        return bridge

    def bridge(self, name: str) -> BridgeSpec:
        try:
            return self._bridges[name]
        except KeyError:
            raise UnknownElementError(
                f"external entity {self.key_letters} has no bridge {name!r}"
            ) from None

    def has_bridge(self, name: str) -> bool:
        return name in self._bridges

    @property
    def bridges(self) -> tuple[BridgeSpec, ...]:
        return tuple(self._bridges.values())
