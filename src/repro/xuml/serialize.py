"""Model serialization — save and load models as plain JSON-able dicts.

A modeling tool must persist models; this module round-trips the whole
metamodel (structure, behaviour, action text, external entities) through
``dict``/``list``/scalar data, so models can be stored as JSON, diffed
in version control, or exchanged between tools.

The format is versioned; loading verifies the version and rebuilds
through the ordinary metamodel API, so a loaded model passes the same
well-formedness checks as a hand-built one.
"""

from __future__ import annotations

import json

from .association import Association, AssociationEnd, Multiplicity
from .attribute import Attribute, Identifier
from .component import Component
from .datatypes import CoreType, DataType, EnumType, InstRefType, InstSetType
from .errors import ModelError
from .event import EventParameter, EventSpec
from .external import BridgeSpec, ExternalEntity
from .klass import ModelClass, Operation
from .model import Model
from .statemachine import State

FORMAT_VERSION = 1


class SerializationError(ModelError):
    """Malformed or incompatible serialized model data."""


def _tag(dtype: DataType) -> str:
    if isinstance(dtype, EnumType):
        return f"enum:{dtype.name}"
    if isinstance(dtype, InstRefType):
        return f"inst_ref:{dtype.class_key}"
    if isinstance(dtype, InstSetType):
        return f"inst_ref_set:{dtype.class_key}"
    return dtype.value


def _untag(tag: str, component: Component) -> DataType:
    if tag.startswith("enum:"):
        return component.types.enum(tag[len("enum:"):])
    if tag.startswith("inst_ref:"):
        return InstRefType(tag[len("inst_ref:"):])
    if tag.startswith("inst_ref_set:"):
        return InstSetType(tag[len("inst_ref_set:"):])
    try:
        return CoreType(tag)
    except ValueError:
        raise SerializationError(f"unknown type tag {tag!r}") from None


# ---------------------------------------------------------------------------
# dump
# ---------------------------------------------------------------------------

def model_to_dict(model: Model) -> dict:
    """Serialize *model* to JSON-able data."""
    return {
        "format": FORMAT_VERSION,
        "name": model.name,
        "description": model.description,
        "components": [_component_to_dict(c) for c in model.components],
    }


def model_to_json(model: Model, indent: int = 2) -> str:
    return json.dumps(model_to_dict(model), indent=indent, sort_keys=False)


def _component_to_dict(component: Component) -> dict:
    return {
        "name": component.name,
        "description": component.description,
        "enums": [
            {"name": e.name, "enumerators": list(e.enumerators)}
            for e in component.types.enums
        ],
        "externals": [
            {
                "key_letters": ee.key_letters,
                "name": ee.name,
                "bridges": [
                    {
                        "name": b.name,
                        "params": [[p.name, _tag(p.dtype)]
                                   for p in b.parameters],
                        "returns": _tag(b.returns)
                        if b.returns is not None else None,
                    }
                    for b in ee.bridges
                ],
            }
            for ee in component.externals
        ],
        "classes": [_class_to_dict(k) for k in component.classes],
        "associations": [
            {
                "number": a.number,
                "one": [a.one.class_key, a.one.phrase, a.one.mult.value],
                "other": [a.other.class_key, a.other.phrase,
                          a.other.mult.value],
                "link": a.link_class_key,
            }
            for a in component.associations
        ],
    }


def _class_to_dict(klass: ModelClass) -> dict:
    machine = klass.statemachine
    ignores = []
    cant_happens = []
    for state in machine.states:
        for label in machine.events_handled():
            key = (state.name, label)
            if key in machine._responses and machine.transition_for(
                    state.name, label) is None:
                response = machine._responses[key]
                bucket = (ignores if response.value == "ignore"
                          else cant_happens)
                bucket.append([state.name, label])
    return {
        "name": klass.name,
        "key_letters": klass.key_letters,
        "number": klass.number,
        "attributes": [
            {
                "name": a.name,
                "type": _tag(a.dtype),
                "default": a.default,
                "referential": a.referential,
                "derived": a.derived,
            }
            for a in klass.attributes
        ],
        "identifiers": [
            {"number": i.number, "attributes": list(i.attribute_names)}
            for i in klass.identifiers
        ],
        "events": [
            {
                "label": e.label,
                "meaning": e.meaning,
                "creation": e.creation,
                "params": [[p.name, _tag(p.dtype)] for p in e.parameters],
            }
            for e in klass.events
        ],
        "operations": [
            {
                "name": op.name,
                "body": op.body,
                "instance_based": op.instance_based,
                "returns": _tag(op.returns) if op.returns is not None else None,
                "params": [[p.name, _tag(p.dtype)] for p in op.parameters],
            }
            for op in klass.operations
        ],
        "statemachine": {
            "initial": machine.initial_state,
            "states": [
                {"name": s.name, "number": s.number,
                 "activity": s.activity, "final": s.final}
                for s in machine.states
            ],
            "transitions": [
                [t.from_state, t.event_label, t.to_state]
                for t in machine.transitions
            ],
            "creations": [
                [ct.event_label, ct.to_state]
                for ct in machine.creation_transitions
            ],
            "ignores": sorted(ignores),
            "cant_happens": sorted(cant_happens),
        },
    }


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------

def model_from_dict(data: dict) -> Model:
    """Rebuild a model from serialized data (format-checked)."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format {version!r} "
            f"(this library reads version {FORMAT_VERSION})")
    model = Model(data["name"], data.get("description", ""))
    for component_data in data.get("components", []):
        model.add_component(_component_from_dict(component_data))
    return model


def model_from_json(text: str) -> Model:
    return model_from_dict(json.loads(text))


def _component_from_dict(data: dict) -> Component:
    component = Component(data["name"], data.get("description", ""))
    for enum_data in data.get("enums", []):
        component.types.define_enum(
            enum_data["name"], tuple(enum_data["enumerators"]))
    for external_data in data.get("externals", []):
        entity = ExternalEntity(
            external_data["key_letters"], external_data.get("name", ""))
        for bridge_data in external_data.get("bridges", []):
            entity.add_bridge(BridgeSpec(
                bridge_data["name"],
                tuple(EventParameter(name, _untag(tag, component))
                      for name, tag in bridge_data.get("params", [])),
                _untag(bridge_data["returns"], component)
                if bridge_data.get("returns") is not None else None,
            ))
        component.add_external(entity)
    for class_data in data.get("classes", []):
        component.add_class(_class_from_dict(class_data, component))
    for assoc_data in data.get("associations", []):
        one = assoc_data["one"]
        other = assoc_data["other"]
        component.add_association(Association(
            assoc_data["number"],
            AssociationEnd(one[0], one[1], Multiplicity(one[2])),
            AssociationEnd(other[0], other[1], Multiplicity(other[2])),
            link_class_key=assoc_data.get("link"),
        ))
    return component


def _class_from_dict(data: dict, component: Component) -> ModelClass:
    klass = ModelClass(data["name"], data["key_letters"], data["number"])
    for attr_data in data.get("attributes", []):
        klass.add_attribute(Attribute(
            attr_data["name"],
            _untag(attr_data["type"], component),
            default=attr_data.get("default"),
            referential=attr_data.get("referential"),
            derived=attr_data.get("derived"),
        ))
    for ident_data in data.get("identifiers", []):
        klass.add_identifier(Identifier(
            ident_data["number"], tuple(ident_data["attributes"])))
    for event_data in data.get("events", []):
        klass.add_event(EventSpec(
            event_data["label"],
            event_data.get("meaning", ""),
            tuple(EventParameter(name, _untag(tag, component))
                  for name, tag in event_data.get("params", [])),
            creation=event_data.get("creation", False),
        ))
    for op_data in data.get("operations", []):
        klass.add_operation(Operation(
            op_data["name"],
            op_data.get("body", ""),
            op_data.get("instance_based", True),
            _untag(op_data["returns"], component)
            if op_data.get("returns") is not None else None,
            tuple(EventParameter(name, _untag(tag, component))
                  for name, tag in op_data.get("params", [])),
        ))
    machine_data = data.get("statemachine", {})
    machine = klass.statemachine
    for state_data in machine_data.get("states", []):
        machine.add_state(State(
            state_data["name"], state_data["number"],
            state_data.get("activity", ""),
            final=state_data.get("final", False),
        ))
    machine.initial_state = machine_data.get("initial")
    for from_state, label, to_state in machine_data.get("transitions", []):
        machine.add_transition(from_state, label, to_state)
    for label, to_state in machine_data.get("creations", []):
        machine.add_creation_transition(label, to_state)
    for state_name, label in machine_data.get("ignores", []):
        machine.set_ignored(state_name, label)
    for state_name, label in machine_data.get("cant_happens", []):
        machine.set_cant_happen(state_name, label)
    return klass
