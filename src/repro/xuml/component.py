"""Components (xtUML domains).

A component is the unit of modelling and of translation: it owns classes,
associations, user-defined types and external entities.  A whole system
(:class:`repro.xuml.model.Model`) is a set of components; the model
compiler translates each component against a mark set.
"""

from __future__ import annotations

from .association import Association
from .datatypes import TypeRegistry
from .errors import DuplicateElementError, UnknownElementError
from .external import ExternalEntity
from .klass import ModelClass


class Component:
    """One modelled domain: classes + associations + types + externals."""

    def __init__(self, name: str, description: str = ""):
        if not name.isidentifier():
            raise ValueError(f"component name {name!r} is not an identifier")
        self.name = name
        self.description = description
        self.types = TypeRegistry()
        self._classes: dict[str, ModelClass] = {}
        self._associations: dict[str, Association] = {}
        self._externals: dict[str, ExternalEntity] = {}

    # -- classes -------------------------------------------------------------

    def add_class(self, klass: ModelClass) -> ModelClass:
        if klass.key_letters in self._classes:
            raise DuplicateElementError(
                f"component {self.name}: class {klass.key_letters!r} already defined"
            )
        for existing in self._classes.values():
            if existing.number == klass.number:
                raise DuplicateElementError(
                    f"component {self.name}: class number {klass.number} already "
                    f"used by {existing.key_letters}"
                )
        self._classes[klass.key_letters] = klass
        return klass

    def klass(self, key_letters: str) -> ModelClass:
        try:
            return self._classes[key_letters]
        except KeyError:
            raise UnknownElementError(
                f"component {self.name} has no class {key_letters!r}"
            ) from None

    def has_class(self, key_letters: str) -> bool:
        return key_letters in self._classes

    @property
    def classes(self) -> tuple[ModelClass, ...]:
        return tuple(self._classes.values())

    @property
    def class_keys(self) -> tuple[str, ...]:
        return tuple(self._classes)

    # -- associations ----------------------------------------------------------

    def add_association(self, association: Association) -> Association:
        if association.number in self._associations:
            raise DuplicateElementError(
                f"component {self.name}: {association.number} already defined"
            )
        self._associations[association.number] = association
        return association

    def association(self, number: str) -> Association:
        try:
            return self._associations[number]
        except KeyError:
            raise UnknownElementError(
                f"component {self.name} has no association {number!r}"
            ) from None

    def has_association(self, number: str) -> bool:
        return number in self._associations

    @property
    def associations(self) -> tuple[Association, ...]:
        return tuple(self._associations.values())

    def associations_of(self, class_key: str) -> tuple[Association, ...]:
        """All associations the class participates in (including as link class)."""
        return tuple(
            a for a in self._associations.values() if class_key in a.participants()
        )

    # -- external entities -------------------------------------------------------

    def add_external(self, external: ExternalEntity) -> ExternalEntity:
        if external.key_letters in self._externals:
            raise DuplicateElementError(
                f"component {self.name}: external {external.key_letters!r} "
                "already defined"
            )
        self._externals[external.key_letters] = external
        return external

    def external(self, key_letters: str) -> ExternalEntity:
        try:
            return self._externals[key_letters]
        except KeyError:
            raise UnknownElementError(
                f"component {self.name} has no external entity {key_letters!r}"
            ) from None

    def has_external(self, key_letters: str) -> bool:
        return key_letters in self._externals

    @property
    def externals(self) -> tuple[ExternalEntity, ...]:
        return tuple(self._externals.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Component {self.name}: {len(self._classes)} classes, "
            f"{len(self._associations)} associations>"
        )
