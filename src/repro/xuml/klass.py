"""Model classes.

A :class:`ModelClass` is the unit the paper's whole argument revolves
around: it owns attributes, identifiers, event declarations and a state
machine, and it is the granule at which marks assign elements to hardware
or software (section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .attribute import Attribute, Identifier
from .errors import DuplicateElementError, UnknownElementError
from .event import EventSpec
from .statemachine import StateMachine


@dataclass
class Operation:
    """A synchronous class-based or instance-based operation.

    xtUML allows synchronous services in addition to signals; the profile
    keeps them for computations (e.g. a CRC step) that have no lifecycle.
    ``body`` is OAL text; ``instance_based`` selects whether ``self`` is
    available inside the body.
    """

    name: str
    body: str = ""
    instance_based: bool = True
    returns: object | None = None  # DataType or None
    parameters: tuple = field(default_factory=tuple)  # of EventParameter


class ModelClass:
    """One class of a component.

    Parameters
    ----------
    name:
        Full class name ("Microwave Oven" is spelled ``MicrowaveOven``).
    key_letters:
        Short unique abbreviation ("MO") used by the action language and
        as the basis of generated C/VHDL identifiers.
    number:
        Class number, unique in the component (used in generated headers).
    """

    def __init__(self, name: str, key_letters: str, number: int):
        if not name.isidentifier():
            raise ValueError(f"class name {name!r} is not an identifier")
        if not key_letters.isidentifier():
            raise ValueError(f"key letters {key_letters!r} are not an identifier")
        self.name = name
        self.key_letters = key_letters
        self.number = number
        self.statemachine = StateMachine()
        self._attributes: dict[str, Attribute] = {}
        self._identifiers: dict[int, Identifier] = {}
        self._events: dict[str, EventSpec] = {}
        self._operations: dict[str, Operation] = {}

    # -- attributes ----------------------------------------------------------

    def add_attribute(self, attribute: Attribute) -> Attribute:
        if attribute.name in self._attributes:
            raise DuplicateElementError(
                f"{self.key_letters}: attribute {attribute.name!r} already defined"
            )
        self._attributes[attribute.name] = attribute
        return attribute

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownElementError(
                f"{self.key_letters} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attributes.values())

    # -- identifiers -----------------------------------------------------------

    def add_identifier(self, identifier: Identifier) -> Identifier:
        if identifier.number in self._identifiers:
            raise DuplicateElementError(
                f"{self.key_letters}: identifier I{identifier.number} already defined"
            )
        self._identifiers[identifier.number] = identifier
        return identifier

    @property
    def identifiers(self) -> tuple[Identifier, ...]:
        return tuple(self._identifiers.values())

    # -- events ----------------------------------------------------------------

    def add_event(self, event: EventSpec) -> EventSpec:
        if event.label in self._events:
            raise DuplicateElementError(
                f"{self.key_letters}: event {event.label!r} already defined"
            )
        self._events[event.label] = event
        return event

    def event(self, label: str) -> EventSpec:
        try:
            return self._events[label]
        except KeyError:
            raise UnknownElementError(
                f"{self.key_letters} has no event {label!r}"
            ) from None

    def has_event(self, label: str) -> bool:
        return label in self._events

    @property
    def events(self) -> tuple[EventSpec, ...]:
        return tuple(self._events.values())

    # -- operations --------------------------------------------------------------

    def add_operation(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise DuplicateElementError(
                f"{self.key_letters}: operation {operation.name!r} already defined"
            )
        self._operations[operation.name] = operation
        return operation

    def operation(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise UnknownElementError(
                f"{self.key_letters} has no operation {name!r}"
            ) from None

    @property
    def operations(self) -> tuple[Operation, ...]:
        return tuple(self._operations.values())

    # -- misc ----------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """True when the class has a lifecycle (a non-empty state machine)."""
        return not self.statemachine.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModelClass {self.key_letters} ({self.name})>"
