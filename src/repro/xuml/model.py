"""The top-level model: a named set of components.

Element *paths* — ``"Component.Class"`` strings — are the coordinate
system shared with the marking model (:mod:`repro.marks`): marks refer to
elements by path precisely so they stay outside the model itself
("rather like sticky notes", paper section 3).
"""

from __future__ import annotations

from .component import Component
from .errors import DuplicateElementError, UnknownElementError
from .klass import ModelClass


class Model:
    """A system model: one or more components."""

    def __init__(self, name: str, description: str = ""):
        if not name.isidentifier():
            raise ValueError(f"model name {name!r} is not an identifier")
        self.name = name
        self.description = description
        self._components: dict[str, Component] = {}

    def add_component(self, component: Component) -> Component:
        if component.name in self._components:
            raise DuplicateElementError(
                f"model {self.name}: component {component.name!r} already defined"
            )
        self._components[component.name] = component
        return component

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise UnknownElementError(
                f"model {self.name} has no component {name!r}"
            ) from None

    def has_component(self, name: str) -> bool:
        return name in self._components

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components.values())

    # -- element paths --------------------------------------------------------

    def class_paths(self) -> tuple[str, ...]:
        """Paths of every class in the model, ``Component.KeyLetters``."""
        return tuple(
            f"{component.name}.{klass.key_letters}"
            for component in self._components.values()
            for klass in component.classes
        )

    def resolve_class(self, path: str) -> ModelClass:
        """Resolve ``"Component.KL"`` to its :class:`ModelClass`."""
        component_name, _, key_letters = path.partition(".")
        if not key_letters:
            raise UnknownElementError(
                f"class path {path!r} must look like 'Component.KeyLetters'"
            )
        return self.component(component_name).klass(key_letters)

    def class_path(self, klass: ModelClass) -> str:
        """The path of *klass* within this model."""
        for component in self._components.values():
            if component.has_class(klass.key_letters) and (
                component.klass(klass.key_letters) is klass
            ):
                return f"{component.name}.{klass.key_letters}"
        raise UnknownElementError(f"class {klass.key_letters} is not in model {self.name}")

    def all_classes(self) -> tuple[ModelClass, ...]:
        return tuple(
            klass
            for component in self._components.values()
            for klass in component.classes
        )

    def stats(self) -> dict[str, int]:
        """Size summary used by the E5 surface benchmark and reports."""
        classes = self.all_classes()
        return {
            "components": len(self._components),
            "classes": len(classes),
            "attributes": sum(len(k.attributes) for k in classes),
            "events": sum(len(k.events) for k in classes),
            "states": sum(len(k.statemachine.states) for k in classes),
            "transitions": sum(len(k.statemachine.transitions) for k in classes),
            "associations": sum(
                len(c.associations) for c in self._components.values()
            ),
            "externals": sum(len(c.externals) for c in self._components.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Model {self.name}: {len(self._components)} components>"
