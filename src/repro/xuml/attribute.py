"""Class attributes and identifiers.

In Executable UML every class has attributes typed by the small type system
of :mod:`repro.xuml.datatypes`, and one or more *identifiers* (candidate
keys).  Referential attributes — attributes that formalize an association —
are modelled explicitly so the well-formedness checker and the code
generators can trace them back to the association they formalize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .datatypes import DataType, default_value


@dataclass
class Attribute:
    """One attribute of a class.

    Parameters
    ----------
    name:
        Attribute name, unique within the owning class.
    dtype:
        One of the profile's data types.
    default:
        Initial value for new instances; if ``None`` the type default from
        :func:`repro.xuml.datatypes.default_value` is used.
    referential:
        Association number (e.g. ``"R3"``) this attribute formalizes, or
        ``None`` for a descriptive attribute.
    derived:
        OAL expression text computed on read instead of stored, or ``None``.
    """

    name: str
    dtype: DataType
    default: object | None = None
    referential: str | None = None
    derived: str | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"attribute name {self.name!r} is not an identifier")
        if self.derived is not None and self.referential is not None:
            raise ValueError(
                f"attribute {self.name!r} cannot be both derived and referential"
            )

    @property
    def initial_value(self):
        """The value new instances start with."""
        if self.default is not None:
            return self.default
        return default_value(self.dtype)


@dataclass
class Identifier:
    """A candidate key: an ordered set of attribute names.

    ``number`` follows xtUML convention: identifier 1 is the preferred
    identifier (``*``), further identifiers are ``I2``, ``I3``, ...
    """

    number: int
    attribute_names: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.number < 1:
            raise ValueError("identifier numbers start at 1")
        if not self.attribute_names:
            raise ValueError(f"identifier I{self.number} must name >= 1 attribute")
        if len(set(self.attribute_names)) != len(self.attribute_names):
            raise ValueError(f"identifier I{self.number} repeats an attribute")

    @property
    def label(self) -> str:
        return "*" if self.number == 1 else f"I{self.number}"
