"""Associations between classes.

Executable UML associations carry a number (``R1``), two ends with
multiplicity/conditionality and verb phrases, and optionally an associative
(link) class.  The runtime enforces the declared multiplicity when
``relate``/``unrelate`` actions execute, and the well-formedness checker
verifies that referential attributes formalize real associations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Multiplicity(enum.Enum):
    """Multiplicity-with-conditionality of one association end."""

    ONE = "1"
    ZERO_ONE = "0..1"
    MANY = "1..*"
    ZERO_MANY = "*"

    @property
    def is_many(self) -> bool:
        return self in (Multiplicity.MANY, Multiplicity.ZERO_MANY)

    @property
    def is_conditional(self) -> bool:
        return self in (Multiplicity.ZERO_ONE, Multiplicity.ZERO_MANY)

    @property
    def lower(self) -> int:
        return 0 if self.is_conditional else 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AssociationEnd:
    """One end of an association.

    ``class_key`` names the participating class; ``phrase`` is the verb
    phrase read *towards* this end ("is heated by"); ``mult`` is the
    number of instances of this end's class each instance of the *other*
    end sees.
    """

    class_key: str
    phrase: str
    mult: Multiplicity


@dataclass
class Association:
    """A numbered association between two classes.

    ``number`` is the xtUML relationship number ("R1"); it is the handle
    the action language uses (``related by self->Oven[R1]``).
    """

    number: str
    one: AssociationEnd
    other: AssociationEnd
    link_class_key: str | None = None

    def __post_init__(self) -> None:
        if not self.number.startswith("R") or not self.number[1:].isdigit():
            raise ValueError(
                f"association number {self.number!r} must look like 'R<n>'"
            )

    @property
    def is_reflexive(self) -> bool:
        return self.one.class_key == self.other.class_key

    def end_for(self, class_key: str, phrase: str | None = None) -> AssociationEnd:
        """The end whose class is *class_key* (disambiguated by phrase).

        For reflexive associations a *phrase* is required, matching xtUML's
        navigation syntax ``self->Person[R1.'manages']``.
        """
        candidates = [e for e in (self.one, self.other) if e.class_key == class_key]
        if not candidates:
            raise KeyError(
                f"class {class_key!r} does not participate in {self.number}"
            )
        if len(candidates) == 1:
            if phrase is not None and candidates[0].phrase != phrase:
                raise KeyError(
                    f"{self.number} end at {class_key!r} has phrase "
                    f"{candidates[0].phrase!r}, not {phrase!r}"
                )
            return candidates[0]
        if phrase is None:
            raise KeyError(
                f"{self.number} is reflexive on {class_key!r}; a phrase is required"
            )
        for end in candidates:
            if end.phrase == phrase:
                return end
        raise KeyError(f"{self.number} has no end at {class_key!r} phrased {phrase!r}")

    def opposite(self, end: AssociationEnd) -> AssociationEnd:
        if end is self.one or end == self.one:
            return self.other
        if end is self.other or end == self.other:
            return self.one
        raise KeyError(f"end {end} is not part of {self.number}")

    def participants(self) -> tuple[str, ...]:
        keys = [self.one.class_key, self.other.class_key]
        if self.link_class_key is not None:
            keys.append(self.link_class_key)
        return tuple(keys)
