"""Event (signal) specifications.

Paper section 2: "State machines communicate only by sending signals."
An :class:`EventSpec` is the declaration of one such signal for a class:
its label (e.g. ``MO1``), meaning, and typed data items it carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .datatypes import DataType


@dataclass(frozen=True)
class EventParameter:
    """One typed data item carried by an event."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"event parameter name {self.name!r} is not an identifier")


@dataclass
class EventSpec:
    """Declaration of a signal a class's state machine can receive.

    Parameters
    ----------
    label:
        Short unique label within the class, conventionally the class key
        letters plus a number (``MO1``).  Used by OAL ``generate``.
    meaning:
        Human-readable phrase ("door opened").
    parameters:
        Ordered typed data items.
    creation:
        True if this event creates a new instance (creation transition)
        rather than being delivered to an existing one.
    """

    label: str
    meaning: str = ""
    parameters: tuple[EventParameter, ...] = field(default_factory=tuple)
    creation: bool = False

    def __post_init__(self) -> None:
        if not self.label.isidentifier():
            raise ValueError(f"event label {self.label!r} is not an identifier")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"event {self.label} has duplicate parameter names")

    def parameter(self, name: str) -> EventParameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(f"event {self.label} has no parameter {name!r}")

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)
