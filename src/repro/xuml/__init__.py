"""Executable UML metamodel — the paper's "carefully selected streamlined subset".

Public surface:

* :class:`Model`, :class:`Component`, :class:`ModelClass` — structural model
* :class:`StateMachine`, :class:`State`, :class:`Transition` — behaviour
* :class:`EventSpec` — signals, the only inter-machine communication
* :class:`Association` — numbered relationships with multiplicity
* :class:`ExternalEntity` — bridges to the outside world
* :class:`ModelBuilder` — the fluent construction API
* :func:`check_model` — well-formedness verification
"""

from .association import Association, AssociationEnd, Multiplicity
from .attribute import Attribute, Identifier
from .builder import ModelBuilder, parse_multiplicity
from .component import Component
from .datatypes import (
    CoreType,
    EnumType,
    InstRefType,
    InstSetType,
    TypeRegistry,
    bit_width,
    default_value,
)
from .errors import (
    DefinitionError,
    DuplicateElementError,
    ModelError,
    UnknownElementError,
    WellFormednessError,
)
from .event import EventParameter, EventSpec
from .external import BridgeSpec, ExternalEntity
from .klass import ModelClass, Operation
from .model import Model
from .statemachine import (
    CreationTransition,
    EventResponse,
    State,
    StateMachine,
    Transition,
)
from .serialize import (
    SerializationError,
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_json,
)
from .wellformed import Severity, Violation, check_model

__all__ = [
    "Association",
    "AssociationEnd",
    "Attribute",
    "BridgeSpec",
    "Component",
    "CoreType",
    "CreationTransition",
    "DefinitionError",
    "DuplicateElementError",
    "EnumType",
    "EventParameter",
    "EventResponse",
    "EventSpec",
    "ExternalEntity",
    "Identifier",
    "InstRefType",
    "InstSetType",
    "Model",
    "ModelBuilder",
    "ModelClass",
    "ModelError",
    "Multiplicity",
    "Operation",
    "SerializationError",
    "Severity",
    "State",
    "StateMachine",
    "Transition",
    "TypeRegistry",
    "UnknownElementError",
    "Violation",
    "WellFormednessError",
    "bit_width",
    "check_model",
    "default_value",
    "model_from_dict",
    "model_from_json",
    "model_to_dict",
    "model_to_json",
    "parse_multiplicity",
]
