"""Instance state machines.

The execution rules come straight from the paper (section 2):

* each object has a concurrently executing state machine;
* on receipt of a signal the machine transitions and executes the actions
  of the destination state, which run to completion before the next signal
  is processed;
* the state/event table may also mark an event as *ignored* (dropped
  silently) or *can't happen* (a modelling error if it arrives).

States own an *activity*: a block of action-language text executed on
entry.  Transitions carry no actions of their own — this is the classic
Moore-style xtUML formulation, which is what makes hardware mapping (one
FSM process per class) straightforward.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import DefinitionError, DuplicateElementError, UnknownElementError


class EventResponse(enum.Enum):
    """What a state does with an incoming event."""

    TRANSITION = "transition"
    IGNORE = "ignore"
    CANT_HAPPEN = "cant_happen"


@dataclass
class State:
    """One state: a name, a number, and an entry activity in OAL text."""

    name: str
    number: int
    activity: str = ""
    final: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"state name {self.name!r} is not an identifier")
        if self.number < 1:
            raise ValueError("state numbers start at 1")


@dataclass(frozen=True)
class Transition:
    """A (state, event) -> state entry of the state transition table."""

    from_state: str
    event_label: str
    to_state: str


@dataclass(frozen=True)
class CreationTransition:
    """A creation event -> initial state entry (instance born by event)."""

    event_label: str
    to_state: str


class StateMachine:
    """The lifecycle of one class, as a state transition table.

    The table is total: for every (state, event) pair the machine answers
    :class:`EventResponse.TRANSITION`, ``IGNORE`` or ``CANT_HAPPEN``.
    Unlisted pairs default to ``CANT_HAPPEN``, xtUML's safe default —
    the well-formedness checker reports them so the modeller decides.
    """

    def __init__(self, initial_state: str | None = None):
        self._states: dict[str, State] = {}
        self._transitions: dict[tuple[str, str], Transition] = {}
        self._creations: dict[str, CreationTransition] = {}
        self._responses: dict[tuple[str, str], EventResponse] = {}
        self.initial_state = initial_state

    # -- construction ------------------------------------------------------

    def add_state(self, state: State) -> State:
        if state.name in self._states:
            raise DuplicateElementError(f"state {state.name!r} already defined")
        for existing in self._states.values():
            if existing.number == state.number:
                raise DuplicateElementError(
                    f"state number {state.number} already used by {existing.name!r}"
                )
        self._states[state.name] = state
        if self.initial_state is None and not state.final:
            self.initial_state = state.name
        return state

    def add_transition(self, from_state: str, event_label: str, to_state: str) -> Transition:
        key = (from_state, event_label)
        if key in self._responses:
            raise DuplicateElementError(
                f"state {from_state!r} already answers event {event_label!r}"
            )
        tr = Transition(from_state, event_label, to_state)
        self._transitions[key] = tr
        self._responses[key] = EventResponse.TRANSITION
        return tr

    def add_creation_transition(self, event_label: str, to_state: str) -> CreationTransition:
        if event_label in self._creations:
            raise DuplicateElementError(
                f"creation event {event_label!r} already defined"
            )
        ct = CreationTransition(event_label, to_state)
        self._creations[event_label] = ct
        return ct

    def set_ignored(self, state: str, event_label: str) -> None:
        key = (state, event_label)
        if self._responses.get(key) is EventResponse.TRANSITION:
            raise DefinitionError(
                f"({state}, {event_label}) already transitions; cannot ignore"
            )
        self._responses[key] = EventResponse.IGNORE

    def set_cant_happen(self, state: str, event_label: str) -> None:
        key = (state, event_label)
        if self._responses.get(key) is EventResponse.TRANSITION:
            raise DefinitionError(
                f"({state}, {event_label}) already transitions; cannot mark can't-happen"
            )
        self._responses[key] = EventResponse.CANT_HAPPEN

    # -- queries -----------------------------------------------------------

    @property
    def states(self) -> tuple[State, ...]:
        return tuple(self._states.values())

    @property
    def state_names(self) -> tuple[str, ...]:
        return tuple(self._states)

    @property
    def transitions(self) -> tuple[Transition, ...]:
        return tuple(self._transitions.values())

    @property
    def creation_transitions(self) -> tuple[CreationTransition, ...]:
        return tuple(self._creations.values())

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise UnknownElementError(f"no state named {name!r}") from None

    def has_state(self, name: str) -> bool:
        return name in self._states

    def response_to(self, state: str, event_label: str) -> EventResponse:
        """The table entry for (state, event); CANT_HAPPEN when unlisted."""
        return self._responses.get((state, event_label), EventResponse.CANT_HAPPEN)

    def transition_for(self, state: str, event_label: str) -> Transition | None:
        return self._transitions.get((state, event_label))

    def creation_transition_for(self, event_label: str) -> CreationTransition | None:
        return self._creations.get(event_label)

    def events_handled(self) -> frozenset[str]:
        """All event labels the table mentions (any response kind)."""
        labels = {ev for (_, ev) in self._responses}
        labels.update(self._creations)
        return frozenset(labels)

    def is_empty(self) -> bool:
        return not self._states

    def reachable_states(self) -> frozenset[str]:
        """States reachable from the initial state and creation transitions."""
        frontier: list[str] = []
        if self.initial_state is not None:
            frontier.append(self.initial_state)
        frontier.extend(ct.to_state for ct in self._creations.values())
        seen: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen or current not in self._states:
                continue
            seen.add(current)
            for tr in self._transitions.values():
                if tr.from_state == current:
                    frontier.append(tr.to_state)
        return frozenset(seen)
