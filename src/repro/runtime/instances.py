"""Instance populations.

Every class in the model owns a :class:`Population` at run time: the set
of live instances, each holding attribute values and (for active classes)
a current state.  Instance handles are plain integers, unique across the
whole simulation, so traces and generated-code simulations can correlate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xuml.klass import ModelClass

from .errors import DeadInstanceError, SimulationError


@dataclass
class Instance:
    """One live object."""

    handle: int
    class_key: str
    attributes: dict[str, object] = field(default_factory=dict)
    current_state: str | None = None
    alive: bool = True

    def get(self, name: str) -> object:
        self._require_alive()
        try:
            return self.attributes[name]
        except KeyError:
            raise SimulationError(
                f"instance {self.class_key}#{self.handle} has no attribute {name!r}"
            ) from None

    def set(self, name: str, value: object) -> None:
        self._require_alive()
        if name not in self.attributes:
            raise SimulationError(
                f"instance {self.class_key}#{self.handle} has no attribute {name!r}"
            )
        self.attributes[name] = value

    def _require_alive(self) -> None:
        if not self.alive:
            raise DeadInstanceError(
                f"instance {self.class_key}#{self.handle} has been deleted"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f" in {self.current_state}" if self.current_state else ""
        return f"<{self.class_key}#{self.handle}{state}>"


class Population:
    """All live instances of one class."""

    def __init__(self, klass: ModelClass):
        self.klass = klass
        self._instances: dict[int, Instance] = {}

    def create(self, handle: int, initial_state: str | None = None) -> Instance:
        attributes = {a.name: a.initial_value for a in self.klass.attributes}
        state = initial_state
        if state is None and self.klass.is_active:
            state = self.klass.statemachine.initial_state
        instance = Instance(handle, self.klass.key_letters, attributes, state)
        self._instances[handle] = instance
        return instance

    def delete(self, handle: int) -> Instance:
        try:
            instance = self._instances.pop(handle)
        except KeyError:
            raise DeadInstanceError(
                f"no live {self.klass.key_letters} instance #{handle}"
            ) from None
        instance.alive = False
        return instance

    def get(self, handle: int) -> Instance:
        try:
            return self._instances[handle]
        except KeyError:
            raise DeadInstanceError(
                f"no live {self.klass.key_letters} instance #{handle}"
            ) from None

    def has(self, handle: int) -> bool:
        return handle in self._instances

    def all(self) -> tuple[Instance, ...]:
        """Live instances in creation order (deterministic)."""
        return tuple(self._instances.values())

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self):
        return iter(self._instances.values())
