"""Dispatch schedulers.

The profile deliberately leaves the *global* dispatch order open: any
order is legal as long as per-instance rules hold (run-to-completion,
self-events first, per-receiver FIFO).  That freedom is what lets one
specification map onto "concurrent, distributed platforms ... as well as
fully synchronous, single tasking environments" (paper section 2).

Each scheduler here is one legal refinement of that freedom:

* :class:`SynchronousScheduler` — global FIFO by send order; the single-
  tasking software architecture.
* :class:`RoundRobinScheduler` — fair rotation over busy instances; a
  cooperative multitasking architecture.
* :class:`InterleavedScheduler` — seeded random choice; an adversarial
  stand-in for true concurrency, used by the property tests to show
  behaviour is interleaving-independent.
* :class:`PriorityScheduler` — higher-priority classes first; a
  preemptive-kernel architecture.

A scheduler only picks *which* ready source dispatches next; it can never
reorder one instance's own queue.
"""

from __future__ import annotations

import random

from .events import EventPool

#: Sentinel source meaning "dispatch the oldest pending creation event".
CREATION = -1


class Scheduler:
    """Base: choose the next dispatch source from a pool."""

    name = "base"

    def choose(self, pool: EventPool) -> int | None:
        """Return an instance handle, CREATION, or None when idle."""
        raise NotImplementedError

    def _sources(self, pool: EventPool) -> list[int]:
        sources = list(pool.ready_handles())
        if pool.has_ready_creation():
            sources.append(CREATION)
        return sources

    def _head_sequence(self, pool: EventPool, source: int) -> int:
        if source == CREATION:
            return pool._creations[0].sequence
        return pool.peek_for(source).sequence


class SynchronousScheduler(Scheduler):
    """Strict global send order — one task, one queue."""

    name = "synchronous"

    def choose(self, pool: EventPool) -> int | None:
        sources = self._sources(pool)
        if not sources:
            return None
        return min(sources, key=lambda s: self._head_sequence(pool, s))


class RoundRobinScheduler(Scheduler):
    """Rotate over sources with pending work."""

    name = "round_robin"

    def __init__(self):
        self._last: int | None = None

    def choose(self, pool: EventPool) -> int | None:
        sources = sorted(self._sources(pool))
        if not sources:
            return None
        if self._last is None:
            choice = sources[0]
        else:
            later = [s for s in sources if s > self._last]
            choice = later[0] if later else sources[0]
        self._last = choice
        return choice


class InterleavedScheduler(Scheduler):
    """Seeded-random choice over ready sources — adversarial concurrency."""

    name = "interleaved"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, pool: EventPool) -> int | None:
        sources = self._sources(pool)
        if not sources:
            return None
        return self._rng.choice(sorted(sources))


class PriorityScheduler(Scheduler):
    """Dispatch sources of higher-priority classes first.

    ``priorities`` maps class key letters to an integer priority (higher
    runs first); unlisted classes default to 0.  Ties break on global
    send order so the schedule is total and deterministic.
    """

    name = "priority"

    def __init__(self, priorities: dict[str, int], class_of_handle):
        self._priorities = dict(priorities)
        self._class_of_handle = class_of_handle

    def _priority_of(self, pool: EventPool, source: int) -> int:
        if source == CREATION:
            class_key = pool._creations[0].class_key
        else:
            class_key = self._class_of_handle(source)
        return self._priorities.get(class_key, 0)

    def choose(self, pool: EventPool) -> int | None:
        sources = self._sources(pool)
        if not sources:
            return None
        return min(
            sources,
            key=lambda s: (-self._priority_of(pool, s), self._head_sequence(pool, s)),
        )
