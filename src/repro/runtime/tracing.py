"""Execution tracing.

Every observable step of a simulation is appended to a :class:`Trace`:
signal sends/consumes, transitions, activity start/end, instance
lifecycle, bridge calls.  The trace is the common currency of the whole
toolchain — the causality checker (paper: "this captures desired cause
and effect"), the verification harness, and the model-vs-generated-code
conformance comparison all consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TraceKind(enum.Enum):
    INSTANCE_CREATED = "instance_created"
    INSTANCE_DELETED = "instance_deleted"
    SIGNAL_SENT = "signal_sent"
    SIGNAL_CONSUMED = "signal_consumed"
    SIGNAL_IGNORED = "signal_ignored"
    TRANSITION = "transition"
    ACTIVITY_START = "activity_start"
    ACTIVITY_END = "activity_end"
    BRIDGE_CALL = "bridge_call"
    TIMER_SET = "timer_set"
    LOG = "log"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.  ``data`` is kind-specific."""

    index: int
    time: int
    kind: TraceKind
    data: dict = field(hash=False, compare=False, default_factory=dict)

    def __str__(self) -> str:
        payload = ", ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.index:5d} t={self.time:8d}] {self.kind.value}: {payload}"


class Trace:
    """An append-only record of one execution."""

    def __init__(self):
        self._events: list[TraceEvent] = []

    def record(self, time: int, kind: TraceKind, **data) -> TraceEvent:
        event = TraceEvent(len(self._events), time, kind, data)
        self._events.append(event)
        return event

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind: TraceKind) -> tuple[TraceEvent, ...]:
        return tuple(e for e in self._events if e.kind is kind)

    def signals_consumed_by(self, handle: int) -> tuple[TraceEvent, ...]:
        return tuple(
            e
            for e in self._events
            if e.kind is TraceKind.SIGNAL_CONSUMED and e.data.get("target") == handle
        )

    def transitions_of(self, handle: int) -> tuple[TraceEvent, ...]:
        return tuple(
            e
            for e in self._events
            if e.kind is TraceKind.TRANSITION and e.data.get("handle") == handle
        )

    def state_history(self, handle: int) -> tuple[str, ...]:
        """The sequence of states *handle* entered, in order."""
        return tuple(e.data["to_state"] for e in self.transitions_of(handle))

    def signal_labels(self) -> tuple[str, ...]:
        """Labels of all consumed signals, in consumption order."""
        return tuple(
            e.data["label"]
            for e in self._events
            if e.kind is TraceKind.SIGNAL_CONSUMED
        )

    def behavioural_summary(self) -> tuple[tuple, ...]:
        """A scheduler-independent digest used for conformance comparison.

        Per instance, the ordered list of (consumed label, entered state).
        Two executions that agree on every instance's own history are
        behaviourally equivalent under the profile's rules, even if the
        global interleaving differs — exactly the freedom paper section 4
        grants the model compiler.
        """
        per_instance: dict[int, list[tuple[str, str]]] = {}
        pending_label: dict[int, str] = {}
        for event in self._events:
            if event.kind is TraceKind.SIGNAL_CONSUMED:
                pending_label[event.data["target"]] = event.data["label"]
            elif event.kind is TraceKind.TRANSITION:
                handle = event.data["handle"]
                label = pending_label.pop(handle, "")
                per_instance.setdefault(handle, []).append(
                    (label, event.data["to_state"])
                )
        return tuple(
            (handle, tuple(history))
            for handle, history in sorted(per_instance.items())
        )
