"""Runtime error types."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for execution-time errors."""


class CantHappenError(SimulationError):
    """An event arrived in a state whose table says it can't happen."""


class DeadInstanceError(SimulationError):
    """An operation touched an instance that has been deleted."""


class MultiplicityError(SimulationError):
    """A relate/unrelate violated the association's declared multiplicity."""


class SelectionError(SimulationError):
    """A 'select one' navigation produced more than one instance."""


class BridgeError(SimulationError):
    """A bridge was called but no implementation is registered."""
