"""Bridge implementations for external entities.

The model declares *what* bridges exist (:class:`repro.xuml.external`);
the simulation supplies *how* they behave, via plain Python callables.
Two standard entities get default implementations so every model can rely
on them:

* ``LOG`` — ``info(message)``, ``metric(name, value)``; records into the
  trace, and collects metrics for the benchmarks.
* ``TIM`` — ``current_time()``, ``timer_start(duration, event)`` which
  schedules the named event back to the calling instance, and
  ``timer_cancel(event)``.

Bridge callables receive a :class:`BridgeContext` first, then the declared
parameters by keyword.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import BridgeError
from .tracing import TraceKind


@dataclass
class BridgeContext:
    """What a bridge implementation may touch."""

    simulation: object          # the Simulation (kept untyped to avoid cycles)
    self_handle: int | None     # instance executing the calling activity
    class_key: str | None

    @property
    def now(self) -> int:
        return self.simulation.now


class BridgeRegistry:
    """(entity, operation) -> callable registry with default services."""

    def __init__(self):
        self._impls: dict[tuple[str, str], object] = {}
        self.log_lines: list[tuple[int, str]] = []
        self.metrics: dict[str, list[tuple[int, float]]] = {}
        self._install_defaults()

    def register(self, entity: str, operation: str, impl) -> None:
        self._impls[(entity, operation)] = impl

    def has(self, entity: str, operation: str) -> bool:
        return (entity, operation) in self._impls

    def call(self, context: BridgeContext, entity: str, operation: str, **kwargs):
        impl = self._impls.get((entity, operation))
        if impl is None:
            raise BridgeError(f"no implementation registered for {entity}::{operation}")
        return impl(context, **kwargs)

    # -- default services ---------------------------------------------------

    def _install_defaults(self) -> None:
        self.register("LOG", "info", self._log_info)
        self.register("LOG", "metric", self._log_metric)
        self.register("TIM", "current_time", self._tim_current_time)
        self.register("TIM", "timer_start", self._tim_timer_start)
        self.register("TIM", "timer_cancel", self._tim_timer_cancel)

    def _log_info(self, context: BridgeContext, message: str = "") -> None:
        self.log_lines.append((context.now, str(message)))
        context.simulation.trace.record(
            context.now, TraceKind.LOG, message=str(message)
        )

    def _log_metric(
        self, context: BridgeContext, name: str = "", value: float = 0.0
    ) -> None:
        self.metrics.setdefault(str(name), []).append((context.now, float(value)))

    def _tim_current_time(self, context: BridgeContext) -> int:
        return context.now

    def _tim_timer_start(
        self, context: BridgeContext, duration: int = 0, event: str = ""
    ) -> int:
        if context.self_handle is None:
            raise BridgeError("TIM::timer_start requires an instance context")
        return context.simulation.schedule_timer(
            context.self_handle, context.class_key, str(event), int(duration)
        )

    def _tim_timer_cancel(self, context: BridgeContext, event: str = "") -> int:
        if context.self_handle is None:
            raise BridgeError("TIM::timer_cancel requires an instance context")
        return context.simulation.cancel_timer(context.self_handle, str(event))
