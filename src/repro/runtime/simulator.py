"""The model executor.

:class:`Simulation` runs one component of a model exactly by the paper's
rules: concurrently executing instance state machines, signal-only
communication, and run-to-completion action execution — "a model can be
executed independent of implementation" (section 2).

One :meth:`step` dispatches one signal: the scheduler picks a ready
source, the target's state table answers TRANSITION / IGNORE /
CANT_HAPPEN, and on a transition the destination state's activity runs to
completion (possibly generating further signals, creating and deleting
instances, starting timers) before any other signal is consumed.

For the E6 ablation the simulator also supports ``eager_dispatch=True``,
which *breaks* run-to-completion on purpose by delivering generated
signals immediately, mid-activity — the causality checker then shows
exactly the cause-and-effect violations the paper's rules exist to
prevent.
"""

from __future__ import annotations

from repro.exec import IRExecutor, LoweredComponent, lower_component
from repro.obs.metrics import active_registry
from repro.oal.errors import OALRuntimeError
from repro.xuml.component import Component
from repro.xuml.model import Model
from repro.xuml.statemachine import EventResponse

from .bridges import BridgeContext, BridgeRegistry
from .errors import CantHappenError, SelectionError, SimulationError
from .events import EventPool, SignalInstance
from .instances import Instance, Population
from .links import LinkStore
from .scheduler import CREATION, Scheduler, SynchronousScheduler
from .tracing import Trace, TraceKind


class Simulation:
    """Executable instance of one model component.

    Parameters
    ----------
    model:
        A well-formed model.
    component:
        Component name; defaults to the model's only component.
    scheduler:
        Dispatch policy (default: :class:`SynchronousScheduler`).
    cant_happen:
        ``"error"`` (raise, the default) or ``"record"`` (count and go on).
    eager_dispatch:
        Ablation switch: deliver generated signals immediately instead of
        queueing them (violates run-to-completion; see E6).
    self_priority:
        Ablation switch: ``False`` disables the self-directed-events-
        first queue rule (plain FIFO per instance; see E6).
    """

    def __init__(
        self,
        model: Model,
        component: str | None = None,
        scheduler: Scheduler | None = None,
        cant_happen: str = "error",
        eager_dispatch: bool = False,
        self_priority: bool = True,
    ):
        self.model = model
        if component is None:
            components = model.components
            if len(components) != 1:
                raise SimulationError(
                    "model has several components; name one explicitly"
                )
            self.component: Component = components[0]
        else:
            self.component = model.component(component)
        self.scheduler = scheduler or SynchronousScheduler()
        self.trace = Trace()
        self.bridges = BridgeRegistry()
        self.pool = EventPool(self_priority)
        self.links = LinkStore(self.component)
        self.loop_bound = 100_000
        self.cant_happen_policy = cant_happen
        self.cant_happen_count = 0
        self.eager_dispatch = eager_dispatch

        self.now = 0
        self._next_handle = 1
        self._next_sequence = 1
        self._next_activity = 1
        self._next_timer = 1
        self._activity_stack: list[int] = []
        self._populations: dict[str, Population] = {
            klass.key_letters: Population(klass) for klass in self.component.classes
        }
        # One lowering per model content (fingerprint-cached), one shared
        # evaluator: the abstract runtime executes literally the same IR
        # through literally the same code as csim and vsim.
        self._lowered: LoweredComponent = lower_component(model, self.component)
        self._exec = IRExecutor(
            self, error=OALRuntimeError, selection_error=SelectionError
        )

        # observability: bind metrics once at construction; when no
        # registry is active every hook is one `is not None` test
        registry = active_registry()
        if registry is None:
            self._metric_dispatches = None
            self._metric_queue_depth = None
            self._metric_wait = None
        else:
            self._metric_dispatches = registry.counter("runtime.dispatches")
            self._metric_queue_depth = registry.histogram(
                "runtime.queue_depth",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256))
            self._metric_wait = registry.histogram(
                "runtime.dispatch_wait_us",
                buckets=(0, 1, 10, 100, 1_000, 10_000, 100_000, 1_000_000))

    # -- execution core ----------------------------------------------------------

    @property
    def execution_core(self) -> str:
        """Which execution core serves this simulation's actions."""
        from repro.exec import CORE_NAME

        return f"{CORE_NAME} (lowered action IR)"

    @property
    def ops_executed(self) -> int:
        """Dynamically executed IR statements (shared-core counter)."""
        return self._exec.ops_executed

    # -- population --------------------------------------------------------------

    def population(self, class_key: str) -> Population:
        try:
            return self._populations[class_key]
        except KeyError:
            raise SimulationError(f"no class {class_key!r} in component") from None

    def create_instance(self, class_key: str, **attribute_values) -> int:
        population = self.population(class_key)
        handle = self._next_handle
        self._next_handle += 1
        instance = population.create(handle)
        for name, value in attribute_values.items():
            instance.set(name, value)
        self.trace.record(
            self.now, TraceKind.INSTANCE_CREATED,
            handle=handle, class_key=class_key, state=instance.current_state,
        )
        return handle

    def delete_instance(self, handle: int) -> None:
        instance = self.instance(handle)
        self.population(instance.class_key).delete(handle)
        self.links.drop_instance(handle)
        dropped = self.pool.drop_instance(handle)
        self.trace.record(
            self.now, TraceKind.INSTANCE_DELETED,
            handle=handle, class_key=instance.class_key, pending_dropped=dropped,
        )

    def instance(self, handle: int) -> Instance:
        for population in self._populations.values():
            if population.has(handle):
                return population.get(handle)
        raise SimulationError(f"no live instance #{handle}")

    def class_of(self, handle: int) -> str:
        return self.instance(handle).class_key

    def instances_of(self, class_key: str) -> tuple[int, ...]:
        return tuple(sorted(i.handle for i in self.population(class_key)))

    def state_of(self, handle: int) -> str | None:
        return self.instance(handle).current_state

    # -- attributes ----------------------------------------------------------------

    def read_attribute(self, handle: int, name: str):
        instance = self.instance(handle)
        klass = self.component.klass(instance.class_key)
        attribute = klass.attribute(name)
        if attribute.derived is not None:
            ir = self._lowered.derived[(instance.class_key, name)]
            return self._exec.run(ir, handle, {})
        return instance.get(name)

    def write_attribute(self, handle: int, name: str, value) -> None:
        self.instance(handle).set(name, value)

    # -- links ------------------------------------------------------------------------

    def relate(self, left: int, right: int, association_number: str, phrase=None):
        association = self.component.association(association_number)
        self.links.relate(
            association,
            left, self.class_of(left),
            right, self.class_of(right),
            phrase,
        )

    def unrelate(self, left: int, right: int, association_number: str, phrase=None):
        association = self.component.association(association_number)
        self.links.unrelate(
            association,
            left, self.class_of(left),
            right, self.class_of(right),
            phrase,
        )

    def navigate(
        self, handle: int, association_number: str, to_class: str, phrase=None
    ) -> tuple[int, ...]:
        association = self.component.association(association_number)
        return self.links.navigate(
            association, handle, self.class_of(handle), to_class, phrase
        )

    def referential_violations(self) -> list[str]:
        populations = {
            key: [i.handle for i in population]
            for key, population in self._populations.items()
        }
        return self.links.integrity_violations(populations)

    # -- signals ---------------------------------------------------------------------

    def _stamp(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    @property
    def _current_activity(self) -> int:
        return self._activity_stack[-1] if self._activity_stack else 0

    def send_signal(
        self,
        target: int,
        class_key: str,
        label: str,
        params: dict | None = None,
        sender: int | None = None,
        delay: int = 0,
    ) -> SignalInstance:
        """Queue (or, with delay, schedule) a signal to a live instance."""
        klass = self.component.klass(class_key)
        klass.event(label)  # validates the label
        signal = SignalInstance(
            sequence=self._stamp(),
            label=label,
            class_key=class_key,
            params=dict(params or {}),
            target_handle=target,
            sender_handle=sender,
            activity_id=self._current_activity,
            sent_at=self.now,
        )
        self.trace.record(
            self.now, TraceKind.SIGNAL_SENT,
            sequence=signal.sequence, label=label, target=target,
            sender=sender, activity=signal.activity_id, delay=delay,
        )
        if delay > 0:
            self.pool.push_delayed(signal, self.now + delay)
        elif self.eager_dispatch and self._activity_stack:
            # ablation: break run-to-completion by delivering immediately
            self._dispatch(signal)
        else:
            self.pool.push_ready(signal)
        return signal

    def send_creation(
        self,
        class_key: str,
        label: str,
        params: dict | None = None,
        sender: int | None = None,
        delay: int = 0,
    ) -> SignalInstance:
        """Queue a creation event: the instance is born when it dispatches."""
        klass = self.component.klass(class_key)
        event = klass.event(label)
        if not event.creation:
            raise SimulationError(f"{class_key}.{label} is not a creation event")
        signal = SignalInstance(
            sequence=self._stamp(),
            label=label,
            class_key=class_key,
            params=dict(params or {}),
            target_handle=None,
            sender_handle=sender,
            activity_id=self._current_activity,
            sent_at=self.now,
            is_creation=True,
        )
        self.trace.record(
            self.now, TraceKind.SIGNAL_SENT,
            sequence=signal.sequence, label=label, target=None,
            sender=sender, activity=signal.activity_id, delay=delay,
        )
        if delay > 0:
            self.pool.push_delayed(signal, self.now + delay)
        else:
            self.pool.push_ready(signal)
        return signal

    def inject(self, target: int, label: str, params: dict | None = None, delay: int = 0):
        """Send a signal from the environment (test benches, stimuli)."""
        return self.send_signal(
            target, self.class_of(target), label, params, sender=None, delay=delay
        )

    # -- timers -----------------------------------------------------------------------

    def schedule_timer(
        self, handle: int, class_key: str, label: str, duration: int
    ) -> int:
        klass = self.component.klass(class_key)
        klass.event(label)  # validates
        timer_id = self._next_timer
        self._next_timer += 1
        signal = SignalInstance(
            sequence=self._stamp(),
            label=label,
            class_key=class_key,
            params={},
            target_handle=handle,
            sender_handle=handle,   # timers deliver back to the requester
            activity_id=self._current_activity,
            sent_at=self.now,
        )
        self.pool.push_delayed(signal, self.now + max(0, duration))
        self.trace.record(
            self.now, TraceKind.TIMER_SET,
            timer=timer_id, handle=handle, label=label, duration=duration,
        )
        return timer_id

    def cancel_timer(self, handle: int, label: str) -> int:
        return self.pool.cancel_delayed(
            lambda s: s.target_handle == handle and s.label == label
        )

    # -- bridges and operations ----------------------------------------------------------

    def call_bridge(self, self_handle, entity: str, operation: str, kwargs: dict):
        self.component.external(entity).bridge(operation)  # validates
        class_key = self.class_of(self_handle) if self_handle is not None else None
        context = BridgeContext(self, self_handle, class_key)
        self.trace.record(
            self.now, TraceKind.BRIDGE_CALL,
            entity=entity, operation=operation, handle=self_handle,
        )
        return self.bridges.call(context, entity, operation, **kwargs)

    def call_instance_operation(self, handle: int, name: str, kwargs: dict):
        class_key = self.class_of(handle)
        ir = self._lowered.operations[(class_key, name)]
        return self._exec.run(ir, handle, kwargs)

    def call_class_operation(self, class_key: str, name: str, kwargs: dict):
        ir = self._lowered.operations[(class_key, name)]
        return self._exec.run(ir, None, kwargs)

    # -- dispatch -----------------------------------------------------------------------

    def step(self) -> bool:
        """Dispatch one ready signal.  Returns False when nothing is ready."""
        self.pool.release_due(self.now)
        source = self.scheduler.choose(self.pool)
        if source is None:
            return False
        if self._metric_dispatches is not None:
            self._metric_dispatches.inc()
            self._metric_queue_depth.observe(self.pool.ready_count)
        if source == CREATION:
            signal = self.pool.pop_creation()
        else:
            signal = self.pool.pop_for(source)
        if self._metric_wait is not None:
            self._metric_wait.observe(self.now - signal.sent_at)
        self._dispatch(signal)
        return True

    def _dispatch(self, signal: SignalInstance) -> None:
        if signal.is_creation:
            self._dispatch_creation(signal)
            return
        handle = signal.target_handle
        population = self._populations.get(signal.class_key)
        if population is None or not population.has(handle):
            # target died while the signal was in flight: drop it
            self.trace.record(
                self.now, TraceKind.SIGNAL_IGNORED,
                sequence=signal.sequence, label=signal.label, target=handle,
                reason="target deleted",
            )
            return
        instance = population.get(handle)
        klass = self.component.klass(signal.class_key)
        response = klass.statemachine.response_to(instance.current_state, signal.label)
        if response is EventResponse.IGNORE:
            self.trace.record(
                self.now, TraceKind.SIGNAL_IGNORED,
                sequence=signal.sequence, label=signal.label, target=handle,
                reason="ignored",
            )
            return
        if response is EventResponse.CANT_HAPPEN:
            self.cant_happen_count += 1
            message = (
                f"event {signal.label} can't happen in state "
                f"{instance.current_state} of {signal.class_key}#{handle}"
            )
            if self.cant_happen_policy == "error":
                raise CantHappenError(message)
            self.trace.record(
                self.now, TraceKind.SIGNAL_IGNORED,
                sequence=signal.sequence, label=signal.label, target=handle,
                reason="cant_happen",
            )
            return
        transition = klass.statemachine.transition_for(
            instance.current_state, signal.label
        )
        self.trace.record(
            self.now, TraceKind.SIGNAL_CONSUMED,
            sequence=signal.sequence, label=signal.label, target=handle,
            sender=signal.sender_handle, sent_activity=signal.activity_id,
        )
        old_state = instance.current_state
        instance.current_state = transition.to_state
        self.trace.record(
            self.now, TraceKind.TRANSITION,
            handle=handle, class_key=signal.class_key,
            from_state=old_state, to_state=transition.to_state,
            label=signal.label,
        )
        self._run_state_activity(instance, transition.to_state, signal)

    def _dispatch_creation(self, signal: SignalInstance) -> None:
        klass = self.component.klass(signal.class_key)
        creation = klass.statemachine.creation_transition_for(signal.label)
        if creation is None:
            raise SimulationError(
                f"no creation transition for {signal.class_key}.{signal.label}"
            )
        handle = self.create_instance(signal.class_key)
        instance = self.instance(handle)
        self.trace.record(
            self.now, TraceKind.SIGNAL_CONSUMED,
            sequence=signal.sequence, label=signal.label, target=handle,
            sender=signal.sender_handle, sent_activity=signal.activity_id,
        )
        instance.current_state = creation.to_state
        self.trace.record(
            self.now, TraceKind.TRANSITION,
            handle=handle, class_key=signal.class_key,
            from_state=None, to_state=creation.to_state, label=signal.label,
        )
        self._run_state_activity(instance, creation.to_state, signal)

    def _run_state_activity(
        self, instance: Instance, state_name: str, signal: SignalInstance
    ) -> None:
        key = (instance.class_key, state_name)
        activity_id = self._next_activity
        self._next_activity += 1
        self.trace.record(
            self.now, TraceKind.ACTIVITY_START,
            activity=activity_id, handle=instance.handle,
            class_key=instance.class_key, state=state_name,
            consumed_sequence=signal.sequence,
        )
        self._activity_stack.append(activity_id)
        try:
            params = {
                name: signal.params.get(name)
                for name in self._lowered.event_parameters[key]
            }
            self._exec.run(self._lowered.activities[key], instance.handle, params)
        finally:
            self._activity_stack.pop()
            self.trace.record(
                self.now, TraceKind.ACTIVITY_END,
                activity=activity_id, handle=instance.handle,
                class_key=instance.class_key, state=state_name,
            )

    # -- time -----------------------------------------------------------------------------

    def run_to_quiescence(self, max_steps: int = 1_000_000) -> int:
        """Dispatch until no event is ready or scheduled.  Returns steps."""
        steps = 0
        while steps < max_steps:
            if self.step():
                steps += 1
                continue
            due = self.pool.next_due_time()
            if due is None:
                break
            self.now = max(self.now, due)
        else:
            raise SimulationError(f"no quiescence within {max_steps} steps")
        return steps

    def run_until(self, time: int, max_steps: int = 1_000_000) -> int:
        """Advance simulated time to *time*, dispatching everything due."""
        if time < self.now:
            raise SimulationError("cannot run backwards")
        steps = 0
        while True:
            while self.step():
                steps += 1
                if steps > max_steps:
                    raise SimulationError(f"exceeded {max_steps} steps")
            due = self.pool.next_due_time()
            if due is None or due > time:
                break
            self.now = max(self.now, due)
        self.now = time
        return steps
