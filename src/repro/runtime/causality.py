"""Causality checking over traces.

Paper section 2: "The actions in the destination state of the receiver
execute after the action that sent the signal.  This captures desired
cause and effect."

This module verifies exactly that property on a recorded trace: for every
consumed signal, the *sending* activity must have ended before the
*receiving* activity starts.  Under a conforming scheduler this always
holds (run-to-completion enqueues the signal and returns to the sender's
remaining actions); the ``eager_dispatch`` ablation breaks it and this
checker finds every break.

It also verifies the two queueing invariants the generated architectures
must preserve: per-receiver FIFO among non-self events and self-event
priority.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tracing import Trace, TraceKind


@dataclass(frozen=True)
class CausalityViolation:
    """One broken happens-before edge."""

    sequence: int
    label: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"signal #{self.sequence} ({self.label}): {self.kind} — {self.detail}"


def check_causality(trace: Trace) -> list[CausalityViolation]:
    """All violations of sender-completes-before-receiver-starts."""
    violations: list[CausalityViolation] = []
    activity_end_index: dict[int, int] = {}
    activity_start_index: dict[int, int] = {}
    sent_index: dict[int, int] = {}
    sent_activity: dict[int, int] = {}
    label_of: dict[int, str] = {}

    for event in trace:
        if event.kind is TraceKind.ACTIVITY_START:
            activity_start_index[event.data["activity"]] = event.index
        elif event.kind is TraceKind.ACTIVITY_END:
            activity_end_index[event.data["activity"]] = event.index
        elif event.kind is TraceKind.SIGNAL_SENT:
            sent_index[event.data["sequence"]] = event.index
            sent_activity[event.data["sequence"]] = event.data["activity"]
            label_of[event.data["sequence"]] = event.data["label"]

    for event in trace:
        if event.kind is not TraceKind.ACTIVITY_START:
            continue
        sequence = event.data.get("consumed_sequence")
        if sequence is None:
            continue
        if sequence not in sent_index:
            violations.append(CausalityViolation(
                sequence, "?", "unsent",
                "consumed a signal that was never sent",
            ))
            continue
        if sent_index[sequence] > event.index:
            violations.append(CausalityViolation(
                sequence, label_of[sequence], "time-travel",
                "consumed before it was sent",
            ))
        sender = sent_activity[sequence]
        if sender == 0:
            continue  # environment injection: no sending activity
        sender_end = activity_end_index.get(sender)
        if sender_end is None or sender_end > event.index:
            violations.append(CausalityViolation(
                sequence, label_of[sequence], "run-to-completion",
                f"receiver activity started before sending activity "
                f"{sender} completed",
            ))
    return violations


def check_receiver_fifo(trace: Trace) -> list[CausalityViolation]:
    """Non-self signals to one receiver must be consumed in send order."""
    violations: list[CausalityViolation] = []
    send_order: dict[int, dict] = {}
    for event in trace:
        if event.kind is TraceKind.SIGNAL_SENT:
            send_order[event.data["sequence"]] = event.data

    last_consumed: dict[int, int] = {}
    for event in trace:
        if event.kind is not TraceKind.SIGNAL_CONSUMED:
            continue
        sequence = event.data["sequence"]
        sent = send_order.get(sequence)
        if sent is None or sent.get("delay", 0) > 0:
            continue  # delayed events re-enter the order at their due time
        target = event.data["target"]
        sender = event.data.get("sender")
        if sender is not None and sender == target:
            continue  # self-directed events legitimately jump the queue
        previous = last_consumed.get(target)
        if previous is not None and sequence < previous:
            violations.append(CausalityViolation(
                sequence, event.data["label"], "fifo",
                f"consumed after younger signal #{previous} to the same "
                f"receiver {target}",
            ))
        last_consumed[target] = max(previous or 0, sequence)
    return violations


def check_trace(trace: Trace) -> list[CausalityViolation]:
    """Run every trace-level semantic check."""
    return check_causality(trace) + check_receiver_fifo(trace)
