"""Signal instances and per-instance event queues.

The queueing rules implement the paper's execution semantics plus the two
standard xtUML refinements that make it deterministic enough to translate:

* events between one sender/receiver pair are delivered in the order sent
  (per-pair FIFO, which our stronger per-receiver FIFO subsumes);
* an event an instance sends **to itself** is consumed before any other
  event pending for that instance (the "self-directed events first" rule).

Delayed events (``generate ... delay n`` and timers) enter the queue only
when simulated time reaches their due time.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SignalInstance:
    """One in-flight signal.

    ``sequence`` is a global monotonic stamp assigned at send time —
    the FIFO tiebreak and the correlation key used by traces.
    ``target_handle`` is ``None`` for creation events (the receiver does
    not exist yet).  ``activity_id`` identifies the activity execution
    that sent the signal (0 for environment injections), which is what
    the causality checker uses.
    """

    sequence: int
    label: str
    class_key: str
    params: dict = field(hash=False, compare=False, default_factory=dict)
    target_handle: int | None = None
    sender_handle: int | None = None
    activity_id: int = 0
    sent_at: int = 0
    is_creation: bool = False

    @property
    def is_self_directed(self) -> bool:
        return (
            self.sender_handle is not None
            and self.sender_handle == self.target_handle
        )


class InstanceQueue:
    """Pending events of one instance: self-directed first, then FIFO.

    ``self_priority=False`` disables the self-first rule (plain FIFO);
    it exists only for the E6 ablation, which demonstrates that models
    written to the profile's rules break without it.
    """

    def __init__(self, self_priority: bool = True):
        self._self_priority = self_priority
        self._self_events: deque[SignalInstance] = deque()
        self._other_events: deque[SignalInstance] = deque()

    def push(self, signal: SignalInstance) -> None:
        if self._self_priority and signal.is_self_directed:
            self._self_events.append(signal)
        else:
            self._other_events.append(signal)

    def pop(self) -> SignalInstance:
        if self._self_events:
            return self._self_events.popleft()
        return self._other_events.popleft()

    def peek(self) -> SignalInstance:
        if self._self_events:
            return self._self_events[0]
        return self._other_events[0]

    def __len__(self) -> int:
        return len(self._self_events) + len(self._other_events)

    def __bool__(self) -> bool:
        return bool(self._self_events or self._other_events)


class EventPool:
    """All pending work: ready queues per instance + time-ordered delays.

    Creation events have no instance yet; they wait in a dedicated FIFO
    that schedulers treat as one more dispatch source.
    """

    def __init__(self, self_priority: bool = True):
        self._self_priority = self_priority
        self._queues: dict[int, InstanceQueue] = {}
        self._creations: deque[SignalInstance] = deque()
        self._delayed: list[tuple[int, int, SignalInstance]] = []  # (due, seq, sig)

    # -- feeding ------------------------------------------------------------

    def push_ready(self, signal: SignalInstance) -> None:
        if signal.is_creation:
            self._creations.append(signal)
            return
        queue = self._queues.get(signal.target_handle)
        if queue is None:
            queue = InstanceQueue(self._self_priority)
            self._queues[signal.target_handle] = queue
        queue.push(signal)

    def push_delayed(self, signal: SignalInstance, due_time: int) -> None:
        heapq.heappush(self._delayed, (due_time, signal.sequence, signal))

    def release_due(self, now: int) -> int:
        """Move delayed events whose time has come into the ready queues."""
        released = 0
        while self._delayed and self._delayed[0][0] <= now:
            _, _, signal = heapq.heappop(self._delayed)
            self.push_ready(signal)
            released += 1
        return released

    def cancel_delayed(self, predicate) -> int:
        """Drop delayed events matching *predicate* (timer cancellation)."""
        kept = [entry for entry in self._delayed if not predicate(entry[2])]
        removed = len(self._delayed) - len(kept)
        if removed:
            self._delayed = kept
            heapq.heapify(self._delayed)
        return removed

    def drop_instance(self, handle: int) -> int:
        """Discard all events pending for a deleted instance."""
        removed = 0
        queue = self._queues.pop(handle, None)
        if queue is not None:
            removed += len(queue)
        removed += self.cancel_delayed(
            lambda signal: signal.target_handle == handle
        )
        return removed

    # -- dispatch support ------------------------------------------------------

    def ready_handles(self) -> tuple[int, ...]:
        """Handles with at least one ready event, in handle order."""
        return tuple(sorted(h for h, q in self._queues.items() if q))

    def has_ready_creation(self) -> bool:
        return bool(self._creations)

    def pop_for(self, handle: int) -> SignalInstance:
        return self._queues[handle].pop()

    def peek_for(self, handle: int) -> SignalInstance:
        return self._queues[handle].peek()

    def pop_creation(self) -> SignalInstance:
        return self._creations.popleft()

    def next_due_time(self) -> int | None:
        """Earliest due time among delayed events, or None."""
        if not self._delayed:
            return None
        return self._delayed[0][0]

    @property
    def ready_count(self) -> int:
        return sum(len(q) for q in self._queues.values()) + len(self._creations)

    @property
    def delayed_count(self) -> int:
        return len(self._delayed)

    def is_idle(self) -> bool:
        return self.ready_count == 0 and not self._delayed
