"""Execution runtime for Executable UML models.

* :class:`Simulation` — the model executor (run-to-completion semantics)
* schedulers — legal refinements of the profile's concurrency freedom
* :class:`Trace` — the observable record every other subsystem consumes
* :func:`check_trace` — machine-checkable causality (paper section 2)
"""

from .bridges import BridgeContext, BridgeRegistry
from .causality import (
    CausalityViolation,
    check_causality,
    check_receiver_fifo,
    check_trace,
)
from .errors import (
    BridgeError,
    CantHappenError,
    DeadInstanceError,
    MultiplicityError,
    SelectionError,
    SimulationError,
)
from repro.exec import c_div, c_mod

from .events import EventPool, InstanceQueue, SignalInstance
from .instances import Instance, Population
from .links import LinkStore
from .scheduler import (
    CREATION,
    InterleavedScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    Scheduler,
    SynchronousScheduler,
)
from .simulator import Simulation
from .tracing import Trace, TraceEvent, TraceKind

__all__ = [
    "BridgeContext",
    "BridgeError",
    "BridgeRegistry",
    "CREATION",
    "CantHappenError",
    "CausalityViolation",
    "DeadInstanceError",
    "EventPool",
    "Instance",
    "InstanceQueue",
    "InterleavedScheduler",
    "LinkStore",
    "MultiplicityError",
    "Population",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SelectionError",
    "SignalInstance",
    "Simulation",
    "SimulationError",
    "SynchronousScheduler",
    "Trace",
    "TraceEvent",
    "TraceKind",
    "c_div",
    "c_mod",
    "check_causality",
    "check_receiver_fifo",
    "check_trace",
]
