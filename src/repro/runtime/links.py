"""Association link storage and navigation.

Links are stored per association as unordered pairs of (end, handle)
tuples.  Multiplicity upper bounds are enforced at ``relate`` time —
violating a declared ``1`` or ``0..1`` end raises immediately, which is
the runtime analogue of the referential integrity the generated code
guarantees by construction.  Lower bounds (a mandatory ``1``) cannot be
checked per-action (links are created one at a time), so they are checked
on demand by :meth:`LinkStore.integrity_violations`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.xuml.association import Association
from repro.xuml.component import Component

from .errors import MultiplicityError, SimulationError


class LinkStore:
    """All links of one component's associations."""

    def __init__(self, component: Component):
        self._component = component
        # assoc number -> end phrase -> handle -> set of opposite handles
        self._links: dict[str, dict[str, dict[int, set[int]]]] = {}
        for association in component.associations:
            self._links[association.number] = {
                association.one.phrase: defaultdict(set),
                association.other.phrase: defaultdict(set),
            }

    # -- mutation ---------------------------------------------------------------

    def relate(
        self,
        association: Association,
        left_handle: int,
        left_class: str,
        right_handle: int,
        right_class: str,
        phrase: str | None = None,
    ) -> None:
        """Create a link; raises :class:`MultiplicityError` on overflow.

        For a reflexive association *phrase* names the end that *right*
        plays relative to *left* (matching OAL ``relate a to b across
        R1.'phrase'``).
        """
        left_end, right_end = self._resolve_ends(
            association, left_class, right_class, phrase
        )
        forward = self._links[association.number][right_end.phrase]
        backward = self._links[association.number][left_end.phrase]
        if right_handle in forward[left_handle]:
            return  # already related; relate is idempotent
        if not right_end.mult.is_many and forward[left_handle]:
            raise MultiplicityError(
                f"{association.number}: {left_class}#{left_handle} already linked "
                f"to a {right_end.class_key} ({right_end.mult} end)"
            )
        if not left_end.mult.is_many and backward[right_handle]:
            raise MultiplicityError(
                f"{association.number}: {right_class}#{right_handle} already "
                f"linked to a {left_end.class_key} ({left_end.mult} end)"
            )
        forward[left_handle].add(right_handle)
        backward[right_handle].add(left_handle)

    def unrelate(
        self,
        association: Association,
        left_handle: int,
        left_class: str,
        right_handle: int,
        right_class: str,
        phrase: str | None = None,
    ) -> None:
        left_end, right_end = self._resolve_ends(
            association, left_class, right_class, phrase
        )
        forward = self._links[association.number][right_end.phrase]
        backward = self._links[association.number][left_end.phrase]
        if right_handle not in forward[left_handle]:
            raise SimulationError(
                f"{association.number}: {left_class}#{left_handle} and "
                f"{right_class}#{right_handle} are not related"
            )
        forward[left_handle].discard(right_handle)
        backward[right_handle].discard(left_handle)

    def drop_instance(self, handle: int) -> None:
        """Remove every link touching *handle* (on instance deletion)."""
        for by_phrase in self._links.values():
            phrases = list(by_phrase)
            for phrase in phrases:
                table = by_phrase[phrase]
                table.pop(handle, None)
            for phrase in phrases:
                for peers in by_phrase[phrase].values():
                    peers.discard(handle)

    # -- navigation --------------------------------------------------------------

    def navigate(
        self,
        association: Association,
        from_handle: int,
        from_class: str,
        to_class: str,
        phrase: str | None = None,
    ) -> tuple[int, ...]:
        """Handles of *to_class* instances linked to *from_handle*.

        Results are sorted for determinism.
        """
        to_end = association.end_for(to_class, phrase)
        if association.is_reflexive and phrase is None:
            raise SimulationError(
                f"{association.number} is reflexive; navigation needs a phrase"
            )
        table = self._links[association.number][to_end.phrase]
        return tuple(sorted(table.get(from_handle, ())))

    def count(self, association_number: str) -> int:
        """Total number of links of one association."""
        by_phrase = self._links[association_number]
        total = sum(
            len(peers) for table in by_phrase.values() for peers in table.values()
        )
        return total // 2

    def integrity_violations(self, populations) -> list[str]:
        """Check unconditional (lower-bound 1) ends across the population.

        *populations* maps class key letters to iterables of live handles.
        Returns human-readable violation strings; empty means consistent.
        """
        violations: list[str] = []
        for association in self._component.associations:
            for end, other in (
                (association.one, association.other),
                (association.other, association.one),
            ):
                if end.mult.lower == 0:
                    continue
                # every instance of `other.class_key` must see >=1 `end` partner
                table = self._links[association.number][end.phrase]
                for handle in populations.get(other.class_key, ()):
                    if not table.get(handle):
                        violations.append(
                            f"{association.number}: {other.class_key}#{handle} "
                            f"has no {end.class_key} partner "
                            f"(end requires {end.mult})"
                        )
        return violations

    def _resolve_ends(self, association, left_class, right_class, phrase):
        """(left_end, right_end) where right_end is the role right plays."""
        if association.is_reflexive:
            if phrase is None:
                raise SimulationError(
                    f"{association.number} is reflexive; relate needs a phrase"
                )
            right_end = association.end_for(right_class, phrase)
            left_end = association.opposite(right_end)
        else:
            right_end = association.end_for(right_class)
            left_end = association.end_for(left_class)
        return left_end, right_end
