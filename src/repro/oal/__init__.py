"""OAL — the Object Action Language of the Executable UML profile.

The paper (section 2): "The introduction of the Action Semantics enables
execution of UML models."  This package is that action semantics: a small
concurrent specification language whose statements are the only way model
behaviour is expressed, so that the same text can be translated onto
"concurrent, distributed platforms; hardware definition languages; as well
as fully synchronous, single tasking environments".

* :func:`parse_activity` / :func:`parse_expression` — text to AST
* :func:`analyze_activity` — static semantics against a model context
* :mod:`repro.oal.ast` — the tree the runtime and the model compiler share
"""

from . import ast
from .analyzer import (
    AnalyzedActivity,
    analyze_activity,
    entering_events,
    shared_event_parameters,
)
from .errors import AnalysisError, OALError, OALRuntimeError, OALSyntaxError
from .lexer import tokenize
from .parser import parse_activity, parse_expression
from .printer import print_activity, print_expression

__all__ = [
    "AnalysisError",
    "AnalyzedActivity",
    "OALError",
    "OALRuntimeError",
    "OALSyntaxError",
    "analyze_activity",
    "ast",
    "entering_events",
    "parse_activity",
    "parse_expression",
    "print_activity",
    "print_expression",
    "shared_event_parameters",
    "tokenize",
]
