"""Static semantic analysis of OAL activities.

The analyzer binds an activity to its model context — owning class, state
(for event-parameter access), component (types, associations, externals) —
and verifies:

* every name is defined before use, with a single consistent type;
* attribute access matches the target class's declared attributes;
* ``param.x`` is carried (with one type) by *every* event that can enter
  the state — the xtUML rule that makes activities implementation-neutral;
* ``generate`` arguments cover the event's parameters exactly;
* relationship navigation follows declared associations end-to-end;
* bridge/operation calls match declared signatures;
* ``break``/``continue`` appear only inside loops, ``return`` values only
  inside operations that declare a return type.

The tree is never mutated; results live in :class:`AnalyzedActivity` side
tables keyed by node identity, which the interpreter and the model
compiler both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xuml.component import Component
from repro.xuml.datatypes import (
    CoreType,
    DataType,
    InstRefType,
    InstSetType,
)
from repro.xuml.klass import ModelClass, Operation
from repro.xuml.model import Model
from repro.xuml.statemachine import State

from . import ast
from .errors import AnalysisError

_NUMERIC = (CoreType.INTEGER, CoreType.REAL, CoreType.TIMESTAMP)


@dataclass
class AnalyzedActivity:
    """Analysis results for one activity."""

    block: ast.Block
    variable_types: dict[str, DataType] = field(default_factory=dict)
    expr_types: dict[int, DataType | None] = field(default_factory=dict)
    #: id(Generate stmt) -> class key letters of the receiving class
    generate_classes: dict[int, str] = field(default_factory=dict)
    #: id(BridgeCall expr) -> True when the "entity" is really a class
    #: (static operation call), False for a genuine external-entity bridge
    static_operation_calls: dict[int, bool] = field(default_factory=dict)
    #: event parameters visible to this activity: name -> type
    event_parameters: dict[str, DataType] = field(default_factory=dict)

    def type_of(self, expr: ast.Expr) -> DataType | None:
        return self.expr_types[id(expr)]


def entering_events(klass: ModelClass, state: State):
    """Event specs that can cause entry to *state* (incl. creation events)."""
    labels = {
        tr.event_label
        for tr in klass.statemachine.transitions
        if tr.to_state == state.name
    }
    labels.update(
        ct.event_label
        for ct in klass.statemachine.creation_transitions
        if ct.to_state == state.name
    )
    return [klass.event(label) for label in sorted(labels) if klass.has_event(label)]


def shared_event_parameters(klass: ModelClass, state: State) -> dict[str, DataType]:
    """Parameters every entering event carries with an identical type.

    Only these may be referenced as ``param.x`` in the state's activity;
    this is what keeps the activity valid no matter which signal caused
    the transition.
    """
    events = entering_events(klass, state)
    if not events:
        return {}
    shared: dict[str, DataType] = {p.name: p.dtype for p in events[0].parameters}
    for event in events[1:]:
        theirs = {p.name: p.dtype for p in event.parameters}
        for name in list(shared):
            if theirs.get(name) != shared[name]:
                del shared[name]
    return shared


def analyze_activity(
    block: ast.Block,
    model: Model,
    component: Component,
    klass: ModelClass,
    state: State | None,
    operation: Operation | None = None,
) -> AnalyzedActivity:
    """Analyze *block* in the context of (component, klass, state|operation)."""
    result = AnalyzedActivity(block)
    if state is not None:
        result.event_parameters = shared_event_parameters(klass, state)
    if operation is not None:
        result.event_parameters = {p.name: p.dtype for p in operation.parameters}
    analyzer = _Analyzer(model, component, klass, operation, result)
    analyzer.check_block(block, loop_depth=0)
    return result


class _Analyzer:
    def __init__(
        self,
        model: Model,
        component: Component,
        klass: ModelClass,
        operation: Operation | None,
        result: AnalyzedActivity,
    ):
        self._model = model
        self._component = component
        self._klass = klass
        self._operation = operation
        self._result = result
        self._selected_type: InstRefType | None = None

    # -- helpers ---------------------------------------------------------------

    def fail(self, message: str, node: ast.Node) -> AnalysisError:
        return AnalysisError(message, node.line, node.column)

    def _bind(self, name: str, dtype: DataType, node: ast.Node) -> None:
        known = self._result.variable_types.get(name)
        if known is None:
            self._result.variable_types[name] = dtype
            return
        if known == dtype:
            return
        if known is CoreType.REAL and dtype is CoreType.INTEGER:
            return  # int widens into a real variable
        raise self.fail(
            f"variable {name!r} was {known}, cannot rebind to {dtype}", node
        )

    def _class(self, key_letters: str, node: ast.Node) -> ModelClass:
        if not self._component.has_class(key_letters):
            raise self.fail(f"unknown class {key_letters!r}", node)
        return self._component.klass(key_letters)

    def _instance_class(self, expr: ast.Expr, purpose: str) -> ModelClass:
        dtype = self.check_expr(expr)
        if not isinstance(dtype, InstRefType):
            raise self.fail(
                f"{purpose} must be an instance reference, got {dtype}", expr
            )
        return self._class(dtype.class_key, expr)

    # -- statements ----------------------------------------------------------

    def check_block(self, block: ast.Block, loop_depth: int) -> None:
        for stmt in block.statements:
            self.check_stmt(stmt, loop_depth)

    def check_stmt(self, stmt: ast.Stmt, loop_depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.CreateInstance):
            self._class(stmt.class_key, stmt)
            self._bind(stmt.variable, InstRefType(stmt.class_key), stmt)
        elif isinstance(stmt, ast.DeleteInstance):
            self._instance_class(stmt.target, "delete target")
        elif isinstance(stmt, ast.SelectFromInstances):
            self._check_select_extent(stmt)
        elif isinstance(stmt, ast.SelectRelated):
            self._check_select_related(stmt)
        elif isinstance(stmt, ast.Relate):
            self._check_relate(stmt.left, stmt.right, stmt.association, stmt.phrase, stmt)
        elif isinstance(stmt, ast.Unrelate):
            self._check_relate(stmt.left, stmt.right, stmt.association, stmt.phrase, stmt)
        elif isinstance(stmt, ast.Generate):
            self._check_generate(stmt)
        elif isinstance(stmt, ast.If):
            for condition, branch in stmt.branches:
                self._require_boolean(condition, "if condition")
                self.check_block(branch, loop_depth)
            if stmt.orelse is not None:
                self.check_block(stmt.orelse, loop_depth)
        elif isinstance(stmt, ast.While):
            self._require_boolean(stmt.condition, "while condition")
            self.check_block(stmt.body, loop_depth + 1)
        elif isinstance(stmt, ast.ForEach):
            dtype = self.check_expr(stmt.iterable)
            if not isinstance(dtype, InstSetType):
                raise self.fail(
                    f"for-each iterates instance sets, got {dtype}", stmt
                )
            self._bind(stmt.variable, InstRefType(dtype.class_key), stmt)
            self.check_block(stmt.body, loop_depth + 1)
        elif isinstance(stmt, ast.Break) or isinstance(stmt, ast.Continue):
            if loop_depth == 0:
                raise self.fail("break/continue outside any loop", stmt)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        else:  # pragma: no cover - parser produces no other kinds
            raise self.fail(f"unknown statement {type(stmt).__name__}", stmt)

    def _check_assign(self, stmt: ast.Assign) -> None:
        value_type = self.check_expr(stmt.value)
        if value_type is None:
            raise self.fail("cannot assign a void value", stmt)
        target = stmt.target
        if isinstance(target, ast.NameRef):
            self._bind(target.name, value_type, stmt)
            self._result.expr_types[id(target)] = self._result.variable_types[
                target.name
            ]
            return
        if isinstance(target, ast.AttrAccess):
            owner = self._attr_owner(target)
            attribute = self._attribute_of(owner, target.attribute, target)
            if attribute.derived is not None:
                raise self.fail(
                    f"derived attribute {attribute.name!r} is read-only", stmt
                )
            self._require_assignable(attribute.dtype, value_type, stmt)
            self._result.expr_types[id(target)] = attribute.dtype
            return
        raise self.fail("invalid assignment target", stmt)

    def _attr_owner(self, access: ast.AttrAccess) -> ModelClass:
        return self._instance_class(access.target, "attribute access target")

    def _attribute_of(self, owner: ModelClass, name: str, node: ast.Node):
        if not owner.has_attribute(name):
            raise self.fail(
                f"class {owner.key_letters} has no attribute {name!r}", node
            )
        return owner.attribute(name)

    def _check_select_extent(self, stmt: ast.SelectFromInstances) -> None:
        self._class(stmt.class_key, stmt)
        if stmt.where is not None:
            self._check_where(stmt.where, stmt.class_key)
        dtype: DataType = (
            InstSetType(stmt.class_key) if stmt.many else InstRefType(stmt.class_key)
        )
        self._bind(stmt.variable, dtype, stmt)

    def _check_select_related(self, stmt: ast.SelectRelated) -> None:
        start_class = self._instance_class(stmt.start, "navigation start")
        current = start_class.key_letters
        for hop in stmt.hops:
            current = self._check_hop(current, hop)
        if stmt.where is not None:
            self._check_where(stmt.where, current)
        dtype: DataType = InstSetType(current) if stmt.many else InstRefType(current)
        self._bind(stmt.variable, dtype, stmt)

    def _check_hop(self, from_key: str, hop: ast.ChainHop) -> str:
        if not self._component.has_association(hop.association):
            raise self.fail(f"unknown association {hop.association!r}", hop)
        association = self._component.association(hop.association)
        self._class(hop.class_key, hop)
        participants = association.participants()
        if from_key not in participants:
            raise self.fail(
                f"class {from_key} does not participate in {hop.association}", hop
            )
        if hop.class_key not in participants:
            raise self.fail(
                f"class {hop.class_key} does not participate in {hop.association}",
                hop,
            )
        if association.is_reflexive and from_key == hop.class_key and hop.phrase is None:
            raise self.fail(
                f"{hop.association} is reflexive; hop needs a phrase", hop
            )
        if hop.phrase is not None:
            association.end_for(hop.class_key, hop.phrase)  # raises KeyError if bad
        return hop.class_key

    def _check_where(self, condition: ast.Expr, class_key: str) -> None:
        previous = self._selected_type
        self._selected_type = InstRefType(class_key)
        try:
            self._require_boolean(condition, "where clause")
        finally:
            self._selected_type = previous

    def _check_relate(
        self,
        left: ast.Expr,
        right: ast.Expr,
        association_number: str,
        phrase: str | None,
        node: ast.Node,
    ) -> None:
        if not self._component.has_association(association_number):
            raise self.fail(f"unknown association {association_number!r}", node)
        association = self._component.association(association_number)
        left_class = self._instance_class(left, "relate operand")
        right_class = self._instance_class(right, "relate operand")
        if association.is_reflexive:
            expected = association.one.class_key
            if (left_class.key_letters != expected
                    or right_class.key_letters != expected):
                raise self.fail(
                    f"{association_number} relates {expected} to {expected}",
                    node,
                )
            if phrase is None:
                raise self.fail(
                    f"{association_number} is reflexive; relate needs a phrase",
                    node,
                )
        else:
            operands = {left_class.key_letters, right_class.key_letters}
            ends = {association.one.class_key, association.other.class_key}
            if operands != ends:
                raise self.fail(
                    f"{association_number} relates "
                    f"{association.one.class_key} to "
                    f"{association.other.class_key}, got "
                    f"{left_class.key_letters} and {right_class.key_letters}",
                    node,
                )

    def _check_generate(self, stmt: ast.Generate) -> None:
        if stmt.target is None:
            # creation event: class key is mandatory
            if stmt.class_key is None:
                raise self.fail(
                    "creation generate needs an explicit ':Class'", stmt
                )
            receiver = self._class(stmt.class_key, stmt)
        elif isinstance(stmt.target, ast.SelfRef):
            receiver = self._klass
            if stmt.class_key is not None and stmt.class_key != receiver.key_letters:
                raise self.fail(
                    f"generate to self but event scoped to {stmt.class_key!r}", stmt
                )
        else:
            receiver = self._instance_class(stmt.target, "generate target")
            if stmt.class_key is not None and stmt.class_key != receiver.key_letters:
                raise self.fail(
                    f"target is {receiver.key_letters} but event scoped to "
                    f"{stmt.class_key!r}",
                    stmt,
                )
        if not receiver.has_event(stmt.event_label):
            raise self.fail(
                f"class {receiver.key_letters} declares no event "
                f"{stmt.event_label!r}",
                stmt,
            )
        event = receiver.event(stmt.event_label)
        if stmt.target is None and not event.creation:
            raise self.fail(
                f"event {stmt.event_label} is not a creation event; "
                "it needs a 'to' target",
                stmt,
            )
        if stmt.target is not None and event.creation:
            raise self.fail(
                f"creation event {stmt.event_label} cannot target an instance",
                stmt,
            )
        given = {name for name, _ in stmt.arguments}
        expected = set(event.parameter_names)
        if given != expected:
            missing = sorted(expected - given)
            extra = sorted(given - expected)
            details = []
            if missing:
                details.append(f"missing {missing}")
            if extra:
                details.append(f"unexpected {extra}")
            raise self.fail(
                f"generate {stmt.event_label}: {', '.join(details)}", stmt
            )
        for name, value in stmt.arguments:
            value_type = self.check_expr(value)
            self._require_assignable(
                event.parameter(name).dtype, value_type, stmt
            )
        if stmt.delay is not None:
            delay_type = self.check_expr(stmt.delay)
            if delay_type not in _NUMERIC:
                raise self.fail("delay must be numeric", stmt)
        self._result.generate_classes[id(stmt)] = receiver.key_letters

    def _check_return(self, stmt: ast.Return) -> None:
        if self._operation is None:
            if stmt.value is not None:
                raise self.fail(
                    "state activities cannot return a value", stmt
                )
            return
        expects = self._operation.returns
        if expects is None and stmt.value is not None:
            raise self.fail(
                f"operation {self._operation.name} declares no return type", stmt
            )
        if expects is not None:
            if stmt.value is None:
                raise self.fail(
                    f"operation {self._operation.name} must return {expects}", stmt
                )
            value_type = self.check_expr(stmt.value)
            self._require_assignable(expects, value_type, stmt)

    # -- expressions -----------------------------------------------------------

    def check_expr(self, expr: ast.Expr) -> DataType | None:
        dtype = self._infer(expr)
        self._result.expr_types[id(expr)] = dtype
        return dtype

    def _infer(self, expr: ast.Expr) -> DataType | None:
        if isinstance(expr, ast.IntLit):
            return CoreType.INTEGER
        if isinstance(expr, ast.RealLit):
            return CoreType.REAL
        if isinstance(expr, ast.StringLit):
            return CoreType.STRING
        if isinstance(expr, ast.BoolLit):
            return CoreType.BOOLEAN
        if isinstance(expr, ast.EnumLit):
            if expr.enum_name not in self._component.types:
                raise self.fail(f"unknown enum type {expr.enum_name!r}", expr)
            etype = self._component.types.enum(expr.enum_name)
            if expr.enumerator not in etype.enumerators:
                raise self.fail(
                    f"{expr.enum_name} has no enumerator {expr.enumerator!r}", expr
                )
            return etype
        if isinstance(expr, ast.SelfRef):
            return InstRefType(self._klass.key_letters)
        if isinstance(expr, ast.SelectedRef):
            if self._selected_type is None:
                raise self.fail("'selected' is only valid inside a where clause", expr)
            return self._selected_type
        if isinstance(expr, ast.NameRef):
            dtype = self._result.variable_types.get(expr.name)
            if dtype is None:
                raise self.fail(f"variable {expr.name!r} used before assignment", expr)
            return dtype
        if isinstance(expr, ast.ParamRef):
            dtype = self._result.event_parameters.get(expr.name)
            if dtype is None:
                raise self.fail(
                    f"param.{expr.name} is not carried (with one type) by every "
                    "event entering this state",
                    expr,
                )
            return dtype
        if isinstance(expr, ast.AttrAccess):
            owner = self._attr_owner(expr)
            return self._attribute_of(owner, expr.attribute, expr).dtype
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr)
        if isinstance(expr, ast.BridgeCall):
            return self._infer_bridge(expr)
        if isinstance(expr, ast.OperationCall):
            return self._infer_operation(expr)
        raise self.fail(f"unknown expression {type(expr).__name__}", expr)

    def _infer_unary(self, expr: ast.Unary) -> DataType | None:
        operand = self.check_expr(expr.operand)
        if expr.op == "-":
            if operand not in _NUMERIC:
                raise self.fail(f"unary '-' needs a number, got {operand}", expr)
            return operand
        if expr.op == "not":
            if operand is not CoreType.BOOLEAN:
                raise self.fail(f"'not' needs a boolean, got {operand}", expr)
            return CoreType.BOOLEAN
        if expr.op in ("cardinality", "empty", "not_empty"):
            if not isinstance(operand, (InstSetType, InstRefType)):
                raise self.fail(
                    f"{expr.op} applies to instance (sets), got {operand}", expr
                )
            return CoreType.INTEGER if expr.op == "cardinality" else CoreType.BOOLEAN
        raise self.fail(f"unknown unary operator {expr.op!r}", expr)

    def _infer_binary(self, expr: ast.Binary) -> DataType:
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        op = expr.op
        if op in ("and", "or"):
            if left is not CoreType.BOOLEAN or right is not CoreType.BOOLEAN:
                raise self.fail(f"'{op}' needs booleans, got {left}, {right}", expr)
            return CoreType.BOOLEAN
        if op in ("==", "!="):
            if not self._comparable(left, right):
                raise self.fail(f"cannot compare {left} with {right}", expr)
            return CoreType.BOOLEAN
        if op in ("<", "<=", ">", ">="):
            if left in _NUMERIC and right in _NUMERIC:
                return CoreType.BOOLEAN
            if left is CoreType.STRING and right is CoreType.STRING:
                return CoreType.BOOLEAN
            raise self.fail(f"cannot order {left} against {right}", expr)
        if op == "+" and left is CoreType.STRING and right is CoreType.STRING:
            return CoreType.STRING
        if op in ("+", "-", "*", "/", "%"):
            if left not in _NUMERIC or right not in _NUMERIC:
                raise self.fail(
                    f"arithmetic '{op}' needs numbers, got {left}, {right}", expr
                )
            if op == "%":
                if left is not CoreType.INTEGER or right is not CoreType.INTEGER:
                    raise self.fail("'%' needs integers", expr)
                return CoreType.INTEGER
            if CoreType.REAL in (left, right):
                return CoreType.REAL
            if CoreType.TIMESTAMP in (left, right):
                return CoreType.TIMESTAMP
            return CoreType.INTEGER
        raise self.fail(f"unknown binary operator {op!r}", expr)

    def _comparable(self, left: DataType | None, right: DataType | None) -> bool:
        if left is None or right is None:
            return False
        if left == right:
            return True
        if left in _NUMERIC and right in _NUMERIC:
            return True
        if isinstance(left, InstRefType) and isinstance(right, InstRefType):
            return left.class_key == right.class_key
        return False

    def _infer_bridge(self, expr: ast.BridgeCall) -> DataType | None:
        # "EE::op(...)" may also be a class-based operation "KL::op(...)"
        if self._component.has_class(expr.entity):
            self._result.static_operation_calls[id(expr)] = True
            klass = self._component.klass(expr.entity)
            if expr.operation not in {op.name for op in klass.operations}:
                raise self.fail(
                    f"class {expr.entity} has no operation {expr.operation!r}", expr
                )
            operation = klass.operation(expr.operation)
            if operation.instance_based:
                raise self.fail(
                    f"operation {expr.operation} is instance-based; call it on "
                    "an instance",
                    expr,
                )
            self._check_call_args(expr.arguments, operation.parameters, expr)
            return operation.returns
        if not self._component.has_external(expr.entity):
            raise self.fail(
                f"unknown external entity or class {expr.entity!r}", expr
            )
        self._result.static_operation_calls[id(expr)] = False
        entity = self._component.external(expr.entity)
        if not entity.has_bridge(expr.operation):
            raise self.fail(
                f"external entity {expr.entity} has no bridge "
                f"{expr.operation!r}",
                expr,
            )
        bridge = entity.bridge(expr.operation)
        self._check_call_args(expr.arguments, bridge.parameters, expr)
        return bridge.returns

    def _infer_operation(self, expr: ast.OperationCall) -> DataType | None:
        owner = self._instance_class(expr.target, "operation call target")
        if expr.operation not in {op.name for op in owner.operations}:
            raise self.fail(
                f"class {owner.key_letters} has no operation {expr.operation!r}",
                expr,
            )
        operation = owner.operation(expr.operation)
        if not operation.instance_based:
            raise self.fail(
                f"operation {expr.operation} is class-based; call it as "
                f"{owner.key_letters}::{expr.operation}(...)",
                expr,
            )
        self._check_call_args(expr.arguments, operation.parameters, expr)
        return operation.returns

    def _check_call_args(self, arguments, parameters, node: ast.Node) -> None:
        given = {name for name, _ in arguments}
        expected = {p.name for p in parameters}
        if given != expected:
            raise self.fail(
                f"call arguments {sorted(given)} do not match parameters "
                f"{sorted(expected)}",
                node,
            )
        by_name = {p.name: p for p in parameters}
        for name, value in arguments:
            value_type = self.check_expr(value)
            self._require_assignable(by_name[name].dtype, value_type, node)

    # -- type rules ------------------------------------------------------------

    def _require_boolean(self, expr: ast.Expr, what: str) -> None:
        dtype = self.check_expr(expr)
        if dtype is not CoreType.BOOLEAN:
            raise self.fail(f"{what} must be boolean, got {dtype}", expr)

    def _require_assignable(
        self, target: DataType, value: DataType | None, node: ast.Node
    ) -> None:
        if value is None:
            raise self.fail("void value in value position", node)
        if target == value:
            return
        if target is CoreType.REAL and value is CoreType.INTEGER:
            return
        if target is CoreType.TIMESTAMP and value is CoreType.INTEGER:
            return
        if (
            isinstance(target, InstRefType)
            and isinstance(value, InstRefType)
            and target.class_key == value.class_key
        ):
            return
        raise self.fail(f"cannot assign {value} to {target}", node)
