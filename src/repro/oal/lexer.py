"""Hand-written lexer for OAL activity text."""

from __future__ import annotations

from .errors import OALSyntaxError
from .tokens import KEYWORDS, MULTI_OPS, SINGLE_OPS, Token, TokenKind


def tokenize(text: str) -> list[Token]:
    """Turn activity text into a token list ending with one EOF token.

    Comments run from ``//`` to end of line.  Strings use double quotes
    with ``\\"`` and ``\\\\`` escapes.  Malformed input raises
    :class:`~repro.oal.errors.OALSyntaxError` with line/column.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message: str) -> OALSyntaxError:
        return OALSyntaxError(message, line, column)

    while index < length:
        char = text[index]

        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if text.startswith("//", index):
            newline = text.find("\n", index)
            if newline == -1:
                break
            column += newline - index
            index = newline
            continue

        start_line, start_column = line, column

        if char.isdigit():
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # a trailing '.' followed by non-digit is attribute access
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            seen_exponent = False
            if end < length and text[end] in "eE":
                probe = end + 1
                if probe < length and text[probe] in "+-":
                    probe += 1
                if probe < length and text[probe].isdigit():
                    seen_exponent = True
                    end = probe
                    while end < length and text[end].isdigit():
                        end += 1
            lexeme = text[index:end]
            kind = (TokenKind.REAL if seen_dot or seen_exponent
                    else TokenKind.INTEGER)
            tokens.append(Token(kind, lexeme, start_line, start_column))
            column += end - index
            index = end
            continue

        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            lexeme = text[index:end]
            kind = TokenKind.KEYWORD if lexeme in KEYWORDS else TokenKind.NAME
            tokens.append(Token(kind, lexeme, start_line, start_column))
            column += end - index
            index = end
            continue

        if char in ('"', "'"):
            quote = char
            end = index + 1
            chunks: list[str] = []
            while True:
                if end >= length or text[end] == "\n":
                    raise error("unterminated string literal")
                if text[end] == "\\":
                    if end + 1 >= length:
                        raise error("unterminated escape in string literal")
                    escape = text[end + 1]
                    if escape == "n":
                        chunks.append("\n")
                    elif escape == "t":
                        chunks.append("\t")
                    elif escape in ('"', "'", "\\"):
                        chunks.append(escape)
                    else:
                        raise error(f"unknown string escape \\{escape}")
                    end += 2
                    continue
                if text[end] == quote:
                    break
                chunks.append(text[end])
                end += 1
            tokens.append(Token(TokenKind.STRING, "".join(chunks), start_line, start_column))
            column += end + 1 - index
            index = end + 1
            continue

        matched_multi = False
        for op in MULTI_OPS:
            if text.startswith(op, index):
                tokens.append(Token(TokenKind.OP, op, start_line, start_column))
                index += len(op)
                column += len(op)
                matched_multi = True
                break
        if matched_multi:
            continue

        if char == "!":
            raise error("'!' is only valid as part of '!='")
        if char in SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, char, start_line, start_column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
