"""OAL error types."""

from __future__ import annotations


class OALError(Exception):
    """Base class for action-language errors."""


class OALSyntaxError(OALError):
    """Lexical or syntactic error, with source position."""

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class AnalysisError(OALError):
    """Static-semantic error: unknown name, bad type, wrong arity, ..."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class OALRuntimeError(OALError):
    """Dynamic-semantic error during interpretation."""
