"""Token definitions for the Object Action Language (OAL).

The language implemented here is the executable core the paper's profile
relies on (the Action Semantics): assignment, instance creation/deletion,
selection (extent and relationship navigation), relate/unrelate, signal
generation (immediate and delayed), control flow, bridge and operation
calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    NAME = "name"
    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    OP = "op"           # + - * / % == != < <= > >= = -> :: : . , ; ( ) [ ]
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset({
    "create", "object", "instance", "instances", "of", "delete",
    "select", "any", "many", "one", "from", "related", "by", "where",
    "relate", "to", "unrelate", "across", "generate", "delay",
    "if", "elif", "else", "end", "while", "for", "each", "in",
    "break", "continue", "return",
    "and", "or", "not", "true", "false",
    "self", "selected", "param", "rcvd_evt",
    "cardinality", "empty", "not_empty",
})

#: Multi-character operators, longest first so the lexer is greedy.
MULTI_OPS = ("->", "::", "==", "!=", "<=", ">=")
SINGLE_OPS = "+-*/%<>=.,;:()[]"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of activity>"
        return repr(self.text)
