"""Abstract syntax for OAL.

Every node carries ``line``/``column`` for diagnostics.  Statements and
expressions are plain frozen dataclasses; the analyzer decorates them via
side tables (it never mutates the tree), and the model compiler's lowering
pass (:mod:`repro.mda.lower`) maps them 1:1 onto target IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class RealLit(Expr):
    value: float


@dataclass(frozen=True)
class StringLit(Expr):
    value: str


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class EnumLit(Expr):
    """``DoorState::OPEN``"""

    enum_name: str
    enumerator: str


@dataclass(frozen=True)
class SelfRef(Expr):
    """``self``"""


@dataclass(frozen=True)
class SelectedRef(Expr):
    """``selected`` — the candidate instance inside a where clause."""


@dataclass(frozen=True)
class NameRef(Expr):
    """A local variable reference."""

    name: str


@dataclass(frozen=True)
class ParamRef(Expr):
    """``param.name`` — a data item of the event being handled."""

    name: str


@dataclass(frozen=True)
class AttrAccess(Expr):
    """``<expr>.attr`` where ``<expr>`` is an instance reference."""

    target: Expr
    attribute: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str          # '-', 'not', 'cardinality', 'empty', 'not_empty'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str          # + - * / % == != < <= > >= and or
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BridgeCall(Expr):
    """``EE::operation(name: expr, ...)`` — usable as expression or statement."""

    entity: str
    operation: str
    arguments: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True)
class OperationCall(Expr):
    """``target.operation(name: expr, ...)`` — synchronous class operation."""

    target: Expr
    operation: str
    arguments: tuple[tuple[str, Expr], ...]


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class Block(Node):
    statements: tuple[Stmt, ...]


@dataclass(frozen=True)
class Assign(Stmt):
    """``x = e;`` / ``self.a = e;`` / ``inst.a = e;``"""

    target: Expr      # NameRef or AttrAccess
    value: Expr


@dataclass(frozen=True)
class CreateInstance(Stmt):
    """``create object instance x of KL;``"""

    variable: str
    class_key: str


@dataclass(frozen=True)
class DeleteInstance(Stmt):
    """``delete object instance x;``"""

    target: Expr


@dataclass(frozen=True)
class SelectFromInstances(Stmt):
    """``select any|many x from instances of KL [where (...)];``"""

    variable: str
    many: bool
    class_key: str
    where: Expr | None = None


@dataclass(frozen=True)
class ChainHop(Node):
    """One ``->KL[Rn]`` / ``->KL[Rn.'phrase']`` navigation step."""

    class_key: str
    association: str
    phrase: str | None = None


@dataclass(frozen=True)
class SelectRelated(Stmt):
    """``select one|many x related by start->KL[Rn]... [where (...)];``"""

    variable: str
    many: bool
    start: Expr
    hops: tuple[ChainHop, ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Relate(Stmt):
    """``relate a to b across Rn['.phrase'];``"""

    left: Expr
    right: Expr
    association: str
    phrase: str | None = None


@dataclass(frozen=True)
class Unrelate(Stmt):
    """``unrelate a from b across Rn['.phrase'];``"""

    left: Expr
    right: Expr
    association: str
    phrase: str | None = None


@dataclass(frozen=True)
class Generate(Stmt):
    """``generate EV:KL (a: e, ...) to target [delay e];``

    ``target`` is an expression or ``SelfRef``.  ``class_key`` may be
    ``None`` when the label alone is unambiguous for the target.
    Creation events name the class and take ``target=None``.
    """

    event_label: str
    class_key: str | None
    arguments: tuple[tuple[str, Expr], ...]
    target: Expr | None
    delay: Expr | None = None


@dataclass(frozen=True)
class If(Stmt):
    """``if (...) ... [elif (...) ...] [else ...] end if;``

    ``branches`` pairs each condition with its block; ``orelse`` is the
    else block or ``None``.
    """

    branches: tuple[tuple[Expr, Block], ...]
    orelse: Block | None = None


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: Block


@dataclass(frozen=True)
class ForEach(Stmt):
    variable: str
    iterable: Expr
    body: Block


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """A bridge or operation call in statement position."""

    expr: Expr


def walk_statements(block: Block):
    """Yield every statement in *block*, depth-first, including nested ones."""
    for stmt in block.statements:
        yield stmt
        if isinstance(stmt, If):
            for _, branch in stmt.branches:
                yield from walk_statements(branch)
            if stmt.orelse is not None:
                yield from walk_statements(stmt.orelse)
        elif isinstance(stmt, (While, ForEach)):
            yield from walk_statements(stmt.body)


def walk_expressions(block: Block):
    """Yield every expression reachable from *block*, depth-first."""
    for stmt in walk_statements(block):
        yield from _stmt_exprs(stmt)


def _stmt_exprs(stmt: Stmt):
    if isinstance(stmt, Assign):
        yield from _expr_tree(stmt.target)
        yield from _expr_tree(stmt.value)
    elif isinstance(stmt, DeleteInstance):
        yield from _expr_tree(stmt.target)
    elif isinstance(stmt, SelectFromInstances) and stmt.where is not None:
        yield from _expr_tree(stmt.where)
    elif isinstance(stmt, SelectRelated):
        yield from _expr_tree(stmt.start)
        if stmt.where is not None:
            yield from _expr_tree(stmt.where)
    elif isinstance(stmt, (Relate, Unrelate)):
        yield from _expr_tree(stmt.left)
        yield from _expr_tree(stmt.right)
    elif isinstance(stmt, Generate):
        for _, value in stmt.arguments:
            yield from _expr_tree(value)
        if stmt.target is not None:
            yield from _expr_tree(stmt.target)
        if stmt.delay is not None:
            yield from _expr_tree(stmt.delay)
    elif isinstance(stmt, If):
        for condition, _ in stmt.branches:
            yield from _expr_tree(condition)
    elif isinstance(stmt, While):
        yield from _expr_tree(stmt.condition)
    elif isinstance(stmt, ForEach):
        yield from _expr_tree(stmt.iterable)
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield from _expr_tree(stmt.value)
    elif isinstance(stmt, ExprStmt):
        yield from _expr_tree(stmt.expr)


def _expr_tree(expr: Expr):
    yield expr
    if isinstance(expr, AttrAccess):
        yield from _expr_tree(expr.target)
    elif isinstance(expr, Unary):
        yield from _expr_tree(expr.operand)
    elif isinstance(expr, Binary):
        yield from _expr_tree(expr.left)
        yield from _expr_tree(expr.right)
    elif isinstance(expr, (BridgeCall, OperationCall)):
        if isinstance(expr, OperationCall):
            yield from _expr_tree(expr.target)
        for _, value in expr.arguments:
            yield from _expr_tree(value)
