"""Recursive-descent parser for OAL.

Entry point: :func:`parse_activity` -> :class:`repro.oal.ast.Block`.

The grammar is the executable core described in the package docstring.
Statement forms are disambiguated by one or two tokens of lookahead;
expressions use classic precedence climbing (or < and < not < comparison
< additive < multiplicative < unary < postfix).
"""

from __future__ import annotations

from . import ast
from .errors import OALSyntaxError
from .lexer import tokenize
from .tokens import Token, TokenKind

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


def parse_activity(text: str) -> ast.Block:
    """Parse activity text into a :class:`Block` (raises OALSyntaxError)."""
    return _Parser(tokenize(text)).parse_block_until(("<eof>",))


def parse_expression(text: str) -> ast.Expr:
    """Parse a single expression (used for derived attributes and tests)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def error(self, message: str, token: Token | None = None) -> OALSyntaxError:
        token = token or self.current
        return OALSyntaxError(f"{message}, found {token}", token.line, token.column)

    def at(self, text: str) -> bool:
        token = self.current
        return (
            token.kind in (TokenKind.OP, TokenKind.KEYWORD) and token.text == text
        )

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_name(self, what: str = "a name") -> Token:
        if self.current.kind is not TokenKind.NAME:
            raise self.error(f"expected {what}")
        return self.advance()

    def expect_eof(self) -> None:
        if self.current.kind is not TokenKind.EOF:
            raise self.error("expected end of input")

    # -- statements ---------------------------------------------------------

    def parse_block_until(self, stops: tuple[str, ...]) -> ast.Block:
        """Parse statements until one of *stops* ('<eof>' meaning EOF)."""
        statements: list[ast.Stmt] = []
        while True:
            token = self.current
            if token.kind is TokenKind.EOF:
                if "<eof>" in stops:
                    return ast.Block(tuple(statements))
                raise self.error("unexpected end of activity")
            if token.kind is TokenKind.KEYWORD and token.text in stops:
                return ast.Block(tuple(statements))
            statements.append(self.statement())

    def statement(self) -> ast.Stmt:
        token = self.current
        if token.kind is TokenKind.KEYWORD:
            handler = {
                "create": self._create_stmt,
                "delete": self._delete_stmt,
                "select": self._select_stmt,
                "relate": self._relate_stmt,
                "unrelate": self._unrelate_stmt,
                "generate": self._generate_stmt,
                "if": self._if_stmt,
                "while": self._while_stmt,
                "for": self._for_stmt,
                "break": self._break_stmt,
                "continue": self._continue_stmt,
                "return": self._return_stmt,
                "self": self._assign_stmt,
            }.get(token.text)
            if handler is None:
                raise self.error("unexpected keyword at statement start")
            return handler()
        if token.kind is TokenKind.NAME:
            nxt = self.peek()
            if nxt.kind is TokenKind.OP and nxt.text == "::":
                return self._call_stmt()
            if (
                nxt.kind is TokenKind.OP
                and nxt.text == "."
                and self.peek(2).kind is TokenKind.NAME
                and self.peek(3).kind is TokenKind.OP
                and self.peek(3).text == "("
            ):
                return self._call_stmt()
            return self._assign_stmt()
        raise self.error("expected a statement")

    def _assign_stmt(self) -> ast.Assign:
        token = self.current
        target = self._assign_target()
        self.expect("=")
        value = self.expression()
        self.expect(";")
        return ast.Assign(target, value, line=token.line, column=token.column)

    def _assign_target(self) -> ast.Expr:
        token = self.current
        if self.accept("self"):
            base: ast.Expr = ast.SelfRef(line=token.line, column=token.column)
            self.expect(".")
            attr = self.expect_name("an attribute name")
            return ast.AttrAccess(base, attr.text, line=token.line, column=token.column)
        name = self.expect_name("an assignment target")
        base = ast.NameRef(name.text, line=name.line, column=name.column)
        if self.accept("."):
            attr = self.expect_name("an attribute name")
            return ast.AttrAccess(base, attr.text, line=name.line, column=name.column)
        return base

    def _call_stmt(self) -> ast.ExprStmt:
        token = self.current
        expr = self.expression()
        if not isinstance(expr, (ast.BridgeCall, ast.OperationCall)):
            raise self.error("only bridge/operation calls may stand alone", token)
        self.expect(";")
        return ast.ExprStmt(expr, line=token.line, column=token.column)

    def _create_stmt(self) -> ast.CreateInstance:
        token = self.expect("create")
        self.expect("object")
        self.expect("instance")
        variable = self.expect_name("a variable name")
        self.expect("of")
        class_key = self.expect_name("class key letters")
        self.expect(";")
        return ast.CreateInstance(
            variable.text, class_key.text, line=token.line, column=token.column
        )

    def _delete_stmt(self) -> ast.DeleteInstance:
        token = self.expect("delete")
        self.expect("object")
        self.expect("instance")
        target = self.expression()
        self.expect(";")
        return ast.DeleteInstance(target, line=token.line, column=token.column)

    def _select_stmt(self) -> ast.Stmt:
        token = self.expect("select")
        if self.accept("any"):
            many = False
            related = False
        elif self.accept("many"):
            many = True
            related = None  # decided by the next clause
        elif self.accept("one"):
            many = False
            related = True
        else:
            raise self.error("expected 'any', 'many' or 'one' after 'select'")
        variable = self.expect_name("a variable name")

        if self.at("from"):
            if related is True:
                raise self.error("'select one' requires 'related by'")
            self.expect("from")
            self.expect("instances")
            self.expect("of")
            class_key = self.expect_name("class key letters")
            where = self._optional_where()
            self.expect(";")
            return ast.SelectFromInstances(
                variable.text, many, class_key.text, where,
                line=token.line, column=token.column,
            )

        self.expect("related")
        self.expect("by")
        start = self._chain_start()
        hops = [self._chain_hop()]
        while self.at("->"):
            hops.append(self._chain_hop())
        where = self._optional_where()
        self.expect(";")
        return ast.SelectRelated(
            variable.text, bool(many), start, tuple(hops), where,
            line=token.line, column=token.column,
        )

    def _chain_start(self) -> ast.Expr:
        token = self.current
        if self.accept("self"):
            return ast.SelfRef(line=token.line, column=token.column)
        if self.accept("selected"):
            return ast.SelectedRef(line=token.line, column=token.column)
        name = self.expect_name("an instance variable")
        return ast.NameRef(name.text, line=name.line, column=name.column)

    def _chain_hop(self) -> ast.ChainHop:
        arrow = self.expect("->")
        class_key = self.expect_name("class key letters")
        self.expect("[")
        assoc = self.expect_name("an association number")
        phrase = None
        if self.accept("."):
            if self.current.kind is not TokenKind.STRING:
                raise self.error("expected a quoted phrase after '.'")
            phrase = self.advance().text
        self.expect("]")
        return ast.ChainHop(
            class_key.text, assoc.text, phrase, line=arrow.line, column=arrow.column
        )

    def _optional_where(self) -> ast.Expr | None:
        if not self.accept("where"):
            return None
        self.expect("(")
        condition = self.expression()
        self.expect(")")
        return condition

    def _relate_stmt(self) -> ast.Relate:
        token = self.expect("relate")
        left = self._instance_ref()
        self.expect("to")
        right = self._instance_ref()
        self.expect("across")
        assoc, phrase = self._assoc_ref()
        self.expect(";")
        return ast.Relate(
            left, right, assoc, phrase, line=token.line, column=token.column
        )

    def _unrelate_stmt(self) -> ast.Unrelate:
        token = self.expect("unrelate")
        left = self._instance_ref()
        self.expect("from")
        right = self._instance_ref()
        self.expect("across")
        assoc, phrase = self._assoc_ref()
        self.expect(";")
        return ast.Unrelate(
            left, right, assoc, phrase, line=token.line, column=token.column
        )

    def _instance_ref(self) -> ast.Expr:
        token = self.current
        if self.accept("self"):
            return ast.SelfRef(line=token.line, column=token.column)
        name = self.expect_name("an instance variable")
        return ast.NameRef(name.text, line=name.line, column=name.column)

    def _assoc_ref(self) -> tuple[str, str | None]:
        assoc = self.expect_name("an association number")
        phrase = None
        if self.accept("."):
            if self.current.kind is not TokenKind.STRING:
                raise self.error("expected a quoted phrase after '.'")
            phrase = self.advance().text
        return assoc.text, phrase

    def _generate_stmt(self) -> ast.Generate:
        token = self.expect("generate")
        label = self.expect_name("an event label")
        class_key = None
        if self.accept(":"):
            class_key = self.expect_name("class key letters").text
        arguments: tuple[tuple[str, ast.Expr], ...] = ()
        if self.at("("):
            arguments = self._argument_list()
        target: ast.Expr | None = None
        if self.accept("to"):
            tok = self.current
            if self.accept("self"):
                target = ast.SelfRef(line=tok.line, column=tok.column)
            else:
                target = self.expression()
        delay = None
        if self.accept("delay"):
            delay = self.expression()
        self.expect(";")
        return ast.Generate(
            label.text, class_key, arguments, target, delay,
            line=token.line, column=token.column,
        )

    def _argument_list(self) -> tuple[tuple[str, ast.Expr], ...]:
        self.expect("(")
        arguments: list[tuple[str, ast.Expr]] = []
        if not self.at(")"):
            while True:
                name = self.expect_name("an argument name")
                self.expect(":")
                arguments.append((name.text, self.expression()))
                if not self.accept(","):
                    break
        self.expect(")")
        return tuple(arguments)

    def _if_stmt(self) -> ast.If:
        token = self.expect("if")
        branches: list[tuple[ast.Expr, ast.Block]] = []
        self.expect("(")
        condition = self.expression()
        self.expect(")")
        block = self.parse_block_until(("elif", "else", "end"))
        branches.append((condition, block))
        orelse = None
        while self.at("elif"):
            self.expect("elif")
            self.expect("(")
            condition = self.expression()
            self.expect(")")
            block = self.parse_block_until(("elif", "else", "end"))
            branches.append((condition, block))
        if self.accept("else"):
            orelse = self.parse_block_until(("end",))
        self.expect("end")
        self.expect("if")
        self.expect(";")
        return ast.If(tuple(branches), orelse, line=token.line, column=token.column)

    def _while_stmt(self) -> ast.While:
        token = self.expect("while")
        self.expect("(")
        condition = self.expression()
        self.expect(")")
        body = self.parse_block_until(("end",))
        self.expect("end")
        self.expect("while")
        self.expect(";")
        return ast.While(condition, body, line=token.line, column=token.column)

    def _for_stmt(self) -> ast.ForEach:
        token = self.expect("for")
        self.expect("each")
        variable = self.expect_name("a loop variable")
        self.expect("in")
        iterable = self.expression()
        body = self.parse_block_until(("end",))
        self.expect("end")
        self.expect("for")
        self.expect(";")
        return ast.ForEach(
            variable.text, iterable, body, line=token.line, column=token.column
        )

    def _break_stmt(self) -> ast.Break:
        token = self.expect("break")
        self.expect(";")
        return ast.Break(line=token.line, column=token.column)

    def _continue_stmt(self) -> ast.Continue:
        token = self.expect("continue")
        self.expect(";")
        return ast.Continue(line=token.line, column=token.column)

    def _return_stmt(self) -> ast.Return:
        token = self.expect("return")
        value = None
        if not self.at(";"):
            value = self.expression()
        self.expect(";")
        return ast.Return(value, line=token.line, column=token.column)

    # -- expressions ----------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.at("or"):
            token = self.advance()
            right = self._and_expr()
            left = ast.Binary("or", left, right, line=token.line, column=token.column)
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self.at("and"):
            token = self.advance()
            right = self._not_expr()
            left = ast.Binary("and", left, right, line=token.line, column=token.column)
        return left

    def _not_expr(self) -> ast.Expr:
        if self.at("not"):
            token = self.advance()
            operand = self._not_expr()
            return ast.Unary("not", operand, line=token.line, column=token.column)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        if self.current.kind is TokenKind.OP and self.current.text in _COMPARISONS:
            token = self.advance()
            right = self._additive()
            return ast.Binary(
                token.text, left, right, line=token.line, column=token.column
            )
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self.current.kind is TokenKind.OP and self.current.text in ("+", "-"):
            token = self.advance()
            right = self._multiplicative()
            left = ast.Binary(
                token.text, left, right, line=token.line, column=token.column
            )
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self.current.kind is TokenKind.OP and self.current.text in ("*", "/", "%"):
            token = self.advance()
            right = self._unary()
            left = ast.Binary(
                token.text, left, right, line=token.line, column=token.column
            )
        return left

    def _unary(self) -> ast.Expr:
        token = self.current
        if self.at("-"):
            self.advance()
            operand = self._unary()
            return ast.Unary("-", operand, line=token.line, column=token.column)
        for keyword in ("cardinality", "empty", "not_empty"):
            if self.at(keyword):
                self.advance()
                operand = self._unary()
                return ast.Unary(
                    keyword, operand, line=token.line, column=token.column
                )
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self.at("."):
                dot = self.advance()
                name = self.expect_name("an attribute or operation name")
                if self.at("("):
                    arguments = self._argument_list()
                    expr = ast.OperationCall(
                        expr, name.text, arguments, line=dot.line, column=dot.column
                    )
                else:
                    expr = ast.AttrAccess(
                        expr, name.text, line=dot.line, column=dot.column
                    )
                continue
            break
        return expr

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INTEGER:
            self.advance()
            return ast.IntLit(int(token.text), line=token.line, column=token.column)
        if token.kind is TokenKind.REAL:
            self.advance()
            return ast.RealLit(float(token.text), line=token.line, column=token.column)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLit(token.text, line=token.line, column=token.column)
        if self.accept("true"):
            return ast.BoolLit(True, line=token.line, column=token.column)
        if self.accept("false"):
            return ast.BoolLit(False, line=token.line, column=token.column)
        if self.accept("self"):
            return ast.SelfRef(line=token.line, column=token.column)
        if self.accept("selected"):
            return ast.SelectedRef(line=token.line, column=token.column)
        if self.accept("param"):
            self.expect(".")
            name = self.expect_name("an event parameter name")
            return ast.ParamRef(name.text, line=token.line, column=token.column)
        if self.accept("rcvd_evt"):
            self.expect(".")
            name = self.expect_name("an event parameter name")
            return ast.ParamRef(name.text, line=token.line, column=token.column)
        if self.accept("("):
            expr = self.expression()
            self.expect(")")
            return expr
        if token.kind is TokenKind.NAME:
            name = self.advance()
            if self.at("::"):
                self.advance()
                member = self.expect_name("an enumerator or bridge name")
                if self.at("("):
                    arguments = self._argument_list()
                    return ast.BridgeCall(
                        name.text, member.text, arguments,
                        line=name.line, column=name.column,
                    )
                return ast.EnumLit(
                    name.text, member.text, line=name.line, column=name.column
                )
            return ast.NameRef(name.text, line=name.line, column=name.column)
        raise self.error("expected an expression")
