"""OAL pretty-printer — AST back to canonical action text.

The inverse of :func:`repro.oal.parser.parse_activity`: useful for
formatting model activities, for emitting OAL from programmatic model
transformations, and as the anchor of the parse/print round-trip
property (``parse(print(tree)) == tree`` up to source positions).
"""

from __future__ import annotations

from . import ast

_PRECEDENCE = {
    "or": 1, "and": 2,
    "==": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}
_UNARY_PRECEDENCE = 3      # 'not' sits between 'and' and comparisons


def print_activity(block: ast.Block, indent: int = 0) -> str:
    """Render a block as canonical OAL text."""
    lines: list[str] = []
    _print_block(block, lines, indent)
    return "\n".join(lines) + ("\n" if lines else "")


def print_expression(expr: ast.Expr) -> str:
    """Render one expression."""
    return _expr(expr, 0)


def _pad(indent: int) -> str:
    return "    " * indent


def _print_block(block: ast.Block, lines: list[str], indent: int) -> None:
    for stmt in block.statements:
        _print_stmt(stmt, lines, indent)


def _print_stmt(stmt: ast.Stmt, lines: list[str], indent: int) -> None:
    pad = _pad(indent)
    if isinstance(stmt, ast.Assign):
        lines.append(f"{pad}{_expr(stmt.target, 0)} = {_expr(stmt.value, 0)};")
    elif isinstance(stmt, ast.CreateInstance):
        lines.append(f"{pad}create object instance {stmt.variable} "
                     f"of {stmt.class_key};")
    elif isinstance(stmt, ast.DeleteInstance):
        lines.append(f"{pad}delete object instance {_expr(stmt.target, 0)};")
    elif isinstance(stmt, ast.SelectFromInstances):
        kind = "many" if stmt.many else "any"
        where = (f" where ({_expr(stmt.where, 0)})"
                 if stmt.where is not None else "")
        lines.append(f"{pad}select {kind} {stmt.variable} from instances "
                     f"of {stmt.class_key}{where};")
    elif isinstance(stmt, ast.SelectRelated):
        kind = "many" if stmt.many else "one"
        chain = _expr(stmt.start, 0) + "".join(
            _hop(hop) for hop in stmt.hops)
        where = (f" where ({_expr(stmt.where, 0)})"
                 if stmt.where is not None else "")
        lines.append(f"{pad}select {kind} {stmt.variable} related by "
                     f"{chain}{where};")
    elif isinstance(stmt, ast.Relate):
        phrase = f".'{stmt.phrase}'" if stmt.phrase else ""
        lines.append(f"{pad}relate {_expr(stmt.left, 0)} to "
                     f"{_expr(stmt.right, 0)} across "
                     f"{stmt.association}{phrase};")
    elif isinstance(stmt, ast.Unrelate):
        phrase = f".'{stmt.phrase}'" if stmt.phrase else ""
        lines.append(f"{pad}unrelate {_expr(stmt.left, 0)} from "
                     f"{_expr(stmt.right, 0)} across "
                     f"{stmt.association}{phrase};")
    elif isinstance(stmt, ast.Generate):
        scope = f":{stmt.class_key}" if stmt.class_key else ""
        arguments = ""
        if stmt.arguments or stmt.target is None:
            inner = ", ".join(f"{name}: {_expr(value, 0)}"
                              for name, value in stmt.arguments)
            arguments = f"({inner})"
        target = (f" to {_expr(stmt.target, 0)}"
                  if stmt.target is not None else "")
        delay = (f" delay {_expr(stmt.delay, 0)}"
                 if stmt.delay is not None else "")
        lines.append(f"{pad}generate {stmt.event_label}{scope}"
                     f"{arguments}{target}{delay};")
    elif isinstance(stmt, ast.If):
        keyword = "if"
        for condition, body in stmt.branches:
            lines.append(f"{pad}{keyword} ({_expr(condition, 0)})")
            _print_block(body, lines, indent + 1)
            keyword = "elif"
        if stmt.orelse is not None:
            lines.append(f"{pad}else")
            _print_block(stmt.orelse, lines, indent + 1)
        lines.append(f"{pad}end if;")
    elif isinstance(stmt, ast.While):
        lines.append(f"{pad}while ({_expr(stmt.condition, 0)})")
        _print_block(stmt.body, lines, indent + 1)
        lines.append(f"{pad}end while;")
    elif isinstance(stmt, ast.ForEach):
        lines.append(f"{pad}for each {stmt.variable} in "
                     f"{_expr(stmt.iterable, 0)}")
        _print_block(stmt.body, lines, indent + 1)
        lines.append(f"{pad}end for;")
    elif isinstance(stmt, ast.Break):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, ast.Continue):
        lines.append(f"{pad}continue;")
    elif isinstance(stmt, ast.Return):
        value = f" {_expr(stmt.value, 0)}" if stmt.value is not None else ""
        lines.append(f"{pad}return{value};")
    elif isinstance(stmt, ast.ExprStmt):
        lines.append(f"{pad}{_expr(stmt.expr, 0)};")
    else:  # pragma: no cover - parser produces no other kinds
        raise TypeError(f"cannot print {type(stmt).__name__}")


def _hop(hop: ast.ChainHop) -> str:
    phrase = f".'{hop.phrase}'" if hop.phrase else ""
    return f"->{hop.class_key}[{hop.association}{phrase}]"


def _escape(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\t", "\\t"))


def _expr(expr: ast.Expr, parent_precedence: int) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.RealLit):
        text = repr(expr.value)
        return text if "." in text or "e" in text else text + ".0"
    if isinstance(expr, ast.StringLit):
        return f'"{_escape(expr.value)}"'
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.EnumLit):
        return f"{expr.enum_name}::{expr.enumerator}"
    if isinstance(expr, ast.SelfRef):
        return "self"
    if isinstance(expr, ast.SelectedRef):
        return "selected"
    if isinstance(expr, ast.NameRef):
        return expr.name
    if isinstance(expr, ast.ParamRef):
        return f"param.{expr.name}"
    if isinstance(expr, ast.AttrAccess):
        return f"{_expr(expr.target, 7)}.{expr.attribute}"
    if isinstance(expr, ast.Unary):
        if expr.op == "not":
            # 'not' sits between and/or and the comparisons
            text = f"not {_expr(expr.operand, _UNARY_PRECEDENCE)}"
            return (f"({text})" if parent_precedence > _UNARY_PRECEDENCE
                    else text)
        # '-', cardinality, empty, not_empty bind just below postfix
        operand = _expr(expr.operand, 7)
        text = f"-{operand}" if expr.op == "-" else f"{expr.op} {operand}"
        return f"({text})" if parent_precedence >= 7 else text
    if isinstance(expr, ast.Binary):
        precedence = _PRECEDENCE[expr.op]
        # comparisons are non-associative (the grammar allows exactly
        # one), so a comparison operand of a comparison needs parens on
        # BOTH sides; the left-associative operators only on the right
        left_floor = precedence + 1 if precedence == 4 else precedence
        left = _expr(expr.left, left_floor)
        right = _expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if parent_precedence > precedence:
            return f"({text})"
        return text
    if isinstance(expr, ast.BridgeCall):
        arguments = ", ".join(f"{name}: {_expr(value, 0)}"
                              for name, value in expr.arguments)
        return f"{expr.entity}::{expr.operation}({arguments})"
    if isinstance(expr, ast.OperationCall):
        arguments = ", ".join(f"{name}: {_expr(value, 0)}"
                              for name, value in expr.arguments)
        return f"{_expr(expr.target, 7)}.{expr.operation}({arguments})"
    raise TypeError(f"cannot print {type(expr).__name__}")
