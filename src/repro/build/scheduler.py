"""Batch compilation service — the catalog × mark-variant matrix, fanned out.

:func:`catalog_matrix` enumerates the standard build matrix (every
catalog model × the all-software baseline, each single-class hardware
retarget, and the all-hardware build); :func:`run_batch` compiles the
matrix on a process pool sharing one content-addressed cache directory.

Guarantees the service makes:

* **deterministic ordering** — results come back in matrix order no
  matter which worker finished first, so two runs of the same matrix
  produce comparable reports line-for-line;
* **crash containment** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) breaks only its pool generation: the scheduler rebuilds the
  pool, retries the jobs that were in flight, and reports the job that
  keeps killing workers as failed instead of taking the batch down;
* **shared-cache safety** — workers share the cache directory through
  the store's atomic writes; identical keys always carry identical
  bytes, so racing writers are harmless.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.marks.partition import marks_for_partition
from repro.models.catalog import CATALOG, build_model
from repro.obs.metrics import active_registry

from .fingerprint import artifacts_digest
from .incremental import IncrementalCompiler
from .store import ArtifactStore, StoreStats

#: Test hook: a worker whose job matches "<model>:<variant>" hard-exits,
#: simulating a native crash for the containment tests.
_CRASH_ENV = "REPRO_BUILD_CRASH"

@dataclass(frozen=True)
class BatchJob:
    """One cell of the build matrix: a model under one partition."""

    model: str
    variant: str
    hardware: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        return f"{self.model}:{self.variant}"


@dataclass
class JobResult:
    """What one cell produced (or why it did not)."""

    job: BatchJob
    ok: bool
    error: str = ""
    artifact_count: int = 0
    total_lines: int = 0
    digest: str = ""
    classes_total: int = 0
    classes_compiled: int = 0
    classes_reused: int = 0
    elapsed_s: float = 0.0
    store: StoreStats = field(default_factory=StoreStats)

    @property
    def fully_cached(self) -> bool:
        return self.ok and self.classes_compiled == 0


@dataclass
class BatchReport:
    """The whole batch, in matrix order, plus aggregate counters."""

    results: list[JobResult]
    jobs: int
    elapsed_s: float
    worker_failures: int = 0

    @property
    def failed(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def store(self) -> StoreStats:
        total = StoreStats()
        for result in self.results:
            total.merge(result.store)
        return total

    @property
    def hit_rate(self) -> float:
        return self.store.hit_rate

    @property
    def classes_compiled(self) -> int:
        return sum(r.classes_compiled for r in self.results)

    @property
    def classes_reused(self) -> int:
        return sum(r.classes_reused for r in self.results)


def catalog_matrix(models: tuple[str, ...] | None = None) -> list[BatchJob]:
    """The standard batch matrix over the model catalog.

    Per model: the all-software baseline, one single-class hardware
    retarget per class (the paper's "move one mark" operation), and the
    all-hardware build.  Unknown model names raise ``KeyError`` naming
    the catalog.
    """
    known = tuple(entry.name for entry in CATALOG)
    if models:
        unknown = [name for name in models if name not in known]
        if unknown:
            raise KeyError(
                f"no catalog model named {'/'.join(unknown)} "
                f"(have {'/'.join(known)})")
    jobs: list[BatchJob] = []
    for entry in CATALOG:
        if models and entry.name not in models:
            continue
        component = entry.build().components[0]
        keys = tuple(sorted(component.class_keys))
        variants = [("sw-only", ())]
        variants.extend((f"hw={key}", (key,)) for key in keys)
        variants.append(("hw-all", keys))
        jobs.extend(
            BatchJob(entry.name, label, hardware)
            for label, hardware in variants
        )
    return jobs


def _execute_job(
    job: BatchJob, cache_dir: str | None, use_cache: bool,
    gc_bytes: int | None = None,
    store: ArtifactStore | None = None,
) -> JobResult:
    """Compile one matrix cell (runs inside a pool worker or inline)."""
    if os.environ.get(_CRASH_ENV) == job.label:
        os._exit(13)  # simulate a native worker crash (test hook)
    start = time.perf_counter()
    try:
        model = build_model(job.model)
        component = model.components[0]
        marks = marks_for_partition(component, job.hardware)
        if store is None and use_cache and cache_dir is not None:
            store = ArtifactStore(cache_dir, max_bytes=gc_bytes)
        before = store.stats.snapshot() if store is not None else None
        compiler = IncrementalCompiler(model, store=store)
        build = compiler.compile(marks)
        stats = compiler.last_stats
        return JobResult(
            job=job,
            ok=True,
            artifact_count=len(build.artifacts),
            total_lines=build.total_lines(),
            digest=artifacts_digest(build.artifacts),
            classes_total=stats.classes_total,
            classes_compiled=stats.classes_compiled,
            classes_reused=stats.classes_reused,
            elapsed_s=time.perf_counter() - start,
            store=(store.stats.delta(before) if store is not None
                   else StoreStats()),
        )
    except Exception as exc:
        return JobResult(
            job=job, ok=False,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - start,
        )


def _execute_chunk(
    block: list[BatchJob], cache_dir: str | None, use_cache: bool,
    gc_bytes: int | None = None,
) -> list[JobResult]:
    """Compile a contiguous slice of the matrix inside one worker.

    Chunked dispatch amortises the submit/result round-trip over several
    jobs and lets the worker keep one store handle and a warm manifest
    memo across the whole slice — per-job IPC was the dominant scheduler
    overhead on small matrices.
    """
    store = (ArtifactStore(cache_dir, max_bytes=gc_bytes)
             if use_cache and cache_dir is not None else None)
    return [
        _execute_job(job, cache_dir, use_cache, gc_bytes, store=store)
        for job in block
    ]


def run_batch(
    matrix: list[BatchJob],
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    use_cache: bool = True,
    gc_bytes: int | None = None,
) -> BatchReport:
    """Compile the whole *matrix* with *jobs* workers; see module docs."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    results: dict[int, JobResult] = {}
    worker_failures = 0

    if jobs == 1:
        # inline: one shared store, so the in-process manifest memo and
        # the cache are both warm across the whole matrix
        store = (ArtifactStore(cache_dir, max_bytes=gc_bytes)
                 if use_cache and cache_dir is not None else None)
        for index, job in enumerate(matrix):
            results[index] = _execute_job(
                job, cache_dir, use_cache, gc_bytes, store=store)
    else:
        # 4 chunks per worker balances dispatch overhead against load
        # skew from uneven job sizes
        chunk = max(1, -(-len(matrix) // (jobs * 4)))
        blocks = [
            (first, matrix[first:first + chunk])
            for first in range(0, len(matrix), chunk)
        ]
        crashed: list[tuple[int, BatchJob]] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                (first, block,
                 pool.submit(_execute_chunk, block, cache_dir, use_cache,
                             gc_bytes))
                for first, block in blocks
            ]
            for first, block, future in futures:
                try:
                    for offset, result in enumerate(future.result()):
                        results[first + offset] = result
                except BrokenExecutor:
                    # results computed before the crash died with the
                    # worker; every job in the slice goes to retry
                    crashed.extend(
                        (first + offset, job)
                        for offset, job in enumerate(block))
                except Exception as exc:  # worker-side infrastructure
                    for offset, job in enumerate(block):
                        results[first + offset] = JobResult(
                            job=job, ok=False,
                            error=f"{type(exc).__name__}: {exc}")
        if crashed:
            # A dead worker breaks its whole pool generation, so every
            # in-flight job lands here alongside the one that killed it.
            # Retry each suspect in its own single-worker pool: innocents
            # recover, and a genuinely poisonous job fails alone.
            worker_failures += 1
            for index, job in crashed:
                try:
                    with ProcessPoolExecutor(max_workers=1) as pool:
                        results[index] = pool.submit(
                            _execute_job, job, cache_dir, use_cache,
                            gc_bytes).result()
                except BrokenExecutor:
                    worker_failures += 1
                    results[index] = JobResult(
                        job=job, ok=False,
                        error="worker process crashed")
                except Exception as exc:
                    results[index] = JobResult(
                        job=job, ok=False,
                        error=f"{type(exc).__name__}: {exc}")

    ordered = [results[index] for index in range(len(matrix))]
    report = BatchReport(
        results=ordered,
        jobs=jobs,
        elapsed_s=time.perf_counter() - start,
        worker_failures=worker_failures,
    )
    registry = active_registry()
    if registry is not None:
        # Pool workers are separate processes, so their registry copies
        # die with them — fold the batch's numbers in here, from the
        # results, where they are authoritative either way.
        wall = registry.histogram(
            "build.job_wall_ms",
            buckets=(1, 5, 10, 50, 100, 500, 1_000, 5_000))
        for result in ordered:
            wall.observe(result.elapsed_s * 1_000)
        registry.counter("build.jobs_ok").inc(
            sum(1 for r in ordered if r.ok))
        registry.counter("build.jobs_failed").inc(len(report.failed))
        registry.counter("build.worker_failures").inc(worker_failures)
        if jobs > 1:
            # inline stores (jobs == 1) already reported live; only the
            # workers' slices need folding in
            store = report.store
            registry.counter("build.store.hits").inc(store.hits)
            registry.counter("build.store.misses").inc(store.misses)
            registry.counter("build.store.puts").inc(store.puts)
            registry.counter("build.store.evictions").inc(store.evictions)
    return report
