"""Stable content fingerprints of everything a compilation reads.

A build is a pure function of ``(model, marks, rules, generator)``; this
module names that input with a SHA-256 over a *canonical* serialization,
so the same inputs hash identically across process restarts, dict
insertion orders, and equivalently-written mark files — and any single
mark flip or model edit changes the key.

The cache granularity the incremental compiler needs is finer than one
key per build, so alongside :func:`build_fingerprint` there are
per-piece dependency keys:

* :func:`class_dependency_key` — one class's artifacts.  These depend on
  the whole model structure (actions reference other classes' events and
  associations), the class's resolved mapping target, and the effective
  marks *on that class only* — so moving a mark on class X leaves every
  other class's key, and therefore its cached artifacts, untouched.
* :func:`shared_dependency_key` — the runtime support files (types
  header, C kernel, VHDL runtime package), functions of the model alone.
* :func:`manifest_dependency_key` — the lowered manifest + signal flows,
  the expensive parse/analyze/lower product that every retarget reuses.

Mapping-rule predicates are code and cannot be hashed by value; a rule's
identity is its ordered ``(name, target)`` pair, and any change to a
predicate's *meaning* must bump :data:`GENERATOR_VERSION` (the same
escape hatch as changing an emitter's output).
"""

from __future__ import annotations

import hashlib
import json

from repro.marks.model import MarkSet
from repro.mda.rules import RuleSet
from repro.xuml.model import Model
from repro.xuml.serialize import model_to_dict

#: Bump whenever an emitter's output or a rule predicate's meaning
#: changes — it invalidates every cached artifact at once.
GENERATOR_VERSION = "e12.1"


def canonical_json(data) -> str:
    """JSON with sorted keys and fixed separators — insertion-order-proof."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def digest(*parts: str) -> str:
    """SHA-256 over the parts, each length-framed so parts cannot bleed."""
    h = hashlib.sha256()
    for part in parts:
        raw = part.encode("utf-8")
        h.update(str(len(raw)).encode("ascii"))
        h.update(b":")
        h.update(raw)
    return h.hexdigest()


def model_fingerprint(model: Model) -> str:
    """Hash of the whole model through its canonical serialization."""
    return digest("model", canonical_json(model_to_dict(model)))


def marks_fingerprint(marks: MarkSet) -> str:
    """Hash of the explicit marks — sorted, typed, order-independent.

    Only explicit marks participate: a mark file that spells out a
    default and one that omits it describe different *texts* but the
    same *marking*, and they hash differently on purpose only when the
    explicit values differ.  (``MarkSet.marks`` is already sorted by
    ``(path, name)``, so insertion order never matters.)
    """
    items = [
        [m.element_path, m.name, type(m.value).__name__, str(m.value)]
        for m in marks.marks
    ]
    return digest("marks", canonical_json(items))


def rules_fingerprint(rules: RuleSet) -> str:
    """Hash of the ordered rule identities (see module docstring)."""
    return digest(
        "rules",
        canonical_json([[r.name, r.target] for r in rules.rules]),
        GENERATOR_VERSION,
    )


def build_fingerprint(
    model: Model, marks: MarkSet, rules: RuleSet | None = None,
    component_name: str | None = None,
) -> str:
    """One key naming a whole compilation's inputs."""
    return digest(
        "build",
        model_fingerprint(model),
        marks_fingerprint(marks),
        rules_fingerprint(rules or RuleSet.standard()),
        component_name or "",
        GENERATOR_VERSION,
    )


def effective_class_marks(
    marks: MarkSet, component_name: str, class_key: str
) -> list[list[str]]:
    """The effective (post-default) mark values on one class path."""
    path = f"{component_name}.{class_key}"
    return [
        [d.name, str(marks.get(path, d.name))]
        for d in sorted(marks.definitions, key=lambda d: d.name)
    ]


def class_dependency_key(
    model_fp: str, rules_fp: str, component_name: str, class_key: str,
    target: str, marks: MarkSet,
) -> str:
    """Cache key for one class's artifacts under one mapping target."""
    return digest(
        "class",
        model_fp,
        rules_fp,
        component_name,
        class_key,
        target,
        canonical_json(effective_class_marks(marks, component_name,
                                             class_key)),
        GENERATOR_VERSION,
    )


def shared_dependency_key(
    model_fp: str, component_name: str, kind: str
) -> str:
    """Cache key for a runtime-support artifact bundle.

    *kind* is one of ``"c-types"``, ``"c-runtime"``, ``"vhdl-runtime"``
    — each a function of the manifest alone, independent of the marks.
    """
    return digest("shared", model_fp, component_name, kind,
                  GENERATOR_VERSION)


def manifest_dependency_key(model_fp: str, component_name: str) -> str:
    """Cache key for the lowered manifest + signal flows of a component."""
    return digest("manifest", model_fp, component_name, GENERATOR_VERSION)


def artifacts_digest(artifacts: dict[str, str]) -> str:
    """Content hash of a whole artifact set (byte-identity checks)."""
    return digest(
        "artifacts",
        canonical_json(sorted(artifacts.items())),
    )
