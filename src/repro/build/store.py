"""Content-addressed on-disk artifact store.

Objects are opaque byte payloads filed under their dependency key (a
hex digest from :mod:`repro.build.fingerprint`), laid out git-style as
``objects/<first two chars>/<key>`` to keep directories small.  Writes
go to a temporary sibling and ``os.replace`` into place, so concurrent
batch workers sharing one cache directory can never observe a torn
object — the worst race is two workers writing the same key, and since
keys name content, both writes carry identical bytes.

Reads touch the object's mtime, which makes :meth:`ArtifactStore.gc`
an LRU sweep: evict oldest-read objects until the store fits the byte
budget.  Every hit, miss, put and eviction is counted in
:class:`StoreStats` so batch runs can report cache effectiveness.
"""

from __future__ import annotations

import os
import pathlib
import re
import tempfile
from dataclasses import dataclass

from repro.obs.metrics import active_registry

_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")


class StoreError(Exception):
    """Bad key or unusable store directory."""


@dataclass
class StoreStats:
    """Counters of one store's lifetime (or one job's slice of it)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "StoreStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions

    def delta(self, since: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            puts=self.puts - since.puts,
            evictions=self.evictions - since.evictions,
        )

    def snapshot(self) -> "StoreStats":
        return StoreStats(self.hits, self.misses, self.puts, self.evictions)

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions}


class ArtifactStore:
    """A directory of content-addressed objects with LRU eviction."""

    def __init__(self, root, max_bytes: int | None = None):
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        registry = active_registry()
        if registry is None:
            self._m_hits = None
            self._m_misses = None
            self._m_puts = None
            self._m_evictions = None
        else:
            self._m_hits = registry.counter("build.store.hits")
            self._m_misses = registry.counter("build.store.misses")
            self._m_puts = registry.counter("build.store.puts")
            self._m_evictions = registry.counter("build.store.evictions")
        self._objects = self.root / "objects"
        try:
            self._objects.mkdir(parents=True, exist_ok=True)
        except (OSError, NotADirectoryError) as exc:
            raise StoreError(
                f"cache directory {self.root} is not usable: {exc}"
            ) from exc

    # -- addressing ----------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        if not _KEY_RE.match(key):
            raise StoreError(f"malformed object key {key!r}")
        return self._objects / key[:2] / key

    def contains(self, key: str) -> bool:
        """Presence probe that does not move stats or the LRU clock."""
        return self._path(key).exists()

    # -- object access -------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """The payload under *key*, or None; hits refresh LRU recency."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # recency is advisory; the object itself was read fine
        self.stats.hits += 1
        if self._m_hits is not None:
            self._m_hits.inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        """File *payload* under *key* atomically (idempotent per key)."""
        path = self._path(key)
        if path.exists():
            return  # content-addressed: same key, same bytes
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".obj.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        if self._m_puts is not None:
            self._m_puts.inc()
        if self.max_bytes is not None:
            self.gc(self.max_bytes)

    def get_text(self, key: str) -> str | None:
        payload = self.get(key)
        return payload.decode("utf-8") if payload is not None else None

    def put_text(self, key: str, text: str) -> None:
        self.put(key, text.encode("utf-8"))

    # -- housekeeping --------------------------------------------------------

    def _entries(self) -> list[tuple[float, int, pathlib.Path]]:
        entries = []
        for path in self._objects.glob("*/*"):
            if path.name.startswith("."):
                continue  # an in-flight temporary
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue  # evicted by a concurrent worker
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def size_bytes(self) -> int:
        """Total payload bytes currently stored."""
        return sum(size for _, size, _ in self._entries())

    def object_count(self) -> int:
        return len(self._entries())

    def gc(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used objects until under *max_bytes*.

        Returns the number of objects evicted.  With no budget given
        (and none configured) this is a no-op.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            return 0
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # a concurrent worker got there first
            total -= size
            evicted += 1
        self.stats.evictions += evicted
        if self._m_evictions is not None:
            self._m_evictions.inc(evicted)
        return evicted

    def clear(self) -> int:
        """Drop every object (counted as evictions)."""
        return self.gc(0)
