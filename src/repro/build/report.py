"""Batch reporting — tables and CSV export of build-cache measurements.

The same renderer/CSV split as :mod:`repro.cosim.report`: one
fixed-width table shared by the CLI, the tutorial and E9, plus CSV
export of every job row and the aggregate cache/scheduler counters so
the E9 bench feeds spreadsheets exactly like E8 does.
"""

from __future__ import annotations

import csv
import io

from .scheduler import BatchReport

_CSV_COLUMNS = (
    "model", "variant", "ok", "classes_total", "classes_compiled",
    "classes_reused", "artifacts", "lines", "digest", "hits", "misses",
    "evictions", "elapsed_s",
)


def render_batch_table(report: BatchReport) -> str:
    """The fixed-width batch table used everywhere."""
    lines = [
        f"{'model':12s} {'variant':10s} {'ok':>3s} {'comp':>5s} "
        f"{'reuse':>5s} {'files':>5s} {'lines':>6s} {'hits':>5s} "
        f"{'miss':>5s}"
    ]
    for result in report.results:
        if result.ok:
            lines.append(
                f"{result.job.model:12s} {result.job.variant:10s} "
                f"{'yes':>3s} {result.classes_compiled:5d} "
                f"{result.classes_reused:5d} {result.artifact_count:5d} "
                f"{result.total_lines:6d} {result.store.hits:5d} "
                f"{result.store.misses:5d}"
            )
        else:
            lines.append(
                f"{result.job.model:12s} {result.job.variant:10s} "
                f"{'NO':>3s} {result.error}"
            )
    return "\n".join(lines)


def render_cache_summary(report: BatchReport) -> str:
    """One-paragraph aggregate of the cache and scheduler counters."""
    store = report.store
    lines = [
        f"batch: {len(report.results)} jobs on {report.jobs} worker(s) "
        f"in {report.elapsed_s:.2f}s "
        f"({len(report.failed)} failed, "
        f"{report.worker_failures} worker crash(es))",
        f"  classes: {report.classes_compiled} compiled, "
        f"{report.classes_reused} reused from cache",
        f"  cache: {store.hits} hits / {store.lookups} lookups "
        f"(hit rate {store.hit_rate * 100:.1f}%), "
        f"{store.puts} writes, {store.evictions} evictions",
    ]
    return "\n".join(lines)


def batch_to_csv(report: BatchReport) -> str:
    """CSV text, one row per job, stable column order."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)
    for result in report.results:
        writer.writerow([
            result.job.model, result.job.variant, int(result.ok),
            result.classes_total, result.classes_compiled,
            result.classes_reused, result.artifact_count,
            result.total_lines, result.digest, result.store.hits,
            result.store.misses, result.store.evictions,
            f"{result.elapsed_s:.4f}",
        ])
    return buffer.getvalue()


def write_batch_csv(report: BatchReport, path) -> str:
    """Write the CSV to *path*; returns the path written."""
    import pathlib

    target = pathlib.Path(path)
    target.write_text(batch_to_csv(report))
    return str(target)
