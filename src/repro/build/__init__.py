"""Content-addressed build cache + parallel batch compilation (E9).

* :mod:`~repro.build.fingerprint` — stable content hashes of
  model/marks/rules, with per-class dependency keys
* :class:`ArtifactStore` — atomic on-disk object store with LRU GC
* :class:`IncrementalCompiler` — retargets reuse cached per-class
  artifacts, byte-identical to a cold build
* :func:`run_batch` — process-pool batch scheduler over the catalog ×
  mark-variant matrix, with crash containment
"""

from .fingerprint import (
    GENERATOR_VERSION,
    artifacts_digest,
    build_fingerprint,
    canonical_json,
    class_dependency_key,
    manifest_dependency_key,
    marks_fingerprint,
    model_fingerprint,
    rules_fingerprint,
    shared_dependency_key,
)
from .incremental import (
    CompileStats,
    IncrementalCompiler,
    clear_manifest_memo,
)
from .report import (
    batch_to_csv,
    render_batch_table,
    render_cache_summary,
    write_batch_csv,
)
from .scheduler import (
    BatchJob,
    BatchReport,
    JobResult,
    catalog_matrix,
    run_batch,
)
from .store import ArtifactStore, StoreError, StoreStats

__all__ = [
    "ArtifactStore",
    "BatchJob",
    "BatchReport",
    "CompileStats",
    "GENERATOR_VERSION",
    "IncrementalCompiler",
    "JobResult",
    "StoreError",
    "StoreStats",
    "artifacts_digest",
    "batch_to_csv",
    "build_fingerprint",
    "canonical_json",
    "catalog_matrix",
    "class_dependency_key",
    "clear_manifest_memo",
    "manifest_dependency_key",
    "marks_fingerprint",
    "model_fingerprint",
    "render_batch_table",
    "render_cache_summary",
    "rules_fingerprint",
    "run_batch",
    "shared_dependency_key",
    "write_batch_csv",
]
