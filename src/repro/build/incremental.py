"""Incremental recompilation — retargets reuse everything marks left alone.

The paper's §4 claim is that "changing the partition is a matter of
changing the placement of the marks"; this module makes that claim a
*cached* operation.  :class:`IncrementalCompiler` runs the exact same
emission functions as :class:`~repro.mda.compiler.ModelCompiler`, but
keys every piece by its dependency fingerprint and files the output in
an :class:`~repro.build.store.ArtifactStore`:

* the lowered manifest + signal flows (the expensive parse/analyze/lower
  product) depend only on the model, so every retarget reuses them;
* each class's artifacts depend on the model, the class's resolved
  target and the marks *on that class* — moving one mark recompiles only
  the moved class;
* the interface and the ``marks.mks`` snapshot depend on the whole
  marking, so they are regenerated every time (they are cheap, and the
  paper's point is precisely that both halves are re-derived on every
  change).

Because cold and warm paths share one set of emission functions, a warm
build is byte-identical to a cold one by construction — and the tests
and E9 bench verify it anyway.
"""

from __future__ import annotations

import json
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.marks.model import MarkSet
from repro.marks.partition import partition_from_flows, signal_flows
from repro.mda.compiler import (
    Build,
    ModelCompiler,
    classify_classes,
    emit_c_runtime_artifacts,
    emit_class_artifacts,
    emit_interface_artifacts,
    emit_types_artifacts,
    emit_vhdl_runtime_artifacts,
)
from repro.mda.interfacegen import build_interface_spec
from repro.mda.manifest import build_manifest
from repro.mda.rules import RuleSet
from repro.xuml.model import Model

from .fingerprint import (
    class_dependency_key,
    manifest_dependency_key,
    marks_fingerprint,
    model_fingerprint,
    rules_fingerprint,
    shared_dependency_key,
)
from .store import ArtifactStore, StoreStats

#: In-process manifest memo (manifest key -> (manifest, flows)); bounded
#: so long-lived batch workers touring a large catalog stay bounded too.
_MANIFEST_MEMO: "OrderedDict[str, tuple]" = OrderedDict()
_MEMO_LIMIT = 32


@dataclass
class CompileStats:
    """What one :meth:`IncrementalCompiler.compile` call reused vs redid."""

    model: str
    component: str
    classes_total: int = 0
    classes_compiled: int = 0
    classes_reused: int = 0
    shared_compiled: int = 0
    shared_reused: int = 0
    manifest_reused: bool = False
    marks_fp: str = ""
    #: this compile's slice of the store counters
    store: StoreStats = field(default_factory=StoreStats)

    @property
    def fully_cached(self) -> bool:
        return self.classes_compiled == 0 and self.shared_compiled == 0

    def describe(self) -> str:
        manifest = "reused" if self.manifest_reused else "lowered"
        return (
            f"{self.model}/{self.component}: "
            f"{self.classes_compiled}/{self.classes_total} classes "
            f"compiled, {self.classes_reused} reused; "
            f"shared {self.shared_compiled} compiled "
            f"{self.shared_reused} reused; manifest {manifest}"
        )

    def as_dict(self) -> dict:
        data = {
            "model": self.model,
            "component": self.component,
            "classes_total": self.classes_total,
            "classes_compiled": self.classes_compiled,
            "classes_reused": self.classes_reused,
            "shared_compiled": self.shared_compiled,
            "shared_reused": self.shared_reused,
            "manifest_reused": self.manifest_reused,
        }
        data.update(self.store.as_dict())
        return data


class IncrementalCompiler:
    """A :class:`ModelCompiler` with a content-addressed artifact cache.

    With ``store=None`` it still memoizes the lowered manifest in
    process (every same-model retarget skips re-parsing), but emits all
    artifacts fresh; with a store, per-class and shared artifacts come
    from cache whenever their dependency keys match.
    """

    def __init__(
        self,
        model: Model,
        component: str | None = None,
        rules: RuleSet | None = None,
        store: ArtifactStore | None = None,
    ):
        self._inner = ModelCompiler(model, component, rules)
        self.model = model
        self.component = self._inner.component
        self.rules = self._inner.rules
        self.store = store
        self._model_fp = model_fingerprint(model)
        self._rules_fp = rules_fingerprint(self.rules)
        self.last_stats: CompileStats | None = None

    @property
    def model_fingerprint(self) -> str:
        return self._model_fp

    def compile(self, marks: MarkSet) -> Build:
        """The same pipeline as ``ModelCompiler.compile``, cached."""
        name = self.component.name
        stats = CompileStats(
            model=self.model.name, component=name,
            classes_total=len(self.component.classes),
            marks_fp=marks_fingerprint(marks),
        )
        before = (self.store.stats.snapshot() if self.store is not None
                  else None)

        manifest, flows = self._manifest_and_flows(stats)
        partition = partition_from_flows(self.component, marks, flows)
        interface = build_interface_spec(manifest, partition, marks)
        plan = classify_classes(self.component, self.rules, marks)

        artifacts: dict[str, str] = {}
        artifacts.update(self._shared(
            "c-types", emit_types_artifacts, manifest, stats))
        if plan.software:
            artifacts.update(self._shared(
                "c-runtime", emit_c_runtime_artifacts, manifest, stats))
            for key in plan.software:
                artifacts.update(self._class_artifacts(
                    manifest, key, "c", marks, stats))
        if plan.hardware:
            artifacts.update(self._shared(
                "vhdl-runtime", emit_vhdl_runtime_artifacts, manifest,
                stats))
            for key in plan.hardware:
                artifacts.update(self._class_artifacts(
                    manifest, key, "vhdl", marks, stats))
        for key in plan.systemc:
            artifacts.update(self._class_artifacts(
                manifest, key, "systemc", marks, stats))

        # both interface halves and the marking snapshot are re-derived
        # on every compile — the consistency-by-construction argument
        artifacts.update(emit_interface_artifacts(interface, name))
        artifacts["marks.mks"] = marks.dumps()

        if before is not None:
            stats.store = self.store.stats.delta(before)
        self.last_stats = stats
        return Build(
            model=self.model,
            component_name=name,
            manifest=manifest,
            partition=partition,
            interface=interface,
            rules_applied=plan.rules_applied,
            artifacts=artifacts,
        )

    # -- cached pieces -------------------------------------------------------

    def _manifest_and_flows(self, stats: CompileStats):
        key = manifest_dependency_key(self._model_fp, self.component.name)
        memoized = _MANIFEST_MEMO.get(key)
        if memoized is not None:
            _MANIFEST_MEMO.move_to_end(key)
            stats.manifest_reused = True
            return memoized
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                manifest, flows = pickle.loads(payload)
                stats.manifest_reused = True
                self._memoize(key, (manifest, flows))
                return manifest, flows
        manifest = build_manifest(self.model, self.component)
        flows = signal_flows(self.model, self.component)
        if self.store is not None:
            self.store.put(key, pickle.dumps((manifest, flows)))
        self._memoize(key, (manifest, flows))
        return manifest, flows

    @staticmethod
    def _memoize(key: str, value) -> None:
        _MANIFEST_MEMO[key] = value
        _MANIFEST_MEMO.move_to_end(key)
        while len(_MANIFEST_MEMO) > _MEMO_LIMIT:
            _MANIFEST_MEMO.popitem(last=False)

    def _shared(self, kind: str, emit, manifest,
                stats: CompileStats) -> dict[str, str]:
        key = shared_dependency_key(self._model_fp, self.component.name,
                                    kind)
        cached = self._get_bundle(key)
        if cached is not None:
            stats.shared_reused += 1
            return cached
        bundle = emit(manifest, self.component.name)
        self._put_bundle(key, bundle)
        stats.shared_compiled += 1
        return bundle

    def _class_artifacts(self, manifest, class_key: str, target: str,
                         marks: MarkSet,
                         stats: CompileStats) -> dict[str, str]:
        key = class_dependency_key(
            self._model_fp, self._rules_fp, self.component.name,
            class_key, target, marks)
        cached = self._get_bundle(key)
        if cached is not None:
            stats.classes_reused += 1
            return cached
        bundle = emit_class_artifacts(
            manifest, self.component.name, class_key, target, marks)
        self._put_bundle(key, bundle)
        stats.classes_compiled += 1
        return bundle

    def _get_bundle(self, key: str) -> dict[str, str] | None:
        if self.store is None:
            return None
        text = self.store.get_text(key)
        if text is None:
            return None
        return json.loads(text)

    def _put_bundle(self, key: str, bundle: dict[str, str]) -> None:
        if self.store is not None:
            self.store.put_text(key, json.dumps(bundle, sort_keys=True))


def clear_manifest_memo() -> None:
    """Drop the in-process manifest memo (tests and benchmarks)."""
    _MANIFEST_MEMO.clear()
