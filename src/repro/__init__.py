"""repro — an Executable/Translatable UML toolchain for Systems-on-Chip.

A from-scratch reproduction of the system described in Mellor, Wolfe &
McCausland, "Why Systems-on-Chip Needs More UML like a Hole in the Head"
(DATE 2005): a streamlined executable subset of UML (``repro.xuml`` +
``repro.oal`` + ``repro.runtime``), marks held outside the model
(``repro.marks``), and model mappings that translate one specification
into consistent C and VHDL halves (``repro.mda``), measured on a
co-simulated SoC platform (``repro.cosim``) and verified model-first
(``repro.verify``).  ``repro.baselines`` implements the workflows the
paper argues against, so its claims can be quantified.
"""

__version__ = "1.0.0"

__all__ = [
    "xuml",
    "oal",
    "runtime",
    "marks",
    "mda",
    "cosim",
    "verify",
    "baselines",
    "models",
]
