"""Command-line interface: ``python -m repro <command> ...``.

The tool surface a downstream user drives without writing Python:

* ``export``  — write a catalog model to a JSON model file
* ``info``    — size/stat summary of a model file
* ``check``   — well-formedness report (exit 1 on errors)
* ``lint``    — whole-model signal-flow lint: races, lost signals,
  stall cycles and partition-protocol checks with replayable
  interleaving witnesses (E11)
* ``compile`` — run the model compiler against a marking file and
  materialize the generated C/VHDL artifacts
* ``verify``  — run a catalog model's formal suite on all platforms
* ``sweep``   — co-simulate candidate partitions of the packet SoC
* ``chaos``   — replay a formal suite under injected bus faults (E8)
* ``batch``   — compile the catalog × mark-variant matrix in parallel
  against the content-addressed build cache (E9)
* ``trace``   — export a run's execution trace as versioned JSONL (or
  load/verify one), with optional critical-path analysis (E10)
* ``metrics`` — run a model through the runtime, the co-simulation and
  the build cache with the metrics registry active and report it

Model files are the JSON format of :mod:`repro.xuml.serialize`; marking
files are the sticky-note format of :class:`repro.marks.MarkSet`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.marks import MarkSet, validate_marks
from repro.mda import ModelCompiler
from repro.xuml import Severity, check_model, model_from_json, model_to_json


def _load_model(path: str):
    return model_from_json(pathlib.Path(path).read_text())


def _load_marks(path: str | None) -> MarkSet:
    if path is None:
        return MarkSet()
    return MarkSet.loads(pathlib.Path(path).read_text())


def cmd_export(args) -> int:
    from repro.models import build_model

    model = build_model(args.name)
    text = model_to_json(model)
    if args.output == "-":
        print(text)
    else:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def cmd_info(args) -> int:
    model = _load_model(args.model)
    print(f"model {model.name}: {model.description or '(no description)'}")
    for key, value in model.stats().items():
        print(f"  {key:13s} {value}")
    for component in model.components:
        print(f"component {component.name}:")
        for klass in component.classes:
            machine = klass.statemachine
            shape = (f"{len(machine.states)} states, "
                     f"{len(machine.transitions)} transitions"
                     if not machine.is_empty() else "passive")
            print(f"  {klass.key_letters:4s} {klass.name:24s} {shape}")
    return 0


def cmd_check(args) -> int:
    model = _load_model(args.model)
    violations = sorted(check_model(model),
                        key=lambda v: (v.element, v.message))
    errors = [v for v in violations if v.severity is Severity.ERROR]
    warnings = [v for v in violations if v.severity is Severity.WARNING]
    for violation in violations:
        print(violation)
    print(f"{len(errors)} error(s), {len(warnings)} warning(s)")
    from repro.exec import CORE_NAME, lowering_cache_stats
    from repro.obs.metrics import active_registry

    print(f"execution core: {CORE_NAME} (lowered action IR)")
    if active_registry() is not None:
        stats = lowering_cache_stats()
        print(f"lowering cache: {stats['entries']} entrie(s), "
              f"{stats['hits']} hit(s), {stats['misses']} miss(es)")
    if errors:
        return 1
    return 1 if warnings and args.strict_warnings else 0


def _load_model_or_catalog(name: str):
    """A model JSON file path, or a catalog model name."""
    path = pathlib.Path(name)
    if path.suffix == ".json" or path.exists():
        return _load_model(name)
    from repro.models import build_model

    return build_model(name)


def cmd_lint(args) -> int:
    import json

    from repro.analysis.report import (
        lint_model,
        load_baseline,
        write_baseline,
    )

    try:
        baseline = (load_baseline(args.baseline)
                    if args.baseline else frozenset())
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    marks = _load_marks(args.marks) if args.marks else None

    reports = []
    for name in args.models:
        try:
            model = _load_model_or_catalog(name)
        except (KeyError, OSError, ValueError) as exc:
            reason = exc.args[0] if exc.args else exc
            print(f"lint: {name}: {reason}", file=sys.stderr)
            return 2
        try:
            reports.append(lint_model(
                model,
                component=args.component,
                marks=marks,
                baseline=baseline,
                explore=not args.no_witness,
                schedules=args.schedules,
                seed=args.seed,
                max_steps=args.max_steps,
            ))
        except KeyError as exc:
            print(f"lint: {name}: {exc.args[0]}", file=sys.stderr)
            return 2

    if args.json:
        print(json.dumps([r.to_json() for r in reports],
                         indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())

    if args.write_baseline:
        count = write_baseline(args.write_baseline, reports)
        print(f"wrote {args.write_baseline} ({count} suppression keys)",
              file=sys.stderr)
        return 0
    return max((r.exit_code(args.fail_on) for r in reports), default=0)


def cmd_compile(args) -> int:
    model = _load_model(args.model)
    marks = _load_marks(args.marks)
    mark_problems = validate_marks(marks, model)
    for problem in mark_problems:
        print(f"mark: {problem}", file=sys.stderr)
    if mark_problems:
        return 1
    compiler = ModelCompiler(model, component=args.component)
    build = compiler.compile(marks)
    print(build.partition.describe())
    findings = build.lint()
    for finding in findings:
        print(f"lint: {finding}", file=sys.stderr)
    written = build.write_to(args.output)
    print(f"wrote {len(written)} artifacts "
          f"({build.total_lines()} lines) to {args.output}")
    return 1 if findings else 0


def cmd_verify(args) -> int:
    from repro.models import build_model
    from repro.verify import check_conformance, suite_for

    model = build_model(args.name)
    report = check_conformance(model, suite_for(args.name))
    print(report.render())
    return 0 if report.conformant else 1


def cmd_export_suite(args) -> int:
    from repro.verify import suite_for, suite_to_json

    text = suite_to_json(suite_for(args.name))
    if args.output == "-":
        print(text)
    else:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    return 0


def cmd_run_suite(args) -> int:
    from repro.verify import check_conformance, suite_from_json

    model = _load_model(args.model)
    cases = suite_from_json(pathlib.Path(args.suite).read_text())
    report = check_conformance(model, cases)
    print(report.render())
    return 0 if report.conformant else 1


def cmd_sweep(args) -> int:
    from repro.cosim import (
        best_partition,
        poisson_packets,
        render_table,
        sweep_partitions,
        write_csv,
    )
    from repro.models import build_packetproc_model

    model = build_packetproc_model()
    candidates = [(), ("CE",), ("D",), ("CE", "D"), ("CE", "CL", "D")]
    packets = poisson_packets(args.packets, rate_per_ms=args.rate,
                              seed=args.seed)
    rows = sweep_partitions(model, candidates, packets)
    print(render_table(rows))
    print(f"winner: {best_partition(rows).label}")
    if args.csv:
        print(f"wrote {write_csv(rows, args.csv)}")
    return 0


def cmd_batch(args) -> int:
    from repro.build import (
        ArtifactStore,
        StoreError,
        catalog_matrix,
        render_batch_table,
        render_cache_summary,
        run_batch,
        write_batch_csv,
    )

    if args.jobs < 1:
        print(f"batch: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 1
    if args.min_hit_rate is not None and not 0.0 <= args.min_hit_rate <= 1.0:
        print(f"batch: --min-hit-rate must be within 0..1, got "
              f"{args.min_hit_rate}", file=sys.stderr)
        return 1
    try:
        matrix = catalog_matrix(tuple(args.models) or None)
    except KeyError as exc:
        print(f"batch: {exc.args[0]}", file=sys.stderr)
        return 1
    cache_dir = None if args.no_cache else args.cache_dir
    if cache_dir is not None:
        try:
            store = ArtifactStore(cache_dir)
            probe = store.root / ".write-probe"
            probe.write_text("")
            probe.unlink()
        except (StoreError, OSError) as exc:
            print(f"batch: cache directory {cache_dir!r} is not "
                  f"writable: {exc}", file=sys.stderr)
            return 1
    report = run_batch(matrix, jobs=args.jobs, cache_dir=cache_dir,
                       use_cache=not args.no_cache, gc_bytes=args.gc_bytes)
    print(render_batch_table(report))
    print(render_cache_summary(report))
    if args.csv:
        print(f"wrote {write_batch_csv(report, args.csv)}")
    for result in report.failed:
        print(f"batch: {result.job.label} failed: {result.error}",
              file=sys.stderr)
    if (args.min_hit_rate is not None
            and report.hit_rate < args.min_hit_rate):
        print(f"batch: cache hit rate {report.hit_rate * 100:.1f}% is "
              f"below the required {args.min_hit_rate * 100:.0f}%",
              file=sys.stderr)
        return 1
    return 1 if report.failed else 0


def cmd_chaos(args) -> int:
    from repro.models import build_model
    from repro.verify import chaos_sweep

    try:
        rates = tuple(float(r) for r in args.rates.split(","))
    except ValueError:
        print(f"chaos: --rates must be a comma-separated list of "
              f"numbers, got {args.rates!r}", file=sys.stderr)
        return 1
    if any(not 0.0 <= r <= 1.0 for r in rates):
        print(f"chaos: fault rates must be within 0..1, got "
              f"{args.rates!r}", file=sys.stderr)
        return 1
    hardware = tuple(args.hardware.split(",")) if args.hardware else None
    if hardware:
        known = set(build_model(args.name).components[0].class_keys)
        unknown = [key for key in hardware if key not in known]
        if unknown:
            print(f"chaos: no class {'/'.join(unknown)} in {args.name} "
                  f"(have {'/'.join(sorted(known))})", file=sys.stderr)
            return 1
    protected = chaos_sweep(args.name, hardware=hardware, rates=rates,
                            seed=args.seed, protected=True)
    unprotected = chaos_sweep(args.name, hardware=hardware, rates=rates,
                              seed=args.seed, protected=False)
    print(protected.render())
    print()
    print(unprotected.render())
    base = unprotected.points[0]
    prot = protected.points[0]
    if base.bus_bytes:
        overhead = prot.bus_bytes / base.bus_bytes - 1.0
        print(f"\nframing overhead at rate 0: "
              f"{overhead * 100:.0f}% bus bytes "
              f"({prot.bus_bytes} vs {base.bus_bytes})")
    if args.csv:
        _write_chaos_csv(args.csv, protected, unprotected)
        print(f"wrote {args.csv}")
    # protected must conform; unprotected may fail cases but never crash
    return 0 if protected.conformant and not unprotected.crashed else 1


def _write_chaos_csv(path: str, *reports) -> None:
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow([
            "model", "protected", "rate", "cases_clean", "cases_total",
            "causality", "injected", "detected", "retransmissions",
            "recovered", "lost", "delivered_corrupted", "bus_bytes",
            "mean_makespan_ns",
        ])
        for report in reports:
            for point in report.points:
                stats = point.fault_stats
                writer.writerow([
                    report.model, int(report.protected), point.rate,
                    sum(1 for c in point.cases if c.clean),
                    len(point.cases), point.causality_violations,
                    stats.injected, stats.detected, stats.retransmissions,
                    stats.recovered, stats.lost, stats.delivered_corrupted,
                    point.bus_bytes, f"{point.mean_makespan_ns:.0f}",
                ])


def cmd_trace(args) -> int:
    from repro.obs import (
        TraceSchemaError,
        critical_path,
        dump_jsonl,
        load_jsonl,
    )

    if args.load is not None:
        source = pathlib.Path(args.load)
        try:
            text = source.read_text()
        except OSError as exc:
            print(f"trace: cannot read {args.load!r}: {exc}",
                  file=sys.stderr)
            return 1
        try:
            trace = load_jsonl(text)
        except TraceSchemaError as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 1
        if args.check:
            if dump_jsonl(trace) != text:
                print("trace: round-trip is not byte-identical",
                      file=sys.stderr)
                return 1
            print(f"{args.load}: valid {len(trace)}-event trace, "
                  f"round-trips byte-identically")
    else:
        from repro.models import build_model
        from repro.verify import AbstractTarget, run_case, suite_for

        if args.name is None:
            print("trace: a catalog model name (or --load FILE) is "
                  "required", file=sys.stderr)
            return 1
        try:
            suite = suite_for(args.name)
        except KeyError as exc:
            print(f"trace: {exc.args[0]}", file=sys.stderr)
            return 1
        if args.case is None:
            case = suite[0]
        else:
            matches = [c for c in suite if c.name == args.case]
            if not matches:
                print(f"trace: no case {args.case!r} in the {args.name} "
                      f"suite (have "
                      f"{'/'.join(c.name for c in suite)})",
                      file=sys.stderr)
                return 1
            case = matches[0]
        target = AbstractTarget(build_model(args.name))
        result = run_case(case, target)
        if result.error:
            print(f"trace: case {case.name} errored: {result.error}",
                  file=sys.stderr)
            return 1
        trace = target.trace

    if args.output:
        pathlib.Path(args.output).write_text(dump_jsonl(trace))
        print(f"wrote {args.output} ({len(trace)} events)")
    if args.critical:
        print(critical_path(trace).render())
    if not args.output and not args.critical and args.load is None:
        sys.stdout.write(dump_jsonl(trace))
    return 0


#: Metric-name prefixes ``repro metrics --require`` insists on seeing.
_METRIC_GROUPS = ("runtime.", "cosim.", "build.")


def cmd_metrics(args) -> int:
    import json
    import tempfile

    from repro.build import BatchJob, run_batch
    from repro.models import build_model
    from repro.obs import observe
    from repro.verify import (
        AbstractTarget,
        CoSimTarget,
        chaos_build,
        run_case,
        suite_for,
    )

    try:
        suite = suite_for(args.name)
    except KeyError as exc:
        print(f"metrics: {exc.args[0]}", file=sys.stderr)
        return 1
    with observe() as registry:
        # runtime: the formal suite on the abstract model
        for case in suite:
            run_case(case, AbstractTarget(build_model(args.name)))
        # co-sim + bus: one case across the default boundary partition
        cosim = CoSimTarget(chaos_build(args.name))
        run_case(suite[0], cosim)
        cosim.engine.utilization_report()
        # build cache: the same job twice — a cold miss, then a warm hit
        with tempfile.TemporaryDirectory() as tmp:
            job = BatchJob(args.name, "sw-only", ())
            run_batch([job, job], jobs=1, cache_dir=tmp)

    if args.json:
        print(json.dumps(registry.as_dict(), indent=2, sort_keys=True))
    else:
        print(registry.render_table())
    if args.require:
        quiet = [
            group for group in _METRIC_GROUPS
            if not any(c.value for c in registry.counters
                       if c.name.startswith(group))
            and not any(h.count for h in registry.histograms
                        if h.name.startswith(group))
        ]
        if quiet:
            print(f"metrics: no activity recorded under "
                  f"{'/'.join(quiet)}", file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable/Translatable UML toolchain for SoC",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    export = commands.add_parser(
        "export", help="write a catalog model to a JSON model file")
    export.add_argument("name", help="catalog model name (e.g. microwave)")
    export.add_argument("-o", "--output", default="-",
                        help="output path ('-' for stdout)")
    export.set_defaults(func=cmd_export)

    info = commands.add_parser("info", help="summarize a model file")
    info.add_argument("model", help="model JSON file")
    info.set_defaults(func=cmd_info)

    check = commands.add_parser(
        "check", help="well-formedness report (exit 1 on errors)")
    check.add_argument("model", help="model JSON file")
    check.add_argument("--strict-warnings", action="store_true",
                       help="also exit 1 when the report contains warnings")
    check.set_defaults(func=cmd_check)

    lint = commands.add_parser(
        "lint",
        help="whole-model signal-flow lint with interleaving witnesses "
             "(E11)")
    lint.add_argument("models", nargs="+",
                      help="catalog model names or model JSON files")
    lint.add_argument("--marks", help="marking (.mks) file — enables the "
                                      "partition-protocol checks")
    lint.add_argument("--component", help="component name (defaults to "
                                          "the model's first component)")
    lint.add_argument("--json", action="store_true",
                      help="print the reports as a JSON array")
    lint.add_argument("--fail-on", choices=("error", "warning"),
                      default="error",
                      help="severity that makes the exit code non-zero "
                           "(default: error)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppress findings recorded in this baseline "
                           "file")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record every current finding as accepted and "
                           "exit 0")
    lint.add_argument("--no-witness", action="store_true",
                      help="static analysis only; skip the bounded "
                           "interleaving explorer")
    lint.add_argument("--seed", type=int, default=0,
                      help="explorer seed (witness search reproduces "
                           "exactly; default 0)")
    lint.add_argument("--schedules", type=int, default=24,
                      help="explored schedules per scenario (default 24)")
    lint.add_argument("--max-steps", type=int, default=1000,
                      help="dispatch budget per explored run (default 1000)")
    lint.set_defaults(func=cmd_lint)

    compile_cmd = commands.add_parser(
        "compile", help="translate a model against a marking file")
    compile_cmd.add_argument("model", help="model JSON file")
    compile_cmd.add_argument("--marks", help="marking (.mks) file")
    compile_cmd.add_argument("--component", help="component name "
                             "(defaults to the model's only component)")
    compile_cmd.add_argument("-o", "--output", default="generated",
                             help="artifact output directory")
    compile_cmd.set_defaults(func=cmd_compile)

    verify = commands.add_parser(
        "verify", help="run a catalog model's formal suite on all platforms")
    verify.add_argument("name", help="catalog model name")
    verify.set_defaults(func=cmd_verify)

    export_suite = commands.add_parser(
        "export-suite", help="write a catalog model's formal suite to JSON")
    export_suite.add_argument("name", help="catalog model name")
    export_suite.add_argument("-o", "--output", default="-",
                              help="output path ('-' for stdout)")
    export_suite.set_defaults(func=cmd_export_suite)

    run_suite = commands.add_parser(
        "run-suite",
        help="run a suite file against a model file on all platforms")
    run_suite.add_argument("model", help="model JSON file")
    run_suite.add_argument("suite", help="suite JSON file")
    run_suite.set_defaults(func=cmd_run_suite)

    sweep = commands.add_parser(
        "sweep", help="co-simulate candidate partitions of the packet SoC")
    sweep.add_argument("--rate", type=float, default=150.0,
                       help="offered load, packets per millisecond")
    sweep.add_argument("--packets", type=int, default=200,
                       help="number of packets to inject")
    sweep.add_argument("--seed", type=int, default=7, help="workload seed")
    sweep.add_argument("--csv", help="also write results to this CSV file")
    sweep.set_defaults(func=cmd_sweep)

    batch = commands.add_parser(
        "batch",
        help="compile the catalog x mark-variant matrix against the "
             "build cache (E9)")
    batch.add_argument("models", nargs="*",
                       help="catalog model names (default: all)")
    batch.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (>= 1; default 1)")
    batch.add_argument("--cache-dir", default=".repro-cache",
                       help="content-addressed artifact cache directory")
    batch.add_argument("--no-cache", action="store_true",
                       help="compile everything from scratch (no store)")
    batch.add_argument("--gc-bytes", type=int, default=None,
                       help="evict least-recently-used cache objects "
                            "beyond this byte budget")
    batch.add_argument("--min-hit-rate", type=float, default=None,
                       help="exit 1 unless the cache hit rate reaches "
                            "this fraction (CI smoke)")
    batch.add_argument("--csv",
                       help="also write per-job results to this CSV file")
    batch.set_defaults(func=cmd_batch)

    chaos = commands.add_parser(
        "chaos",
        help="replay a model's formal suite under injected bus faults (E8)")
    chaos.add_argument("name", help="catalog model name")
    chaos.add_argument("--hardware",
                       help="comma-separated hardware class keys "
                            "(default: receiver of the first boundary flow)")
    chaos.add_argument("--rates", default="0.0,0.01,0.02,0.05",
                       help="comma-separated fault rates to sweep")
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-injection seed (runs reproduce exactly)")
    chaos.add_argument("--csv", help="also write both sweeps to this CSV file")
    chaos.set_defaults(func=cmd_chaos)

    trace = commands.add_parser(
        "trace",
        help="export a run's trace as versioned JSONL, or load/verify "
             "one (E10)")
    trace.add_argument("name", nargs="?",
                       help="catalog model name to run and trace")
    trace.add_argument("--case",
                       help="suite case to run (default: the first)")
    trace.add_argument("--load", metavar="FILE",
                       help="load an existing JSONL trace instead of "
                            "running a model")
    trace.add_argument("--check", action="store_true",
                       help="with --load: exit 1 unless the stream "
                            "round-trips byte-identically")
    trace.add_argument("--critical", action="store_true",
                       help="print the trace's critical path")
    trace.add_argument("-o", "--output",
                       help="write the JSONL stream to this file")
    trace.set_defaults(func=cmd_trace)

    metrics = commands.add_parser(
        "metrics",
        help="exercise a model across the runtime, the co-sim and the "
             "build cache and report the metrics registry")
    metrics.add_argument("name", help="catalog model name")
    metrics.add_argument("--json", action="store_true",
                         help="print the registry snapshot as JSON")
    metrics.add_argument("--require", action="store_true",
                         help="exit 1 unless runtime/cosim/build metrics "
                              "all recorded activity (CI smoke)")
    metrics.set_defaults(func=cmd_metrics)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
