"""Whole-model static analysis: signal flow, races, lost signals.

The per-activity analyzer (:mod:`repro.oal.analyzer`), the per-machine
checker (:mod:`repro.xuml.wellformed`) and the per-mark validator
(:mod:`repro.marks.validate`) each stop at their own boundary.  This
package is where the *model-wide* consequences of signal-based
concurrency get checked: a signal-flow graph derived from analyzed OAL
bodies, detectors over it (races, lost signals, send-aware
reachability, stall cycles, partition-protocol lint), and a bounded
interleaving explorer that confirms suspect findings against the
repo's own executable semantics with replayable schedule witnesses.

Attribute access is lazy (PEP 562): :mod:`repro.xuml.wellformed` and
friends import :mod:`repro.analysis.findings` at module load, and an
eager ``__init__`` here would close an import cycle back through
:mod:`repro.xuml` via the heavier analysis modules.
"""

from __future__ import annotations

_EXPORTS = {
    "Severity": "findings",
    "Finding": "findings",
    "Violation": "findings",
    "LintFinding": "findings",
    "MarkViolation": "findings",
    "sorted_findings": "findings",
    "SignalEdge": "signalflow",
    "SignalFlowGraph": "signalflow",
    "build_graph": "signalflow",
    "Scenario": "witness",
    "Witness": "witness",
    "WitnessSearch": "witness",
    "scenarios_from_cases": "witness",
    "scenarios_for_model": "witness",
    "replay_witness": "witness",
    "analyze_model": "detectors",
    "LintReport": "report",
    "lint_model": "report",
    "load_baseline": "report",
    "write_baseline": "report",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(f".{_EXPORTS[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
