"""The shared findings model — one currency for every checker.

Before this module existed the toolchain had three finding shapes:
:class:`~repro.xuml.wellformed.Violation` (model well-formedness),
:class:`~repro.mda.clint.LintFinding` (structural checks on generated
text) and :class:`~repro.marks.validate.MarkViolation` (marking files).
Three shapes meant three sort orders, three ``__str__`` conventions and
no uniform JSON export — which the whole-model analyzer cannot live
with, because its report mixes findings from every layer.

:class:`Finding` is the one dataclass they all are now.  The legacy
classes still exist (and are re-exported from their old homes) so that
existing call sites and tests keep working, but each is a thin subclass
that only preserves its historical constructor signature and rendering.

This module deliberately imports nothing from the rest of the package:
it sits below :mod:`repro.xuml`, :mod:`repro.marks` and :mod:`repro.mda`
in the layering, exactly so all three can depend on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are defects: the analyzers promise that every one
    is either witnessed by a concrete schedule or proved from the state
    tables.  ``WARNING`` findings are suspect but not proved.  ``INFO``
    findings are observations worth knowing (e.g. a potential lost
    signal the explorer could not realize within bounds).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric badness, highest first (for sorting and thresholds)."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Finding:
    """One finding from any checker in the toolchain.

    ``element`` is the path of the model element (or artifact) the
    finding is about; ``rule`` identifies the detector that produced it
    (empty for the legacy checkers, which predate rule names).
    ``witness`` optionally carries a replayable interleaving witness
    (see :mod:`repro.analysis.witness`); it never participates in
    equality so a finding keeps its identity when a witness is attached.
    """

    severity: Severity
    element: str
    message: str
    rule: str = ""
    line: int | None = None
    witness: object | None = field(default=None, compare=False, hash=False)

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.element}: {self.message}"

    @property
    def sort_key(self) -> tuple:
        """Stable total order: element first, then rule, message, line."""
        return (self.element, self.rule, self.message, self.line or 0)

    @property
    def baseline_key(self) -> str:
        """The identity used by baseline files to suppress a finding.

        Severity is excluded on purpose: a witness search may upgrade or
        downgrade a finding between runs without changing what it *is*.
        """
        return f"{self.rule}|{self.element}|{self.message}"

    def to_json(self) -> dict:
        """A JSON-ready dict; stable keys, omitting absent extras."""
        payload: dict = {
            "severity": self.severity.value,
            "element": self.element,
            "message": self.message,
            "rule": self.rule,
        }
        if self.line is not None:
            payload["line"] = self.line
        if self.witness is not None and hasattr(self.witness, "to_json"):
            payload["witness"] = self.witness.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "Finding":
        """Rebuild a plain :class:`Finding` from :meth:`to_json` output.

        Witnesses come back as their JSON dicts (good enough for report
        tooling; replay goes through :mod:`repro.analysis.witness`).
        """
        return cls(
            severity=Severity(payload["severity"]),
            element=payload["element"],
            message=payload["message"],
            rule=payload.get("rule", ""),
            line=payload.get("line"),
            witness=payload.get("witness"),
        )

    def with_severity(self, severity: Severity, witness=None) -> "Finding":
        """A copy at a different severity, optionally carrying a witness."""
        return Finding(
            severity=severity,
            element=self.element,
            message=self.message,
            rule=self.rule,
            line=self.line,
            witness=self.witness if witness is None else witness,
        )


def sorted_findings(findings) -> list:
    """Deterministic report order: worst first, then the stable key."""
    return sorted(findings, key=lambda f: (-f.severity.rank, f.sort_key))


@dataclass(frozen=True)
class Violation(Finding):
    """One well-formedness finding (legacy name of :class:`Finding`).

    Kept for compatibility with :mod:`repro.xuml.wellformed` call sites:
    the historical positional signature ``Violation(severity, element,
    message)`` and rendering are unchanged.
    """


class LintFinding(Finding):
    """One problem in a generated artifact (path, line, message).

    The structural C/VHDL lints predate severities — every structural
    finding blocks the build, so they are all :attr:`Severity.ERROR`.
    """

    def __init__(self, path: str, line: int, message: str):
        Finding.__init__(
            self, Severity.ERROR, path, message, rule="structural", line=line
        )

    @property
    def path(self) -> str:
        return self.element

    def __str__(self) -> str:
        return f"{self.element}:{self.line}: {self.message}"


class MarkViolation(Finding):
    """One problem found in a marking set (element path, mark, message)."""

    def __init__(self, element_path: str, mark_name: str, message: str):
        Finding.__init__(
            self, Severity.ERROR, element_path, message, rule=f"marks.{mark_name}"
        )
        object.__setattr__(self, "mark_name", mark_name)

    @property
    def element_path(self) -> str:
        return self.element

    def __str__(self) -> str:
        return f"{self.element} {self.mark_name}: {self.message}"
