"""Bounded interleaving exploration with replayable witnesses.

The detectors in :mod:`repro.analysis.detectors` work on state tables
and the signal-flow graph, which makes them fast and complete but
necessarily approximate: a drop site that *exists* in the table may be
unreachable under the dispatch rules (self-events-first quietly
protects a lot of CANT_HAPPEN rows), and a race candidate may collapse
to one outcome under every legal schedule.

This module closes the loop against the repo's own executable
semantics.  It extracts stimulus :class:`Scenario` s from the model's
formal verify suite, drives :class:`repro.runtime.Simulation` over them
under the synchronous baseline plus a budget of seeded adversarial
schedules, and — when a run actually exhibits the suspect drop or a
schedule-dependent outcome — packages the recorded dispatch choices as
a :class:`Witness` that :func:`replay_witness` can re-execute
deterministically.  A finding with a witness is a defect; a suspect no
schedule in budget could realize gets downgraded, not reported as
ERROR.  That asymmetry is the acceptance bar: zero false ERRORs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.runtime.scheduler import (
    InterleavedScheduler,
    Scheduler,
    SynchronousScheduler,
)
from repro.runtime.simulator import Simulation
from repro.runtime.tracing import TraceKind
from repro.verify.testcase import (
    CreateStep,
    CreationEventStep,
    InjectStep,
    RelateStep,
)
from repro.xuml.model import Model

#: Marker state for signals whose target died before delivery.
DELETED = "(deleted)"


@dataclass(frozen=True)
class Scenario:
    """A setup-and-stimulus script distilled from one formal test case.

    Only population-building and stimulus steps survive the
    distillation — expectations belong to conformance, not exploration.
    The ``+concurrent`` variant of a case strips inject delays so that
    stimuli the suite spaces out in time genuinely contend.
    """

    name: str
    steps: tuple = ()
    source_case: str = ""

    def describe_steps(self) -> list[str]:
        out = []
        for step in self.steps:
            if isinstance(step, CreateStep):
                out.append(f"create {step.name}: {step.class_key}")
            elif isinstance(step, RelateStep):
                out.append(f"relate {step.left} {step.right} {step.association}")
            elif isinstance(step, InjectStep):
                delay = f" delay {step.delay_us}us" if step.delay_us else ""
                out.append(f"inject {step.label} to {step.name}{delay}")
            elif isinstance(step, CreationEventStep):
                out.append(f"creation {step.label}:{step.class_key}")
        return out


_STIMULUS_STEPS = (CreateStep, RelateStep, InjectStep, CreationEventStep)


def scenarios_from_cases(cases) -> tuple[Scenario, ...]:
    """Distill exploration scenarios from formal test cases.

    Each case yields its as-written scenario plus, when it has delayed
    injects, a ``+concurrent`` variant with the delays stripped —
    suites deliberately separate stimuli in time to pin down one
    outcome, which is exactly the separation a race needs removed.
    """
    scenarios: list[Scenario] = []
    seen: set[tuple] = set()

    def add(name: str, steps: tuple, source: str) -> None:
        key = tuple(
            (type(s).__name__, getattr(s, "name", getattr(s, "class_key", "")),
             getattr(s, "label", ""), str(sorted(getattr(s, "params", getattr(s, "attributes", {})).items())),
             getattr(s, "delay_us", 0))
            for s in steps
        )
        if key in seen:
            return
        seen.add(key)
        scenarios.append(Scenario(name, steps, source))

    for case in cases:
        steps = tuple(s for s in case.steps if isinstance(s, _STIMULUS_STEPS))
        if not any(isinstance(s, (InjectStep, CreationEventStep)) for s in steps):
            continue
        add(case.name, steps, case.name)
        if any(isinstance(s, InjectStep) and s.delay_us for s in steps):
            stripped = tuple(
                InjectStep(s.name, s.label, s.params, 0)
                if isinstance(s, InjectStep) else s
                for s in steps
            )
            add(f"{case.name}+concurrent", stripped, case.name)
    return tuple(scenarios)


def scenarios_for_model(model_name: str) -> tuple[Scenario, ...]:
    """Scenarios for a catalog model, from its formal verify suite."""
    from repro.verify.suites import SUITES

    wanted = model_name.lower()
    builder = SUITES.get(wanted)
    if builder is None:
        # tolerate model-name/catalog-name drift (PacketProcessor vs packetproc)
        for key, candidate in SUITES.items():
            if wanted.startswith(key) or key.startswith(wanted):
                builder = candidate
                break
    if builder is None:
        return ()
    return scenarios_from_cases(builder())


def stimuli_from_scenarios(scenarios) -> dict[str, frozenset[str]]:
    """Which labels the environment injects into which class.

    Feeds :class:`repro.analysis.signalflow.SignalFlowGraph` so that
    injected events count as "can arrive anywhere" and as generated for
    send-aware reachability.
    """
    by_class: dict[str, set[str]] = {}
    for scenario in scenarios:
        names: dict[str, str] = {}
        for step in scenario.steps:
            if isinstance(step, CreateStep):
                names[step.name] = step.class_key
            elif isinstance(step, InjectStep):
                class_key = names.get(step.name)
                if class_key is not None:
                    by_class.setdefault(class_key, set()).add(step.label)
            elif isinstance(step, CreationEventStep):
                by_class.setdefault(step.class_key, set()).add(step.label)
    return {key: frozenset(labels) for key, labels in by_class.items()}


# --------------------------------------------------------------------------
# schedulers
# --------------------------------------------------------------------------


class RecordingScheduler(Scheduler):
    """Wrap any scheduler; remember every dispatch choice it makes."""

    name = "recording"

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.choices: list[int] = []

    def choose(self, pool):
        choice = self.inner.choose(pool)
        if choice is not None:
            self.choices.append(choice)
        return choice


class ReplayScheduler(Scheduler):
    """Re-issue a recorded choice list; deterministic fallback after it.

    Replays are exact in practice — instance handles are assigned in
    creation order, so the same prefix of choices reproduces the same
    pool — but a recorded choice that is not currently ready (possible
    if the caller replays against a different scenario) falls back to
    the synchronous rule instead of crashing.
    """

    name = "replay"

    def __init__(self, choices):
        self._choices = list(choices)
        self._index = 0
        self.diverged = False

    def choose(self, pool):
        sources = self._sources(pool)
        if not sources:
            return None
        if self._index < len(self._choices):
            choice = self._choices[self._index]
            self._index += 1
            if choice in sources:
                return choice
            self.diverged = True
        return min(sources, key=lambda s: self._head_sequence(pool, s))


# --------------------------------------------------------------------------
# execution
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RunRecord:
    """Everything observable about one bounded run of one scenario.

    ``fingerprint`` is handle-independent (per class: the sorted
    multiset of live states), so two runs compare equal exactly when no
    external observer could tell them apart by final state.  ``drops``
    and ``consumed`` are (class, label, state-at-arrival) multisets
    reconstructed from the trace — the drop sites the static detectors
    predict, as actually exercised.
    """

    scheduler_name: str
    seed: int | None
    schedule: tuple[int, ...]
    fingerprint: tuple
    drops: tuple
    consumed: tuple
    cant_happen_count: int
    steps: int
    truncated: bool
    drop_first_step: tuple = ()

    def has_drop(self, class_key: str, label: str, state: str, reason: str) -> bool:
        return any(
            entry == (class_key, label, state, reason) for entry, _ in self.drops
        )

    def drop_step(self, class_key: str, label: str, state: str,
                  reason: str) -> int | None:
        """1-based dispatch index of the first such drop, if any."""
        for entry, step in self.drop_first_step:
            if entry == (class_key, label, state, reason):
                return step
        return None

    def signal_profile(self, class_key: str, label: str) -> tuple:
        """How (class, label) fared in this run: consumed + dropped rows."""
        return (
            tuple((e, n) for e, n in self.consumed
                  if e[0] == class_key and e[1] == label),
            tuple((e, n) for e, n in self.drops
                  if e[0] == class_key and e[1] == label),
        )


def _apply_steps(sim: Simulation, scenario: Scenario) -> None:
    names: dict[str, int] = {}
    for step in scenario.steps:
        if isinstance(step, CreateStep):
            names[step.name] = sim.create_instance(step.class_key, **step.attributes)
        elif isinstance(step, RelateStep):
            sim.relate(names[step.left], names[step.right],
                       step.association, step.phrase)
        elif isinstance(step, InjectStep):
            sim.inject(names[step.name], step.label, step.params,
                       delay=step.delay_us)
        elif isinstance(step, CreationEventStep):
            sim.send_creation(step.class_key, step.label, step.params)


def _fingerprint(sim: Simulation) -> tuple:
    print_ = []
    for klass in sim.component.classes:
        handles = sim.instances_of(klass.key_letters)
        states = tuple(sorted(sim.state_of(h) or "" for h in handles))
        print_.append((klass.key_letters, len(handles), states))
    return tuple(print_)


def _arrival_multisets(sim: Simulation):
    """Reconstruct (class, label, state-at-arrival) multisets from the trace.

    The trace does not record the receiver's state on SIGNAL_IGNORED, so
    this tracks every handle's class and current state by replaying the
    INSTANCE_CREATED / TRANSITION records in order.  Each dispatched
    signal logs exactly one SIGNAL_CONSUMED or SIGNAL_IGNORED, so
    counting them recovers the dispatch index of every drop — which is
    what lets a witness carry only the schedule prefix that matters.
    """
    klass_of: dict[int, str] = {}
    state_of: dict[int, str | None] = {}
    drops: Counter = Counter()
    consumed: Counter = Counter()
    drop_first_step: dict[tuple, int] = {}
    dispatch_index = 0
    for event in sim.trace.events:
        data = event.data
        if event.kind is TraceKind.INSTANCE_CREATED:
            klass_of[data["handle"]] = data["class_key"]
            state_of[data["handle"]] = data["state"]
        elif event.kind is TraceKind.SIGNAL_CONSUMED:
            dispatch_index += 1
        elif event.kind is TraceKind.TRANSITION:
            handle = data["handle"]
            klass_of[handle] = data["class_key"]
            if data["from_state"] is not None:
                consumed[(data["class_key"], data["label"],
                          data["from_state"])] += 1
            state_of[handle] = data["to_state"]
        elif event.kind is TraceKind.SIGNAL_IGNORED:
            dispatch_index += 1
            target = data["target"]
            if data["reason"] == "target deleted":
                entry = (klass_of.get(target, "?"), data["label"],
                         DELETED, "target deleted")
            else:
                entry = (klass_of[target], data["label"],
                         state_of[target] or "", data["reason"])
            drops[entry] += 1
            drop_first_step.setdefault(entry, dispatch_index)
    return drops, consumed, drop_first_step


def run_scenario(
    model: Model,
    scenario: Scenario,
    scheduler: Scheduler,
    component: str | None = None,
    max_steps: int = 1_000,
    seed: int | None = None,
) -> RunRecord:
    """One bounded run: apply the scenario, dispatch to quiescence.

    Time jumps forward to the next due signal whenever the pool is idle
    (delays included in the exploration, not waited out), and the run is
    truncated — never raised — at *max_steps* so a livelocking schedule
    still yields a comparable record.
    """
    recorder = RecordingScheduler(scheduler)
    sim = Simulation(model, component=component, scheduler=recorder,
                     cant_happen="record")
    _apply_steps(sim, scenario)
    steps = 0
    truncated = False
    while True:
        if steps >= max_steps:
            truncated = True
            break
        if sim.step():
            steps += 1
            continue
        due = sim.pool.next_due_time()
        if due is None:
            break
        sim.now = max(sim.now, due)
    drops, consumed, drop_first_step = _arrival_multisets(sim)
    return RunRecord(
        scheduler_name=scheduler.name,
        seed=seed,
        schedule=tuple(recorder.choices),
        fingerprint=_fingerprint(sim),
        drops=tuple(sorted(drops.items())),
        consumed=tuple(sorted(consumed.items())),
        cant_happen_count=sim.cant_happen_count,
        steps=steps,
        truncated=truncated,
        drop_first_step=tuple(sorted(drop_first_step.items())),
    )


# --------------------------------------------------------------------------
# witnesses
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Witness:
    """A concrete, replayable demonstration of a finding.

    ``schedule`` is the full dispatch-choice list of the exhibiting run
    (instance handles, with -1 meaning "pop the oldest creation
    event"); for races ``baseline_schedule`` is the run it diverges
    from.  ``observed`` is the JSON-ready description of what the run
    showed.
    """

    kind: str                      # "drop" or "race"
    scenario: Scenario
    seed: int | None
    schedule: tuple[int, ...]
    baseline_schedule: tuple[int, ...] = ()
    observed: dict = field(default_factory=dict, hash=False, compare=False)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "scenario": self.scenario.name,
            "source_case": self.scenario.source_case,
            "steps": self.scenario.describe_steps(),
            "seed": self.seed,
            "schedule": list(self.schedule),
            "baseline_schedule": list(self.baseline_schedule),
            "observed": dict(self.observed),
        }


def replay_witness(model: Model, witness: Witness,
                   component: str | None = None,
                   max_steps: int = 1_000) -> bool:
    """Re-execute a witness's schedule; True iff the claim reproduces."""
    record = run_scenario(model, witness.scenario, ReplayScheduler(witness.schedule),
                          component=component, max_steps=max_steps)
    if witness.kind == "drop":
        ob = witness.observed
        return record.has_drop(ob["class"], ob["label"], ob["state"], ob["reason"])
    if witness.kind == "race":
        baseline = run_scenario(
            model, witness.scenario, ReplayScheduler(witness.baseline_schedule),
            component=component, max_steps=max_steps)
        return record.fingerprint != baseline.fingerprint
    raise ValueError(f"unknown witness kind {witness.kind!r}")


class WitnessSearch:
    """Seeded, budgeted exploration over a model's scenarios.

    One search object serves every detector query for a model: runs are
    cached per (scenario, schedule), so asking about ten drop sites
    costs one sweep, not ten.
    """

    def __init__(
        self,
        model: Model,
        scenarios,
        component: str | None = None,
        schedules: int = 24,
        max_steps: int = 1_000,
        seed: int = 0,
    ):
        self.model = model
        self.component = component
        self.scenarios = tuple(scenarios)
        self.schedules = schedules
        self.max_steps = max_steps
        self.seed = seed
        self._records: dict[str, list[RunRecord]] = {}
        self.runs_executed = 0

    def records_for(self, scenario: Scenario) -> list[RunRecord]:
        """Baseline + seeded adversarial runs of one scenario (cached)."""
        cached = self._records.get(scenario.name)
        if cached is not None:
            return cached
        records = [run_scenario(
            self.model, scenario, SynchronousScheduler(),
            component=self.component, max_steps=self.max_steps)]
        for offset in range(self.schedules):
            run_seed = self.seed + offset
            records.append(run_scenario(
                self.model, scenario, InterleavedScheduler(run_seed),
                component=self.component, max_steps=self.max_steps,
                seed=run_seed))
        self.runs_executed += len(records)
        self._records[scenario.name] = records
        return records

    def find_drop(self, class_key: str, label: str, state: str,
                  reason: str) -> Witness | None:
        """A schedule on which (class, label) is dropped in *state*.

        The witness carries only the dispatch prefix up to the first
        occurrence of the drop — replay is exact for a prefix, so the
        tail (often thousands of ticks in a non-quiescing model) adds
        nothing.
        """
        for scenario in self.scenarios:
            for record in self.records_for(scenario):
                if record.has_drop(class_key, label, state, reason):
                    first = record.drop_step(class_key, label, state, reason)
                    schedule = (record.schedule if first is None
                                else record.schedule[:first])
                    return Witness(
                        kind="drop",
                        scenario=scenario,
                        seed=record.seed,
                        schedule=schedule,
                        observed={
                            "class": class_key, "label": label,
                            "state": state, "reason": reason,
                            "scheduler": record.scheduler_name,
                        },
                    )
        return None

    def find_race(self, class_key: str, label: str) -> Witness | None:
        """Two schedules with different final states, attributable to
        (class, label) faring differently between them."""
        for scenario in self.scenarios:
            records = self.records_for(scenario)
            baseline = records[0]
            if baseline.truncated:
                continue  # mid-flight snapshots are not comparable outcomes
            for record in records[1:]:
                if record.truncated:
                    continue
                if record.fingerprint == baseline.fingerprint:
                    continue
                if (record.signal_profile(class_key, label)
                        == baseline.signal_profile(class_key, label)):
                    continue
                return Witness(
                    kind="race",
                    scenario=scenario,
                    seed=record.seed,
                    schedule=record.schedule,
                    baseline_schedule=baseline.schedule,
                    observed={
                        "class": class_key, "label": label,
                        "baseline_fingerprint": _render_fingerprint(
                            baseline.fingerprint),
                        "divergent_fingerprint": _render_fingerprint(
                            record.fingerprint),
                    },
                )
        return None

    def ever_consumed(self, class_key: str, label: str, state: str) -> bool:
        """Did any explored run consume (class, label) from *state*?"""
        for scenario in self.scenarios:
            for record in self.records_for(scenario):
                for entry, _ in record.consumed:
                    if entry == (class_key, label, state):
                        return True
        return False


def _render_fingerprint(fingerprint: tuple) -> dict:
    return {
        class_key: {"count": count, "states": list(states)}
        for class_key, count, states in fingerprint
    }
