"""Lint reports, severity gating, and the baseline file.

One report aggregates every layer that speaks the shared findings
model: well-formedness (:mod:`repro.xuml.wellformed`), mark validation
(:mod:`repro.marks.validate`) and the whole-model signal-flow detectors
(:mod:`repro.analysis.detectors`).  A baseline file records findings a
team has reviewed and accepted, by stable key — identical in spirit to
a lint suppression file, so ``repro lint --fail-on warning`` stays
adoptable on a model with known, deliberate drops (debounce ignores and
the like).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.marks.model import MarkSet
from repro.xuml.model import Model

from .detectors import analyze_model
from .findings import Finding, Severity, sorted_findings

BASELINE_VERSION = 1


@dataclass
class LintReport:
    """Everything one ``repro lint`` invocation learned."""

    model_name: str
    component_name: str
    findings: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    runs_executed: int = 0
    elapsed_s: float = 0.0

    def counts(self) -> dict[str, int]:
        out = {severity.value: 0 for severity in Severity}
        for finding in self.findings:
            out[finding.severity.value] += 1
        return out

    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings),
                   key=lambda s: s.rank, default=None)

    def exit_code(self, fail_on: str = "error") -> int:
        """0 unless an unsuppressed finding meets the *fail_on* bar."""
        threshold = Severity(fail_on).rank
        worst = self.worst()
        return 1 if worst is not None and worst.rank >= threshold else 0

    @property
    def witnessed(self) -> list:
        return [f for f in self.findings if f.witness is not None]

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"lint {self.model_name}.{self.component_name}: "
            f"{len(self.findings)} findings "
            f"({counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} info)"
            + (f", {len(self.suppressed)} suppressed by baseline"
               if self.suppressed else "")
            + f" [{self.runs_executed} exploration runs, "
              f"{self.elapsed_s:.2f}s]"
        ]
        for finding in self.findings:
            lines.append(f"  {finding}")
            witness = finding.witness
            if witness is not None:
                scenario = witness.scenario.name
                seed = "synchronous" if witness.seed is None else f"seed {witness.seed}"
                lines.append(
                    f"      witness: {witness.kind} in scenario "
                    f"{scenario!r} ({seed}, {len(witness.schedule)}-step "
                    f"schedule)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "model": self.model_name,
            "component": self.component_name,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.baseline_key for f in self.suppressed],
            "runs_executed": self.runs_executed,
            "elapsed_s": round(self.elapsed_s, 4),
        }


def lint_model(
    model: Model,
    component: str | None = None,
    marks: MarkSet | None = None,
    baseline: frozenset[str] | None = None,
    include_wellformed: bool = True,
    explore: bool = True,
    schedules: int = 24,
    seed: int = 0,
    max_steps: int = 1_000,
    scenarios=None,
) -> LintReport:
    """Run every checker that speaks the shared findings model."""
    from repro.marks.validate import validate_marks
    from repro.xuml.wellformed import check_model

    from .witness import WitnessSearch, scenarios_for_model

    started = time.perf_counter()
    resolved = (model.components[0] if component is None
                else model.component(component))
    findings: list[Finding] = []

    if include_wellformed:
        for violation in check_model(model):
            findings.append(Finding(
                violation.severity, violation.element, violation.message,
                rule="wellformed"))
    if marks is not None:
        findings.extend(validate_marks(marks, model))

    if scenarios is None:
        scenarios = scenarios_for_model(model.name)
    search = None
    if explore and scenarios:
        search = WitnessSearch(
            model, scenarios, component=resolved.name,
            schedules=schedules, max_steps=max_steps, seed=seed)

    findings.extend(analyze_model(
        model, component=resolved, marks=marks, scenarios=scenarios,
        explore=explore, schedules=schedules, seed=seed, max_steps=max_steps,
        search=search))

    runs = search.runs_executed if search is not None else 0
    keep, suppressed = _apply_baseline(findings, baseline or frozenset())
    return LintReport(
        model_name=model.name,
        component_name=resolved.name,
        findings=sorted_findings(keep),
        suppressed=sorted_findings(suppressed),
        runs_executed=runs,
        elapsed_s=time.perf_counter() - started,
    )


def _apply_baseline(findings, baseline: frozenset[str]):
    keep, suppressed = [], []
    for finding in findings:
        (suppressed if finding.baseline_key in baseline else keep).append(finding)
    return keep, suppressed


# --------------------------------------------------------------------------
# baseline files
# --------------------------------------------------------------------------


def load_baseline(path: str) -> frozenset[str]:
    """Read a baseline file; returns the suppression key set."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}")
    keys = payload.get("suppress", [])
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise ValueError(f"baseline {path!r}: 'suppress' must be a string list")
    return frozenset(keys)


def write_baseline(path: str, reports) -> int:
    """Write the baseline suppressing every finding in *reports*.

    Returns the number of keys written.  Keys sort so the file diffs
    cleanly under review.
    """
    keys = sorted({
        finding.baseline_key
        for report in reports
        for finding in list(report.findings) + list(report.suppressed)
    })
    payload = {"version": BASELINE_VERSION, "suppress": keys}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(keys)
