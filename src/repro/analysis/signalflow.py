"""The whole-model signal-flow graph.

:func:`repro.marks.partition.signal_flows` answers "which class signals
which class" — enough to place a bus, not enough to reason about
concurrency.  The detectors need to know *which state's activity* sends
each signal, whether the send targets ``self``, whether it is delayed,
whether it sits inside a loop, and which events the environment injects.
:func:`build_graph` derives all of that from the *lowered action IR*
(:mod:`repro.exec`) — literally the same lowered bodies the abstract
runtime and the architecture simulators execute, served from the same
fingerprint-keyed lowering cache, so the graph cannot drift from what
actually executes.

The central semantic fact encoded here is :meth:`SignalFlowGraph.\
arrival_states`: under run-to-completion with self-directed events
dispatched first, a *self-only, non-delayed* event can only ever be
consumed while the instance still sits in the state whose activity
generated it.  Cross-instance and delayed sends enjoy no such
protection — the scheduler is free to park them until the receiver has
wandered anywhere reachable.  Getting this right is the difference
between a lint that flags every ``ignore`` row and one whose findings
survive the interleaving explorer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec import lower_component, walk_ir_generates
from repro.xuml.component import Component
from repro.xuml.model import Model
from repro.xuml.statemachine import EventResponse


@dataclass(frozen=True)
class SignalEdge:
    """One statically discovered send site.

    ``sender_state`` is the state whose activity contains the
    ``generate``, or ``::name`` for an operation body.  ``conditional``
    is true when the send sits under an ``if``/loop — it may not fire on
    every visit to the state.
    """

    sender_class: str
    sender_state: str
    event_label: str
    receiver_class: str
    to_self: bool
    is_creation: bool
    delayed: bool
    in_loop: bool
    conditional: bool
    line: int

    @property
    def from_operation(self) -> bool:
        return self.sender_state.startswith("::")

    def __str__(self) -> str:
        where = f"{self.sender_class}.{self.sender_state}"
        target = "self" if self.to_self else self.receiver_class
        extra = " (delayed)" if self.delayed else ""
        return f"{where} --{self.event_label}--> {target}{extra}"


@dataclass(frozen=True)
class SignalFlowGraph:
    """Every send site in one component, plus the environment's stimuli.

    ``stimuli`` maps receiver class key to the event labels the outside
    world injects (discovered from the model's verify suite, or supplied
    by the caller); these arrive with no sender state and no self-first
    protection.
    """

    component_name: str
    edges: tuple[SignalEdge, ...]
    stimuli: dict[str, frozenset[str]] = field(default_factory=dict)

    def edges_to(self, receiver_class: str, label: str | None = None):
        """All edges delivering to *receiver_class* (optionally one label)."""
        return tuple(
            e for e in self.edges
            if e.receiver_class == receiver_class
            and (label is None or e.event_label == label)
        )

    def edges_from(self, sender_class: str):
        return tuple(e for e in self.edges if e.sender_class == sender_class)

    def senders(self, receiver_class: str, label: str):
        """Distinct (sender class, sender state) pairs for one signal."""
        return sorted({
            (e.sender_class, e.sender_state)
            for e in self.edges_to(receiver_class, label)
        })

    def generated_labels(self, receiver_class: str) -> frozenset[str]:
        """Labels some activity in the model actually sends to this class."""
        return frozenset(
            e.event_label for e in self.edges if e.receiver_class == receiver_class
        )

    def available_labels(self, receiver_class: str) -> frozenset[str]:
        """Labels that can ever reach this class: generated or injected."""
        return self.generated_labels(receiver_class) | self.stimuli.get(
            receiver_class, frozenset()
        )

    def self_only(self, receiver_class: str, label: str) -> bool:
        """True when every delivery of *label* is an immediate self-send.

        Such events are pinned by self-first dispatch + run-to-completion:
        no scheduler can deliver them outside the generating state.  An
        environment stimulus, a delayed send, a creation event or any
        cross-instance sender breaks the pin.
        """
        if label in self.stimuli.get(receiver_class, frozenset()):
            return False
        edges = self.edges_to(receiver_class, label)
        return bool(edges) and all(
            e.to_self and not e.delayed and not e.is_creation
            and not e.from_operation
            for e in edges
        )

    def arrival_states(self, component: Component, receiver_class: str,
                       label: str) -> frozenset[str]:
        """States the receiver can occupy when *label* arrives.

        Self-only non-delayed events arrive exactly in their generating
        states; anything else can arrive in any reachable state.
        """
        machine = component.klass(receiver_class).statemachine
        reachable = frozenset(machine.reachable_states())
        if self.self_only(receiver_class, label):
            return frozenset(
                e.sender_state for e in self.edges_to(receiver_class, label)
            ) & reachable
        return reachable

    def drop_sites(self, component: Component):
        """Every (receiver, label, state, response) where a reachable
        arrival meets an IGNORE or CANT_HAPPEN table row."""
        sites = []
        for klass in component.classes:
            machine = klass.statemachine
            if machine.is_empty():
                continue
            for label in sorted(self.available_labels(klass.key_letters)):
                if klass.has_event(label) and klass.event(label).creation:
                    continue
                for state in sorted(
                    self.arrival_states(component, klass.key_letters, label)
                ):
                    response = machine.response_to(state, label)
                    if response is not EventResponse.TRANSITION:
                        sites.append((klass.key_letters, label, state, response))
        return tuple(sites)


def _edges_from_ir(sender_class: str, source: str, block: list) -> list[SignalEdge]:
    """SignalEdges for every ``generate`` in one lowered body.

    IR generate layout: ``["generate", label, class_key, args,
    target|None, delay|None, line]`` — a ``None`` target is a creation
    event, a ``["self"]`` target is a self-send, and the trailing
    element is the source line the lowering preserved for exactly this
    walk.
    """
    edges = []
    for stmt, in_loop, conditional in walk_ir_generates(block):
        edges.append(SignalEdge(
            sender_class=sender_class,
            sender_state=source,
            event_label=stmt[1],
            receiver_class=stmt[2],
            to_self=stmt[4] == ["self"],
            is_creation=stmt[4] is None,
            delayed=stmt[5] is not None,
            in_loop=in_loop,
            conditional=conditional,
            line=stmt[6],
        ))
    return edges


def build_graph(
    model: Model,
    component: Component,
    stimuli: dict[str, frozenset[str]] | None = None,
) -> SignalFlowGraph:
    """Derive the component's signal-flow graph from its lowered IR."""
    lowered = lower_component(model, component)
    edges: list[SignalEdge] = []
    for (class_key, state_name), block in lowered.activities.items():
        edges.extend(_edges_from_ir(class_key, state_name, block))
    for (class_key, op_name), block in lowered.operations.items():
        edges.extend(_edges_from_ir(class_key, f"::{op_name}", block))
    edges.sort(key=lambda e: (
        e.sender_class, e.sender_state, e.event_label, e.receiver_class, e.line))
    return SignalFlowGraph(
        component_name=component.name,
        edges=tuple(edges),
        stimuli=dict(stimuli or {}),
    )
