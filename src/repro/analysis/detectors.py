"""Whole-model detectors over the signal-flow graph.

Each detector proposes findings from the static picture (tables + flow
graph); the bounded interleaving explorer then either *confirms* a
suspect with a replayable schedule witness or leaves it at a suspect
severity.  The severity contract, which the CI gate relies on:

==========================  ==========  =========================
rule                        unwitnessed  witnessed / proved
==========================  ==========  =========================
lost-signal                 INFO         WARNING (+ witness)
cant-happen                 WARNING      ERROR (+ witness)
race                        (silent)     WARNING (+ witness pair)
send-aware-reachability     WARNING      n/a (table proof)
stall-cycle                 WARNING      n/a (graph proof)
partition.critical          n/a          ERROR (mark-table proof)
partition.chatty            WARNING      n/a (graph proof)
==========================  ==========  =========================

No rule ever emits an ERROR without a witness or a table/mark proof —
that is the "zero false ERRORs" acceptance bar, and it is what lets
``repro lint --fail-on error`` gate CI without a baseline file.
"""

from __future__ import annotations

from repro.marks.model import MarkSet
from repro.xuml.model import Model
from repro.xuml.statemachine import EventResponse

from .findings import Finding, Severity
from .signalflow import SignalFlowGraph, build_graph
from .witness import WitnessSearch, scenarios_for_model, stimuli_from_scenarios

#: Boundary flows whose send site sits in a loop amplify into bus bursts.
CHATTY_FLOW_THRESHOLD = 3


def analyze_model(
    model: Model,
    component=None,
    marks: MarkSet | None = None,
    scenarios=None,
    explore: bool = True,
    schedules: int = 24,
    seed: int = 0,
    max_steps: int = 1_000,
    search: WitnessSearch | None = None,
) -> list[Finding]:
    """Run every signal-flow detector over one component.

    *scenarios* defaults to the model's formal verify suite (by model
    name, when the catalog knows it); without scenarios the explorer has
    no stimuli and every finding stays at its suspect severity.  Pass a
    prebuilt *search* to share its run cache (and read its run counter)
    across callers.
    """
    if component is None:
        component = model.components[0]
    elif isinstance(component, str):
        component = model.component(component)
    if scenarios is None:
        scenarios = (search.scenarios if search is not None
                     else scenarios_for_model(model.name))
    stimuli = stimuli_from_scenarios(scenarios)
    graph = build_graph(model, component, stimuli)

    if search is None and explore and scenarios:
        search = WitnessSearch(
            model, scenarios, component=component.name,
            schedules=schedules, max_steps=max_steps, seed=seed)
    if not explore:
        search = None

    findings: list[Finding] = []
    findings += _drop_findings(component, graph, search)
    findings += _race_findings(component, graph, search)
    findings += _send_aware_reachability(component, graph)
    findings += _stall_cycles(component, graph)
    if marks is not None:
        findings += partition_lint(model, component, marks, graph)
    return findings


# --------------------------------------------------------------------------
# lost signals and can't-happens
# --------------------------------------------------------------------------


def _sender_note(graph: SignalFlowGraph, class_key: str, label: str) -> str:
    senders = graph.senders(class_key, label)
    parts = [f"{cls}.{state}" for cls, state in senders]
    if label in graph.stimuli.get(class_key, frozenset()):
        parts.append("environment")
    return ", ".join(parts) or "environment"


def _drop_findings(component, graph: SignalFlowGraph,
                   search: WitnessSearch | None) -> list[Finding]:
    """IGNORE rows reachable signals can hit, and CANT_HAPPEN suspects.

    The static arrival-state analysis over-approximates for cross-class
    and delayed sends and under-approximates in one corner (two
    same-label self events queued across run-to-completion rounds), so
    after the table pass every drop the explorer actually observed that
    the tables missed is added as a witnessed finding too.
    """
    findings: list[Finding] = []
    covered: set[tuple[str, str, str, str]] = set()

    for class_key, label, state, response in graph.drop_sites(component):
        element = f"{graph.component_name}.{class_key}.{state}"
        senders = _sender_note(graph, class_key, label)
        reason = ("ignored" if response is EventResponse.IGNORE
                  else "cant_happen")
        covered.add((class_key, label, state, reason))
        witness = (search.find_drop(class_key, label, state, reason)
                   if search is not None else None)
        if response is EventResponse.IGNORE:
            severity = Severity.INFO if witness is None else Severity.WARNING
            message = (f"signal {label} (from {senders}) can arrive in state "
                       f"{state!r} where it is ignored")
            if witness is not None:
                message += " — dropped under an explored schedule"
        else:
            severity = Severity.WARNING if witness is None else Severity.ERROR
            message = (f"signal {label} (from {senders}) can arrive in state "
                       f"{state!r} where it CAN'T HAPPEN")
            message += (" — reproduced under an explored schedule"
                        if witness is not None else
                        " — not reproduced within the schedule budget")
        findings.append(Finding(severity, element, message,
                                rule="lost-signal" if reason == "ignored"
                                else "cant-happen", witness=witness))

    if search is not None:
        findings += _explored_extra_drops(graph, search, covered)
    return findings


def _explored_extra_drops(graph: SignalFlowGraph, search: WitnessSearch,
                          covered: set) -> list[Finding]:
    """Witnessed drops the state-table pass did not predict."""
    observed: set[tuple[str, str, str, str]] = set()
    for scenario in search.scenarios:
        for record in search.records_for(scenario):
            for (class_key, label, state, reason), _ in record.drops:
                observed.add((class_key, label, state, reason))

    findings = []
    for class_key, label, state, reason in sorted(observed - covered):
        if reason == "target deleted":
            continue  # lifecycle churn, not a table defect
        witness = search.find_drop(class_key, label, state, reason)
        if witness is None:
            continue
        element = f"{graph.component_name}.{class_key}.{state}"
        if reason == "ignored":
            severity, rule = Severity.WARNING, "lost-signal"
            verb = "ignored"
        else:
            severity, rule = Severity.ERROR, "cant-happen"
            verb = "CAN'T HAPPEN"
        findings.append(Finding(
            severity, element,
            f"signal {label} arrived in state {state!r} where it is {verb} "
            f"(missed by arrival-state analysis; observed under an "
            f"explored schedule)",
            rule=rule, witness=witness))
    return findings


# --------------------------------------------------------------------------
# races
# --------------------------------------------------------------------------


def _race_candidates(component, graph: SignalFlowGraph):
    """(receiver, label) pairs where arrival order is contended.

    Contention needs a sender outside the receiver's own
    run-to-completion chain: a cross-instance edge, an operation body,
    or an environment stimulus.  Self events — even delayed ones —
    cascade from whatever the instance last consumed, so a divergence
    in their profile only mirrors an upstream race; reporting them
    would file the same root cause three times.
    """
    candidates: set[tuple[str, str]] = set()
    for klass in component.classes:
        key = klass.key_letters
        for label in sorted(graph.available_labels(key)):
            edges = graph.edges_to(key, label)
            contended = any(
                (not e.to_self) or e.from_operation for e in edges
            ) or label in graph.stimuli.get(key, frozenset())
            if contended:
                candidates.add((key, label))
    return sorted(candidates)


def _race_findings(component, graph: SignalFlowGraph,
                   search: WitnessSearch | None) -> list[Finding]:
    if search is None:
        return []
    findings = []
    for class_key, label in _race_candidates(component, graph):
        witness = search.find_race(class_key, label)
        if witness is None:
            continue
        element = f"{graph.component_name}.{class_key}"
        senders = _sender_note(graph, class_key, label)
        findings.append(Finding(
            Severity.WARNING, element,
            f"arrival order of {label} (from {senders}) is schedule-"
            f"dependent: two legal dispatch orders reach different final "
            f"states",
            rule="race", witness=witness))
    return findings


# --------------------------------------------------------------------------
# send-aware reachability
# --------------------------------------------------------------------------


def _send_aware_reachability(component, graph: SignalFlowGraph) -> list[Finding]:
    """States unreachable once you know which events are ever sent.

    ``wellformed.py`` walks the transition table alone: a state is
    "reachable" if *some* event sequence leads there.  This pass keeps
    only transitions whose label is actually generated somewhere in the
    model or injected by the environment — strictly sharper, and a
    whole-model property no per-machine check can compute.
    """
    findings = []
    for klass in component.classes:
        machine = klass.statemachine
        if machine.is_empty():
            continue
        available = graph.available_labels(klass.key_letters)
        table_reachable = set(machine.reachable_states())

        roots: set[str] = set()
        if machine.initial_state is not None:
            roots.add(machine.initial_state)
        for creation in machine.creation_transitions:
            if creation.event_label in available:
                roots.add(creation.to_state)

        live = set(roots)
        frontier = list(roots)
        while frontier:
            state = frontier.pop()
            for transition in machine.transitions:
                if (transition.from_state == state
                        and transition.event_label in available
                        and transition.to_state not in live):
                    live.add(transition.to_state)
                    frontier.append(transition.to_state)

        for state in machine.states:
            if state.name in table_reachable and state.name not in live:
                needed = sorted({
                    t.event_label for t in machine.transitions
                    if t.to_state == state.name
                    and t.event_label not in available
                })
                findings.append(Finding(
                    Severity.WARNING,
                    f"{graph.component_name}.{klass.key_letters}",
                    f"state {state.name!r} is reachable in the table but no "
                    f"activity or stimulus ever generates "
                    f"{', '.join(needed) or 'its triggering events'}",
                    rule="send-aware-reachability"))
    return findings


# --------------------------------------------------------------------------
# stall cycles
# --------------------------------------------------------------------------


def _escape_labels(machine, state_name: str) -> set[str]:
    return {
        t.event_label for t in machine.transitions
        if t.from_state == state_name and t.to_state != state_name
    }


def _can_wake(graph: SignalFlowGraph, sender_state: tuple[str, str],
              target_class: str) -> bool:
    """Can (class, state)'s activity transitively signal *target_class*?"""
    seen: set[str] = set()
    frontier = [
        e.receiver_class for e in graph.edges
        if (e.sender_class, e.sender_state) == sender_state
    ]
    while frontier:
        class_key = frontier.pop()
        if class_key == target_class:
            return True
        if class_key in seen:
            continue
        seen.add(class_key)
        frontier.extend(
            e.receiver_class for e in graph.edges if e.sender_class == class_key
        )
    return False


def _stall_cycles(component, graph: SignalFlowGraph) -> list[Finding]:
    """Cycles of classes each dead-waiting on a signal from the next.

    A state is a *dead wait* when every label that leaves it is produced
    solely by other classes, is never injected, is not a delayed self
    timer, and the state's own entry activity cannot transitively wake
    any producer.  If the resulting wait-for edges close a cycle, every
    class in it can park forever — the whole-model analogue of a
    deadlock, invisible to any per-machine check.
    """
    waits: dict[str, tuple[str, str, str]] = {}
    for klass in component.classes:
        machine = klass.statemachine
        if machine.is_empty():
            continue
        key = klass.key_letters
        for state in machine.states:
            if state.name == machine.initial_state:
                continue
            escapes = _escape_labels(machine, state.name)
            if not escapes:
                continue  # terminal state, not a wait
            providers: set[str] = set()
            dead = True
            for label in escapes:
                if label in graph.stimuli.get(key, frozenset()):
                    dead = False
                    break
                edges = graph.edges_to(key, label)
                if not edges:
                    continue  # never sent at all: reachability's problem
                if any(e.to_self or e.delayed for e in edges):
                    dead = False
                    break
                providers.update(e.sender_class for e in edges)
            if not dead or not providers:
                continue
            if _can_wake(graph, (key, state.name), next(iter(providers))):
                continue
            # one wait edge per class is enough to close a cycle
            provider = sorted(providers)[0]
            waits.setdefault(key, (state.name, provider,
                                   "/".join(sorted(escapes))))

    findings = []
    reported: set[frozenset] = set()
    for start in sorted(waits):
        chain = [start]
        node = start
        while True:
            _, provider, _ = waits.get(node, (None, None, None))
            if provider is None or provider not in waits:
                break
            if provider in chain:
                cycle = chain[chain.index(provider):]
                cycle_key = frozenset(cycle)
                if cycle_key not in reported:
                    reported.add(cycle_key)
                    hops = " -> ".join(
                        f"{cls}.{waits[cls][0]} (awaits {waits[cls][2]})"
                        for cls in cycle)
                    findings.append(Finding(
                        Severity.WARNING,
                        f"{graph.component_name}.{cycle[0]}",
                        f"stall cycle: {hops} -> {cycle[0]} — every class "
                        f"waits on a signal only the next one produces",
                        rule="stall-cycle"))
                break
            chain.append(provider)
            node = provider
    return findings


# --------------------------------------------------------------------------
# partition-protocol lint
# --------------------------------------------------------------------------


def partition_lint(model: Model, component, marks: MarkSet,
                   graph: SignalFlowGraph | None = None) -> list[Finding]:
    """Marks-aware lint: protocol problems the partition creates.

    Every finding here is proved from the marks and the flow graph —
    no witness needed: an ``isCritical`` class whose boundary signals
    cross the bus unframed is wrong by the reliability marks' own
    definition (PR 1), and a loop-amplified boundary edge is chatty no
    matter how the scheduler behaves.
    """
    from repro.marks.partition import derive_partition

    if graph is None:
        graph = build_graph(model, component)
    partition = derive_partition(model, component, marks)
    findings: list[Finding] = []
    if partition.is_pure_software or partition.is_pure_hardware:
        return findings

    boundary = {(f.sender_class, f.receiver_class, f.event_label)
                for f in partition.boundary_flows}

    # isCritical boundary traffic must be CRC-framed with retries
    for flow in partition.boundary_flows:
        for class_key in (flow.sender_class, flow.receiver_class):
            path = f"{component.name}.{class_key}"
            if not marks.get(path, "isCritical"):
                continue
            crc = marks.get(path, "crc")
            retries = marks.get(path, "maxRetries")
            problems = []
            if crc in (None, "none"):
                problems.append("no crc mark")
            if not retries:
                problems.append("no maxRetries mark")
            if problems:
                findings.append(Finding(
                    Severity.ERROR, path,
                    f"isCritical signal {flow.event_label} "
                    f"({flow.sender_class} -> {flow.receiver_class}) crosses "
                    f"the bus with {' and '.join(problems)}",
                    rule="partition.critical"))

    # loop-amplified sends across the boundary are chatty
    for edge in graph.edges:
        if not edge.in_loop:
            continue
        key = (edge.sender_class, edge.receiver_class, edge.event_label)
        if key not in boundary:
            continue
        findings.append(Finding(
            Severity.WARNING, f"{component.name}.{edge.sender_class}",
            f"boundary signal {edge.event_label} to {edge.receiver_class} is "
            f"generated inside a loop in state {edge.sender_state!r} — "
            f"per-iteration bus traffic",
            rule="partition.chatty"))

    # many distinct boundary signals between one class pair
    pair_flows: dict[tuple[str, str], list[str]] = {}
    for flow in partition.boundary_flows:
        pair_flows.setdefault(
            (flow.sender_class, flow.receiver_class), []).append(flow.event_label)
    for (sender, receiver), labels in sorted(pair_flows.items()):
        if len(labels) >= CHATTY_FLOW_THRESHOLD:
            findings.append(Finding(
                Severity.WARNING, f"{component.name}.{sender}",
                f"{len(labels)} distinct signals cross the boundary to "
                f"{receiver} ({', '.join(sorted(labels))}) — consider "
                f"co-locating or batching",
                rule="partition.chatty"))

    # deduplicate identical findings from symmetric flows
    unique: dict[tuple, Finding] = {}
    for finding in findings:
        unique.setdefault(
            (finding.rule, finding.element, finding.message), finding)
    return list(unique.values())
