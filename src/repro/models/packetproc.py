"""Packet-processing SoC — the motivating workload of the reproduction.

A five-stage pipeline, one active class per stage:

    MAC (M) -> Classifier (CL) -> CryptoEngine (CE) -> DMA (D) -> Stats (ST)
                        \\________________________________/
                         (clear-text flows bypass crypto)

Packets are injected at the MAC as ``M1`` events carrying an id and a
length; the classifier routes odd flows through the crypto engine.  Each
stage burns work proportional to packet length (bounded loops), which is
what gives the co-simulation something real to measure: crypto and DMA
are compute-heavy and therefore the natural ``isHardware`` candidates —
the partition sweep of experiment E4 runs over exactly this model.

Per-flow accounting lives in passive ``FlowRecord`` instances navigated
by ``select ... where``.
"""

from __future__ import annotations

from repro.xuml import Model, ModelBuilder

#: Number of distinct flows the classifier hashes packets into.
FLOW_COUNT = 4


def build_packetproc_model() -> Model:
    """Build and check the packet processor."""
    builder = ModelBuilder("PacketProcessor", "five-stage packet pipeline SoC")
    soc = builder.component("soc")

    soc.ext("LOG").bridge("info", params=[("message", "string")])

    mac = soc.klass("Mac", "M", number=1)
    mac.attr("mac_id", "unique_id")
    mac.attr("rx_count", "integer")
    mac.attr("rx_bytes", "integer")
    mac.identifier(1, "mac_id")
    mac.event("M1", "packet arrived", params=[("pkt_id", "integer"),
                                              ("length", "integer")])
    mac.event("M2", "header check complete", params=[("pkt_id", "integer"),
                                                     ("length", "integer")])
    mac.state("Ready", 1, activity="")
    mac.state("Checking", 2, activity="""
        self.rx_count = self.rx_count + 1;
        self.rx_bytes = self.rx_bytes + param.length;
        checksum = 0;
        i = 0;
        while (i < 16)
            checksum = (checksum + param.pkt_id + i) % 255;
            i = i + 1;
        end while;
        generate M2:M(pkt_id: param.pkt_id, length: param.length) to self;
    """)
    mac.state("Forwarding", 3, activity="""
        flow = param.pkt_id % 4;
        select one cl related by self->CL[R1];
        generate CL1:CL(pkt_id: param.pkt_id, length: param.length, flow: flow)
            to cl;
        generate M3:M() to self;
    """)
    mac.event("M3", "forward complete")
    mac.trans("Ready", "M1", "Checking")
    mac.trans("Checking", "M2", "Forwarding")
    mac.trans("Forwarding", "M3", "Ready")
    # Packets arriving while the MAC is mid-pipeline wait in its queue:
    # the self-directed M2/M3 steps outrank them (self-events first), so
    # M1 is only ever consumed in Ready and needs no other table entries.
    mac.ignore("Ready", "M2")
    mac.ignore("Ready", "M3")

    classifier = soc.klass("Classifier", "CL", number=2)
    classifier.attr("cl_id", "unique_id")
    classifier.attr("classified", "integer")
    classifier.attr("to_crypto", "integer")
    classifier.identifier(1, "cl_id")
    classifier.event("CL1", "classify packet", params=[
        ("pkt_id", "integer"), ("length", "integer"), ("flow", "integer")])
    classifier.event("CL2", "routing done")
    classifier.state("Idle", 1, activity="")
    classifier.state("Routing", 2, activity="""
        self.classified = self.classified + 1;
        if (param.flow % 2 == 1)
            self.to_crypto = self.to_crypto + 1;
            select one ce related by self->CE[R2];
            generate CE1:CE(pkt_id: param.pkt_id, length: param.length,
                            flow: param.flow) to ce;
        else
            select one dma related by self->D[R3];
            generate D1:D(pkt_id: param.pkt_id, length: param.length,
                          flow: param.flow) to dma;
        end if;
        generate CL2:CL() to self;
    """)
    classifier.trans("Idle", "CL1", "Routing")
    classifier.trans("Routing", "CL2", "Idle")
    classifier.ignore("Idle", "CL2")

    crypto = soc.klass("CryptoEngine", "CE", number=3)
    crypto.attr("ce_id", "unique_id")
    crypto.attr("encrypted", "integer")
    crypto.attr("rounds_done", "integer")
    crypto.identifier(1, "ce_id")
    crypto.event("CE1", "encrypt packet", params=[
        ("pkt_id", "integer"), ("length", "integer"), ("flow", "integer")])
    crypto.event("CE2", "encryption done")
    crypto.state("Idle", 1, activity="")
    crypto.state("Encrypting", 2, activity="""
        self.encrypted = self.encrypted + 1;
        rounds = param.length / 16 + 1;
        state_word = param.pkt_id;
        r = 0;
        while (r < rounds)
            state_word = (state_word * 31 + r) % 65521;
            r = r + 1;
        end while;
        self.rounds_done = self.rounds_done + rounds;
        select one dma related by self->D[R4];
        generate D1:D(pkt_id: param.pkt_id, length: param.length,
                      flow: param.flow) to dma;
        generate CE2:CE() to self;
    """)
    crypto.trans("Idle", "CE1", "Encrypting")
    crypto.trans("Encrypting", "CE2", "Idle")
    crypto.ignore("Idle", "CE2")

    dma = soc.klass("DmaEngine", "D", number=4)
    dma.attr("dma_id", "unique_id")
    dma.attr("transfers", "integer")
    dma.attr("bytes_moved", "integer")
    dma.identifier(1, "dma_id")
    dma.event("D1", "transfer packet", params=[
        ("pkt_id", "integer"), ("length", "integer"), ("flow", "integer")])
    dma.event("D2", "transfer done")
    dma.state("Idle", 1, activity="")
    dma.state("Transferring", 2, activity="""
        self.transfers = self.transfers + 1;
        self.bytes_moved = self.bytes_moved + param.length;
        bursts = param.length / 64 + 1;
        b = 0;
        while (b < bursts)
            b = b + 1;
        end while;
        select one st related by self->ST[R5];
        generate ST1:ST(pkt_id: param.pkt_id, length: param.length,
                        flow: param.flow) to st;
        generate D2:D() to self;
    """)
    dma.trans("Idle", "D1", "Transferring")
    dma.trans("Transferring", "D2", "Idle")
    dma.ignore("Idle", "D2")

    stats = soc.klass("Stats", "ST", number=5)
    stats.attr("st_id", "unique_id")
    stats.attr("packets", "integer")
    stats.attr("bytes_total", "integer")
    stats.identifier(1, "st_id")
    stats.event("ST1", "account packet", params=[
        ("pkt_id", "integer"), ("length", "integer"), ("flow", "integer")])
    stats.event("ST2", "accounting done")
    stats.state("Idle", 1, activity="")
    stats.state("Accounting", 2, activity="""
        self.packets = self.packets + 1;
        self.bytes_total = self.bytes_total + param.length;
        select any rec from instances of FR
            where (selected.flow_id == param.flow);
        if (not_empty rec)
            rec.packets = rec.packets + 1;
            rec.bytes = rec.bytes + param.length;
        end if;
        generate ST2:ST() to self;
    """)
    stats.trans("Idle", "ST1", "Accounting")
    stats.trans("Accounting", "ST2", "Idle")
    stats.ignore("Idle", "ST2")

    record = soc.klass("FlowRecord", "FR", number=6)
    record.attr("flow_id", "integer")
    record.attr("packets", "integer")
    record.attr("bytes", "integer")
    record.identifier(1, "flow_id")

    soc.assoc("R1", ("M", "feeds", "1"), ("CL", "is fed by", "1"))
    soc.assoc("R2", ("CL", "routes crypto traffic to", "1"),
              ("CE", "receives crypto traffic from", "1"))
    soc.assoc("R3", ("CL", "routes clear traffic to", "1"),
              ("D", "receives clear traffic from", "1"))
    soc.assoc("R4", ("CE", "hands ciphertext to", "1"),
              ("D", "receives ciphertext from", "1"))
    soc.assoc("R5", ("D", "reports completion to", "1"),
              ("ST", "accounts transfers of", "1"))

    return builder.build()


def populate(simulation) -> dict[str, int]:
    """Create one instance of each stage, fully wired, plus flow records.

    Returns a dict mapping class key letters to instance handles (the
    flow-record handles are under ``"FR0"``..).
    """
    handles = {
        "M": simulation.create_instance("M", mac_id=1),
        "CL": simulation.create_instance("CL", cl_id=1),
        "CE": simulation.create_instance("CE", ce_id=1),
        "D": simulation.create_instance("D", dma_id=1),
        "ST": simulation.create_instance("ST", st_id=1),
    }
    simulation.relate(handles["M"], handles["CL"], "R1")
    simulation.relate(handles["CL"], handles["CE"], "R2")
    simulation.relate(handles["CL"], handles["D"], "R3")
    simulation.relate(handles["CE"], handles["D"], "R4")
    simulation.relate(handles["D"], handles["ST"], "R5")
    for flow in range(FLOW_COUNT):
        handles[f"FR{flow}"] = simulation.create_instance("FR", flow_id=flow)
    return handles


def inject_packets(simulation, mac_handle: int, count: int,
                   length: int = 256, spacing: int = 0) -> None:
    """Inject *count* packets at the MAC, *spacing* time units apart."""
    for index in range(count):
        simulation.inject(
            mac_handle, "M1",
            {"pkt_id": index + 1, "length": length},
            delay=index * spacing,
        )
