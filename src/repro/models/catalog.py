"""Catalog of the prebuilt models.

Tests, examples and benchmarks iterate :func:`all_models` so new models
are picked up everywhere automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xuml import Model

from .checksum import build_checksum_model
from .elevator import build_elevator_model
from .microwave import build_microwave_model
from .packetproc import build_packetproc_model
from .trafficlight import build_trafficlight_model


@dataclass(frozen=True)
class CatalogEntry:
    """One prebuilt model and what it demonstrates."""

    name: str
    build: object          # () -> Model
    highlight: str


CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry("microwave", build_microwave_model,
                 "self events, delays, association navigation, bridges"),
    CatalogEntry("trafficlight", build_trafficlight_model,
                 "timer-driven phase machine, cross-class requests"),
    CatalogEntry("packetproc", build_packetproc_model,
                 "five-stage SoC pipeline, the E4/E7 workload"),
    CatalogEntry("elevator", build_elevator_model,
                 "instance create/delete, select-where, for-each"),
    CatalogEntry("checksum", build_checksum_model,
                 "creation events, synchronous operations"),
)


def all_models() -> dict[str, Model]:
    """Build every catalog model (each checked for well-formedness)."""
    return {entry.name: entry.build() for entry in CATALOG}


def build_model(name: str) -> Model:
    for entry in CATALOG:
        if entry.name == name:
            return entry.build()
    raise KeyError(f"no catalog model named {name!r}")
