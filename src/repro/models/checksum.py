"""Checksum accelerator — creation events and synchronous operations.

A requester spawns ``Job`` instances by *creation event* (the instance is
born when the signal dispatches — xtUML's asynchronous constructor), the
accelerator computes a Fletcher-style checksum through a synchronous
instance *operation*, and replies to the right job via ``select ...
where``.  This covers the last corners of the profile: creation events,
class-based and instance-based operations, and operation return values.

(The paper's low-level foils, SystemC and Handel-C, would express this as
an RTL block with a bus interface; here it is four states and one loop.)
"""

from __future__ import annotations

from repro.xuml import Model, ModelBuilder


def build_checksum_model() -> Model:
    """Build and check the checksum accelerator model."""
    builder = ModelBuilder("Checksum", "job-based checksum accelerator")
    accel = builder.component("accel")

    accel.ext("LOG").bridge("metric", params=[("name", "string"),
                                              ("value", "real")])

    job = accel.klass("Job", "J", number=1)
    job.attr("job_id", "integer")
    job.attr("length", "integer")
    job.attr("seed", "integer")
    job.attr("result", "integer")
    job.attr("done", "boolean")
    job.identifier(1, "job_id")
    job.event("J0", "job submitted", creation=True, params=[
        ("job_id", "integer"), ("length", "integer"), ("seed", "integer")])
    job.event("J1", "result ready", params=[
        ("job_id", "integer"), ("result", "integer")])
    job.state("Submitted", 1, activity="""
        self.job_id = param.job_id;
        self.length = param.length;
        self.seed = param.seed;
        self.done = false;
        select any engine from instances of AC;
        generate AC1:AC(job_id: self.job_id, length: self.length,
                        seed: self.seed) to engine;
    """)
    job.state("Done", 2, activity="""
        self.result = param.result;
        self.done = true;
        LOG::metric(name: "job_done", value: 1.0);
    """)
    job.creation("J0", "Submitted")
    job.trans("Submitted", "J1", "Done")
    job.ignore("Done", "J1")

    engine = accel.klass("ChecksumEngine", "AC", number=2)
    engine.attr("engine_id", "unique_id")
    engine.attr("jobs_done", "integer")
    engine.identifier(1, "engine_id")
    engine.event("AC1", "compute requested", params=[
        ("job_id", "integer"), ("length", "integer"), ("seed", "integer")])
    engine.event("AC2", "compute finished", params=[
        ("job_id", "integer"), ("result", "integer")])
    engine.operation(
        "fletcher",
        params=[("length", "integer"), ("seed", "integer")],
        returns="integer",
        body="""
            sum1 = param.seed % 255;
            sum2 = 0;
            i = 0;
            while (i < param.length)
                sum1 = (sum1 + i) % 255;
                sum2 = (sum2 + sum1) % 255;
                i = i + 1;
            end while;
            return sum2 * 256 + sum1;
        """,
    )
    engine.operation(
        "engines_available",
        instance_based=False,
        returns="integer",
        body="""
            select many engines from instances of AC;
            return cardinality engines;
        """,
    )
    engine.state("Ready", 1, activity="")
    engine.state("Computing", 2, activity="""
        value = self.fletcher(length: param.length, seed: param.seed);
        self.jobs_done = self.jobs_done + 1;
        generate AC2:AC(job_id: param.job_id, result: value) to self;
    """)
    engine.state("Replying", 3, activity="""
        select any requester from instances of J
            where (selected.job_id == param.job_id);
        if (not_empty requester)
            generate J1:J(job_id: param.job_id, result: param.result)
                to requester;
        end if;
    """)
    engine.trans("Ready", "AC1", "Computing")
    engine.trans("Computing", "AC2", "Replying")
    engine.trans("Replying", "AC1", "Computing")
    engine.ignore("Ready", "AC2")

    return builder.build()


def populate(simulation, engines: int = 1) -> list[int]:
    """Create *engines* checksum engines; jobs arrive by creation event."""
    return [
        simulation.create_instance("AC", engine_id=index + 1)
        for index in range(engines)
    ]


def submit_job(simulation, job_id: int, length: int, seed: int = 0) -> None:
    """Submit a job from the environment via the J0 creation event."""
    simulation.send_creation(
        "J", "J0", {"job_id": job_id, "length": length, "seed": seed}
    )


def fletcher_reference(length: int, seed: int = 0) -> int:
    """Python reference of the engine's checksum, for verification."""
    sum1 = seed % 255
    sum2 = 0
    for i in range(length):
        sum1 = (sum1 + i) % 255
        sum2 = (sum2 + sum1) % 255
    return sum2 * 256 + sum1
