"""Elevator bank — instance creation/deletion and dynamic populations.

A bank dispatches hall calls to the least-busy idle elevator.  Calls are
*created* as instances when requested and *deleted* when served, so this
model exercises ``create object instance`` / ``delete object instance``,
``select many ... where``, ``for each``, and conditional associations —
the dynamic half of the profile that the microwave does not touch.
"""

from __future__ import annotations

from repro.xuml import Model, ModelBuilder

#: Time for an elevator to travel one floor.
FLOOR_TIME = 2_000_000
#: Time the doors stay open at a serviced floor.
DOOR_TIME = 3_000_000


def build_elevator_model() -> Model:
    """Build and check the elevator bank model."""
    builder = ModelBuilder("Elevator", "hall-call dispatching elevator bank")
    bank_component = builder.component("bank")

    bank_component.ext("LOG").bridge("info", params=[("message", "string")])

    bank = bank_component.klass("Bank", "B", number=1)
    bank.attr("bank_id", "unique_id")
    bank.attr("calls_received", "integer")
    bank.attr("calls_dropped", "integer")
    bank.identifier(1, "bank_id")
    bank.event("B1", "hall call", params=[("floor", "integer"),
                                          ("going_up", "boolean")])
    bank.event("B2", "dispatch complete")
    bank.state("Waiting", 1, activity="")
    bank.state("Dispatching", 2, activity="""
        self.calls_received = self.calls_received + 1;
        create object instance call of CA;
        call.floor = param.floor;
        call.going_up = param.going_up;
        relate call to self across R3;
        select many cars related by self->E[R1];
        chosen_found = false;
        for each car in cars
            if (not chosen_found)
                if (car.idle)
                    relate call to car across R2;
                    generate E1:E(floor: param.floor) to car;
                    chosen_found = true;
                end if;
            end if;
        end for;
        if (not chosen_found)
            self.calls_dropped = self.calls_dropped + 1;
            unrelate call from self across R3;
            delete object instance call;
        end if;
        generate B2:B() to self;
    """)
    bank.trans("Waiting", "B1", "Dispatching")
    bank.trans("Dispatching", "B2", "Waiting")
    bank.ignore("Waiting", "B2")

    elevator = bank_component.klass("Elevator", "E", number=2)
    elevator.attr("car_id", "unique_id")
    elevator.attr("current_floor", "integer", default=1)
    elevator.attr("destination", "integer", default=1)
    elevator.attr("idle", "boolean", default=True)
    elevator.attr("trips", "integer")
    elevator.attr("floors_travelled", "integer")
    elevator.identifier(1, "car_id")
    elevator.event("E1", "assigned to floor", params=[("floor", "integer")])
    elevator.event("E2", "moved one floor")
    elevator.event("E3", "arrived at destination")
    elevator.event("E4", "doors closed")
    elevator.state("Idle", 1, activity="""
        self.idle = true;
    """)
    elevator.state("Moving", 2, activity="""
        self.idle = false;
        if (self.current_floor < self.destination)
            self.current_floor = self.current_floor + 1;
            self.floors_travelled = self.floors_travelled + 1;
            generate E2:E() to self delay 2000000;
        elif (self.current_floor > self.destination)
            self.current_floor = self.current_floor - 1;
            self.floors_travelled = self.floors_travelled + 1;
            generate E2:E() to self delay 2000000;
        else
            generate E3:E() to self;
        end if;
    """)
    elevator.state("Boarding", 3, activity="""
        self.trips = self.trips + 1;
        select many served related by self->CA[R2]
            where (selected.floor == self.current_floor);
        for each call in served
            unrelate call from self across R2;
            select one owner related by call->B[R3];
            if (not_empty owner)
                unrelate call from owner across R3;
            end if;
            delete object instance call;
        end for;
        generate E4:E() to self delay 3000000;
    """)
    elevator.trans("Idle", "E1", "Arming")
    elevator.state("Arming", 4, activity="""
        self.destination = param.floor;
        self.idle = false;
        generate E2:E() to self;
    """)
    elevator.trans("Arming", "E2", "Moving")
    elevator.trans("Moving", "E2", "Moving")
    elevator.trans("Moving", "E3", "Boarding")
    elevator.trans("Boarding", "E4", "Idle")
    elevator.ignore("Idle", "E2")
    elevator.ignore("Idle", "E3")
    elevator.ignore("Idle", "E4")
    # assignments while busy are dropped by the car (the bank only picks
    # idle cars, but a race with a just-armed car is possible)
    elevator.ignore("Arming", "E1")
    elevator.ignore("Moving", "E1")
    elevator.ignore("Boarding", "E1")
    elevator.ignore("Boarding", "E2")

    call = bank_component.klass("HallCall", "CA", number=3)
    call.attr("floor", "integer")
    call.attr("going_up", "boolean")

    bank_component.assoc("R1", ("B", "dispatches", "1"),
                         ("E", "is dispatched by", "1..*"))
    bank_component.assoc("R2", ("E", "is serving", "0..1"),
                         ("CA", "serves", "*"))
    bank_component.assoc("R3", ("B", "is pending at", "0..1"),
                         ("CA", "queues", "*"))

    return builder.build()


def populate(simulation, cars: int = 2) -> tuple[int, list[int]]:
    """One bank plus *cars* elevators at floor 1."""
    bank = simulation.create_instance("B", bank_id=1)
    elevators = []
    for index in range(cars):
        car = simulation.create_instance("E", car_id=index + 1)
        simulation.relate(bank, car, "R1")
        elevators.append(car)
    return bank, elevators
