"""Traffic-light intersection controller.

A two-class model: the intersection controller cycling through its phases
on delayed self-ticks, and a debounced pedestrian button that can cut a
green phase short.  Exercises timers-as-delayed-events, cross-class
signals, and ignore entries for stale ticks.
"""

from __future__ import annotations

from repro.xuml import Model, ModelBuilder

#: Phase durations in simulation time units.
GREEN_TIME = 30_000_000
YELLOW_TIME = 5_000_000
ALL_RED_TIME = 2_000_000
BUTTON_REFRACTORY = 10_000_000


def build_trafficlight_model() -> Model:
    """Build and check the intersection model."""
    builder = ModelBuilder("TrafficLight", "intersection controller")
    control = builder.component("intersection")

    control.ext("LOG").bridge("info", params=[("message", "string")])
    tim = control.ext("TIM")
    tim.bridge("timer_start", params=[("duration", "integer"),
                                      ("event", "string")],
               returns="integer")
    tim.bridge("timer_cancel", params=[("event", "string")],
               returns="integer")

    controller = control.klass("Controller", "TC", number=1)
    controller.attr("controller_id", "unique_id")
    controller.attr("cycles", "integer")
    controller.attr("ped_services", "integer")
    controller.identifier(1, "controller_id")
    controller.event("T1", "phase timer expired")
    controller.event("T2", "pedestrian requested crossing")

    controller.state("Off", 8, activity="")
    controller.initial("Off")
    controller.state("NSGreen", 1, activity="""
        self.cycles = self.cycles + 1;
        generate T1:TC() to self delay 30000000;
    """)
    controller.state("NSYellow", 2, activity="""
        cancelled = TIM::timer_cancel(event: "T1");
        started = TIM::timer_start(duration: 5000000, event: "T1");
    """)
    controller.state("AllRedToEW", 3, activity="""
        generate T1:TC() to self delay 2000000;
    """)
    controller.state("EWGreen", 4, activity="""
        generate T1:TC() to self delay 30000000;
    """)
    controller.state("EWYellow", 5, activity="""
        cancelled = TIM::timer_cancel(event: "T1");
        started = TIM::timer_start(duration: 5000000, event: "T1");
    """)
    controller.state("AllRedToNS", 6, activity="""
        generate T1:TC() to self delay 2000000;
    """)
    controller.state("NSGreenCut", 7, activity="""
        self.ped_services = self.ped_services + 1;
        cancelled = TIM::timer_cancel(event: "T1");
        started = TIM::timer_start(duration: 1000000, event: "T1");
    """)

    controller.trans("Off", "T1", "NSGreen")
    controller.ignore("Off", "T2")
    controller.trans("NSGreen", "T1", "NSYellow")
    controller.trans("NSGreen", "T2", "NSGreenCut")
    controller.trans("NSGreenCut", "T1", "NSYellow")
    controller.trans("NSYellow", "T1", "AllRedToEW")
    controller.trans("AllRedToEW", "T1", "EWGreen")
    controller.trans("EWGreen", "T1", "EWYellow")
    controller.trans("EWGreen", "T2", "EWYellow")
    controller.trans("EWYellow", "T1", "AllRedToNS")
    controller.trans("AllRedToNS", "T1", "NSGreen")

    # stale ticks (the one armed by the cut-short green) and repeat
    # pedestrian requests are dropped
    for state in ("NSYellow", "AllRedToEW", "EWYellow", "AllRedToNS", "NSGreenCut"):
        controller.ignore(state, "T2")

    button = control.klass("PedButton", "PB", number=2)
    button.attr("button_id", "unique_id")
    button.attr("presses", "integer")
    button.attr("requests_sent", "integer")
    button.identifier(1, "button_id")
    button.event("PB1", "button pressed")
    button.event("PB2", "refractory period over")

    button.state("Ready", 1, activity="")
    button.state("Latched", 2, activity="""
        self.presses = self.presses + 1;
        self.requests_sent = self.requests_sent + 1;
        select one tc related by self->TC[R1];
        generate T2:TC() to tc;
        generate PB2:PB() to self delay 10000000;
    """)
    button.trans("Ready", "PB1", "Latched")
    button.trans("Latched", "PB2", "Ready")
    button.ignore("Latched", "PB1")
    button.ignore("Ready", "PB2")

    control.assoc(
        "R1",
        ("TC", "requests crossing from", "1"),
        ("PB", "is served by", "*"),
    )

    return builder.build()


def populate(simulation, buttons: int = 1) -> tuple[int, list[int]]:
    """One controller plus *buttons* pedestrian buttons related across R1."""
    controller = simulation.create_instance("TC", controller_id=1)
    handles = []
    for index in range(buttons):
        button = simulation.create_instance("PB", button_id=index + 1)
        simulation.relate(button, controller, "R1")
        handles.append(button)
    return controller, handles


def start(simulation, controller: int) -> None:
    """Kick the phase cycle off (the initial state arms no timer itself)."""
    simulation.inject(controller, "T1")
