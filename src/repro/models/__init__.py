"""Prebuilt Executable UML models used across tests, examples and benches.

* :mod:`~repro.models.microwave` — the canonical oven + power tube
* :mod:`~repro.models.trafficlight` — timer-driven intersection
* :mod:`~repro.models.packetproc` — the packet-processing SoC (E4/E7)
* :mod:`~repro.models.elevator` — dynamic instance populations
* :mod:`~repro.models.checksum` — creation events + operations
"""

from .catalog import CATALOG, CatalogEntry, all_models, build_model
from .checksum import build_checksum_model, fletcher_reference, submit_job
from .elevator import build_elevator_model
from .microwave import build_microwave_model
from .packetproc import build_packetproc_model, inject_packets
from .trafficlight import build_trafficlight_model

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "all_models",
    "build_checksum_model",
    "build_elevator_model",
    "build_microwave_model",
    "build_model",
    "build_packetproc_model",
    "build_trafficlight_model",
    "fletcher_reference",
    "inject_packets",
    "submit_job",
]
