"""The microwave oven — the canonical Executable UML teaching model.

Two active classes: the oven lifecycle (idle / preparing / cooking /
paused / complete, driven by button and door signals plus a one-second
self-tick) and the power tube it energizes across R1.  The model uses
self-directed events, delayed events, event parameters, association
navigation and a LOG bridge — one of everything the profile offers.
"""

from __future__ import annotations

from repro.xuml import Model, ModelBuilder

#: One simulated second, in simulation time units (microseconds).
SECOND = 1_000_000


def build_microwave_model() -> Model:
    """Build and well-formedness-check the microwave model."""
    builder = ModelBuilder("Microwave", "canonical oven + power tube model")
    control = builder.component("control", "oven control domain")

    control.ext("LOG").bridge("info", params=[("message", "string")])

    oven = control.klass("MicrowaveOven", "MO", number=1)
    oven.attr("oven_id", "unique_id")
    oven.attr("remaining_seconds", "integer")
    oven.attr("cycles_run", "integer")
    oven.attr("light_on", "boolean")
    oven.identifier(1, "oven_id")
    oven.event("MO1", "cook button pressed", params=[("seconds", "integer")])
    oven.event("MO2", "door opened")
    oven.event("MO3", "door closed")
    oven.event("MO4", "one second passed")
    oven.event("MO5", "preparation complete")
    oven.event("MO6", "cooking finished")

    oven.state("Idle", 1, activity="""
        self.remaining_seconds = 0;
        self.light_on = false;
        select one tube related by self->PT[R1];
        if (not_empty tube)
            generate PT2:PT() to tube;
        end if;
    """)
    oven.state("Preparing", 2, activity="""
        self.remaining_seconds = param.seconds;
        self.cycles_run = self.cycles_run + 1;
        generate MO5:MO() to self;
    """)
    oven.state("Cooking", 3, activity="""
        self.light_on = true;
        select one tube related by self->PT[R1];
        if (not_empty tube)
            generate PT1:PT() to tube;
        end if;
        if (self.remaining_seconds > 0)
            self.remaining_seconds = self.remaining_seconds - 1;
            generate MO4:MO() to self delay 1000000;
        else
            generate MO6:MO() to self;
        end if;
    """)
    oven.state("Paused", 4, activity="""
        select one tube related by self->PT[R1];
        if (not_empty tube)
            generate PT2:PT() to tube;
        end if;
    """)
    oven.state("Complete", 5, activity="""
        self.light_on = false;
        select one tube related by self->PT[R1];
        if (not_empty tube)
            generate PT2:PT() to tube;
        end if;
        LOG::info(message: "ding");
    """)

    oven.trans("Idle", "MO1", "Preparing")
    oven.trans("Preparing", "MO5", "Cooking")
    oven.trans("Cooking", "MO4", "Cooking")
    oven.trans("Cooking", "MO6", "Complete")
    oven.trans("Cooking", "MO2", "Paused")
    oven.trans("Paused", "MO3", "Cooking")
    oven.trans("Complete", "MO1", "Preparing")
    oven.trans("Complete", "MO2", "Idle")

    for state, event in [
        ("Idle", "MO2"), ("Idle", "MO3"), ("Idle", "MO4"), ("Idle", "MO6"),
        ("Preparing", "MO2"), ("Preparing", "MO3"),
        ("Cooking", "MO1"), ("Cooking", "MO3"),
        ("Paused", "MO1"), ("Paused", "MO2"), ("Paused", "MO4"),
        ("Complete", "MO3"), ("Complete", "MO4"), ("Complete", "MO6"),
    ]:
        oven.ignore(state, event)

    tube = control.klass("PowerTube", "PT", number=2)
    tube.attr("tube_id", "unique_id")
    tube.attr("watts", "integer", default=900)
    tube.attr("energize_count", "integer")
    tube.identifier(1, "tube_id")
    tube.event("PT1", "energize")
    tube.event("PT2", "deenergize")
    tube.state("Off", 1, activity="")
    tube.state("Energized", 2, activity="""
        self.energize_count = self.energize_count + 1;
    """)
    tube.trans("Off", "PT1", "Energized")
    tube.trans("Energized", "PT2", "Off")
    tube.ignore("Off", "PT2")
    tube.ignore("Energized", "PT1")

    control.assoc(
        "R1",
        ("MO", "is powered by", "1"),
        ("PT", "energizes", "1"),
    )

    return builder.build()


def populate(simulation) -> tuple[int, int]:
    """Create one oven + tube pair, related across R1.

    Returns ``(oven_handle, tube_handle)``.
    """
    oven = simulation.create_instance("MO", oven_id=1)
    tube = simulation.create_instance("PT", tube_id=1)
    simulation.relate(oven, tube, "R1")
    return oven, tube
