"""The implementation-first baseline — repartitioning as a rewrite.

Paper section 1: "Partition changes are expensive, and are difficult to
do correctly."  Section 4's answer: "Changing the partition is a matter
of changing the placement of the marks."

This module prices both workflows for the *same* partition change, using
the real generated artifacts as the size oracle:

* implementation-first (SystemC / Handel-C style): moving a class across
  the boundary means deleting its implementation on one side, rewriting
  it on the other, and hand-editing every interface message it touches —
  on both sides.  The line counts come from the model compiler's actual
  output for that class, which is a *favorable* proxy (hand-written code
  is rarely smaller than generated code).
* model-driven: flip the ``isHardware`` marks and regenerate.  The human
  edit count is the number of flipped marks; everything else is machine
  time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.marks.diff import partition_change_cost
from repro.marks.partition import marks_for_partition
from repro.mda.compiler import ModelCompiler
from repro.xuml.model import Model


@dataclass(frozen=True)
class RepartitionCost:
    """Price of one partition change, in both workflows."""

    from_hardware: tuple[str, ...]
    to_hardware: tuple[str, ...]
    moved_classes: tuple[str, ...]
    #: hand-edited lines in the implementation-first workflow
    impl_first_lines: int
    #: hand-edited interface lines (both sides) in the same workflow
    impl_first_interface_lines: int
    #: human edits in the model-driven workflow (mark flips)
    mark_flips: int
    #: machine-regenerated lines (no human attention required)
    regenerated_lines: int

    @property
    def impl_first_total(self) -> int:
        return self.impl_first_lines + self.impl_first_interface_lines

    @property
    def reduction_factor(self) -> float:
        if self.mark_flips == 0:
            return 1.0
        return self.impl_first_total / self.mark_flips


def price_repartition(
    model: Model,
    from_hardware: tuple[str, ...],
    to_hardware: tuple[str, ...],
) -> RepartitionCost:
    """Price moving *model* from one partition to another."""
    component = model.components[0]
    compiler = ModelCompiler(model)
    from_marks = marks_for_partition(component, tuple(from_hardware))
    to_marks = marks_for_partition(component, tuple(to_hardware))
    from_build = compiler.compile(from_marks)
    to_build = compiler.compile(to_marks)

    moved = tuple(sorted(
        set(from_hardware) ^ set(to_hardware)))
    impl_lines = 0
    for class_key in moved:
        # delete the old-side implementation, write the new-side one
        impl_lines += from_build.lines_for_class(class_key)
        impl_lines += to_build.lines_for_class(class_key)

    # interface messages that exist in either boundary and touch a moved
    # class must be re-plumbed by hand on both sides
    interface_lines = 0
    for build in (from_build, to_build):
        for message in build.interface.messages:
            if message.sender_class in moved or message.receiver_class in moved:
                # one struct + one record + pack/unpack, sized by fields
                interface_lines += 2 * (len(message.fields) + 4)

    flips = partition_change_cost(from_marks, to_marks)
    return RepartitionCost(
        from_hardware=tuple(from_hardware),
        to_hardware=tuple(to_hardware),
        moved_classes=moved,
        impl_first_lines=impl_lines,
        impl_first_interface_lines=interface_lines,
        mark_flips=flips,
        regenerated_lines=to_build.total_lines(),
    )


def price_all_single_moves(
    model: Model, base_hardware: tuple[str, ...] = ()
) -> list[RepartitionCost]:
    """Price moving each class across the boundary, one at a time."""
    component = model.components[0]
    costs = []
    for class_key in sorted(component.class_keys):
        if class_key in base_hardware:
            target = tuple(k for k in base_hardware if k != class_key)
        else:
            target = tuple(sorted(base_hardware + (class_key,)))
        costs.append(price_repartition(model, base_hardware, target))
    return costs
