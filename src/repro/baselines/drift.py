"""The parallel-teams baseline — hand-maintained interfaces that drift.

Paper section 1: "it is common for the hardware and software teams to
work a specification in parallel.  Invariably, the two components do not
mesh properly."

This module makes that claim measurable.  Two teams each hold a *copy*
of the interface tables (the C-side team and the VHDL-side team).  The
specification then *churns*: parameters are added, removed, widened,
messages renumbered.  Each churn lands in each team's copy only with
some probability (meetings are missed, emails lag, one side ships
first) — that is the entire model of "working in parallel".  At
integration time the two copies are compared field-by-field; every
disagreement is an interface defect of exactly the kind generated
interfaces rule out.

The generated workflow runs the *same churn stream* against the single
model-level spec and regenerates both halves after every change; its
defect count is structurally zero, which experiment E1 verifies rather
than assumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: team-local layout: message -> (id, [(field, width_bits)])
Layout = dict[str, tuple[int, list[tuple[str, int]]]]


@dataclass(frozen=True)
class ChurnEvent:
    """One specification change."""

    kind: str          # add_field | remove_field | resize_field | renumber
    message: str
    fieldname: str | None = None
    width: int | None = None
    new_id: int | None = None

    def __str__(self) -> str:
        if self.kind == "add_field":
            return f"add {self.message}.{self.fieldname}:{self.width}b"
        if self.kind == "remove_field":
            return f"remove {self.message}.{self.fieldname}"
        if self.kind == "resize_field":
            return f"resize {self.message}.{self.fieldname} to {self.width}b"
        return f"renumber {self.message} to id {self.new_id}"


@dataclass(frozen=True)
class InterfaceDefect:
    """One disagreement between the two teams' tables."""

    message: str
    kind: str          # missing_message | id_mismatch | missing_field |
    #                    width_mismatch | offset_mismatch
    detail: str

    def __str__(self) -> str:
        return f"{self.message}: {self.kind} ({self.detail})"


def initial_layout(spec) -> Layout:
    """Seed a team's table from a generated :class:`InterfaceSpec`."""
    layout: Layout = {}
    for message in spec.messages:
        layout[message.name] = (
            message.message_id,
            [(f.name, f.width_bits) for f in message.fields],
        )
    return layout


def copy_layout(layout: Layout) -> Layout:
    return {name: (mid, list(fields)) for name, (mid, fields) in layout.items()}


def generate_churn(
    layout: Layout, count: int, seed: int = 0
) -> list[ChurnEvent]:
    """A reproducible stream of *count* spec changes against *layout*."""
    rng = random.Random(seed)
    working = copy_layout(layout)
    events: list[ChurnEvent] = []
    fresh = 0
    while len(events) < count:
        message = rng.choice(sorted(working))
        mid, fields = working[message]
        kind = rng.choice(
            ["add_field", "add_field", "resize_field", "remove_field",
             "renumber"])
        if kind == "add_field":
            fresh += 1
            name = f"ext_{fresh}"
            width = rng.choice([8, 16, 32, 64])
            fields.append((name, width))
            events.append(ChurnEvent("add_field", message, name, width))
        elif kind == "resize_field" and fields:
            index = rng.randrange(len(fields))
            name, old_width = fields[index]
            width = rng.choice([w for w in (8, 16, 32, 64) if w != old_width])
            fields[index] = (name, width)
            events.append(ChurnEvent("resize_field", message, name, width))
        elif kind == "remove_field" and len(fields) > 1:
            index = rng.randrange(1, len(fields))   # keep target_instance
            name, _width = fields.pop(index)
            events.append(ChurnEvent("remove_field", message, name))
        elif kind == "renumber":
            new_id = rng.randint(1, 64)
            working[message] = (new_id, fields)
            events.append(ChurnEvent("renumber", message, new_id=new_id))
    return events


def apply_churn(layout: Layout, event: ChurnEvent) -> None:
    """Apply one churn event to a team's copy (idempotent-ish)."""
    if event.message not in layout:
        return
    mid, fields = layout[event.message]
    if event.kind == "add_field":
        if all(name != event.fieldname for name, _w in fields):
            fields.append((event.fieldname, event.width))
    elif event.kind == "remove_field":
        layout[event.message] = (
            mid, [(n, w) for n, w in fields if n != event.fieldname])
    elif event.kind == "resize_field":
        layout[event.message] = (
            mid,
            [(n, event.width if n == event.fieldname else w)
             for n, w in fields],
        )
    elif event.kind == "renumber":
        layout[event.message] = (event.new_id, fields)


def compare_layouts(ours: Layout, theirs: Layout) -> list[InterfaceDefect]:
    """Field-by-field integration check between two teams' tables."""
    defects: list[InterfaceDefect] = []
    for message in sorted(set(ours) | set(theirs)):
        if message not in ours or message not in theirs:
            defects.append(InterfaceDefect(
                message, "missing_message",
                "only one side knows this message"))
            continue
        our_id, our_fields = ours[message]
        their_id, their_fields = theirs[message]
        if our_id != their_id:
            defects.append(InterfaceDefect(
                message, "id_mismatch", f"{our_id} vs {their_id}"))
        our_map = dict(our_fields)
        their_map = dict(their_fields)
        for name in sorted(set(our_map) | set(their_map)):
            if name not in our_map or name not in their_map:
                defects.append(InterfaceDefect(
                    message, "missing_field", name))
            elif our_map[name] != their_map[name]:
                defects.append(InterfaceDefect(
                    message, "width_mismatch",
                    f"{name}: {our_map[name]} vs {their_map[name]}"))
        # offsets: fields are laid out in declaration order, so any
        # order disagreement shifts every later field
        shared = [n for n, _ in our_fields if n in their_map]
        shared_theirs = [n for n, _ in their_fields if n in our_map]
        if shared != shared_theirs:
            defects.append(InterfaceDefect(
                message, "offset_mismatch",
                "field order differs; packed offsets diverge"))
    return defects


@dataclass
class DriftOutcome:
    """Result of one parallel-teams run."""

    churn_events: int
    applied_sw: int
    applied_hw: int
    defects: list[InterfaceDefect] = field(default_factory=list)

    @property
    def defect_count(self) -> int:
        return len(self.defects)


def run_parallel_teams(
    spec,
    churn_count: int,
    miss_probability: float,
    seed: int = 0,
) -> DriftOutcome:
    """Simulate the hand-maintained workflow under churn.

    Each churn event reaches each team's copy with probability
    ``1 - miss_probability``, independently.  Returns the integration
    defects found when the halves finally meet.
    """
    if not 0.0 <= miss_probability <= 1.0:
        raise ValueError("miss probability must be within [0, 1]")
    rng = random.Random(seed ^ 0x5EED)
    truth = initial_layout(spec)
    sw_team = copy_layout(truth)
    hw_team = copy_layout(truth)
    events = generate_churn(truth, churn_count, seed)
    applied_sw = applied_hw = 0
    for event in events:
        if rng.random() >= miss_probability:
            apply_churn(sw_team, event)
            applied_sw += 1
        if rng.random() >= miss_probability:
            apply_churn(hw_team, event)
            applied_hw += 1
    defects = compare_layouts(sw_team, hw_team)
    return DriftOutcome(churn_count, applied_sw, applied_hw, defects)


def run_generated_flow(spec, churn_count: int, seed: int = 0) -> DriftOutcome:
    """The generated workflow under the same churn stream.

    There is exactly one copy (the model-level spec); both halves are
    regenerated from it after every change, so the comparison is between
    two *freshly generated* views of one table.
    """
    truth = initial_layout(spec)
    events = generate_churn(truth, churn_count, seed)
    for event in events:
        apply_churn(truth, event)
    sw_view = copy_layout(truth)   # emit C header from the single spec
    hw_view = copy_layout(truth)   # emit VHDL package from the same spec
    defects = compare_layouts(sw_view, hw_view)
    return DriftOutcome(churn_count, churn_count, churn_count, defects)
