"""Baselines — the workflows the paper argues against, quantified.

* :mod:`~repro.baselines.drift` — parallel teams hand-maintaining the
  same interface tables under churn (E1)
* :mod:`~repro.baselines.editcost` — implementation-first repartitioning
  priced against mark flips (E2)
* :mod:`~repro.baselines.umlsurface` — UML 1.5/2.0 metaclass inventory
  against the executable subset (E5)
"""

from .drift import (
    ChurnEvent,
    DriftOutcome,
    InterfaceDefect,
    compare_layouts,
    generate_churn,
    initial_layout,
    run_generated_flow,
    run_parallel_teams,
)
from .editcost import (
    RepartitionCost,
    price_all_single_moves,
    price_repartition,
)
from .umlsurface import (
    UML15_METACLASSES,
    UML20_METACLASS_COUNT,
    XTUML_SUBSET,
    SurfaceRow,
    metaclasses_used_by,
    surface_summary,
    surface_table,
    uml15_total,
)

__all__ = [
    "ChurnEvent",
    "DriftOutcome",
    "InterfaceDefect",
    "RepartitionCost",
    "SurfaceRow",
    "UML15_METACLASSES",
    "UML20_METACLASS_COUNT",
    "XTUML_SUBSET",
    "compare_layouts",
    "generate_churn",
    "initial_layout",
    "metaclasses_used_by",
    "price_all_single_moves",
    "price_repartition",
    "run_generated_flow",
    "run_parallel_teams",
    "surface_summary",
    "surface_table",
    "uml15_total",
]
