"""UML surface accounting — how much UML does SoC actually need?

Paper section 5: "Executable UML is a small, but powerful, subset of UML
... That's all we need; we need more UML like a hole in the head."

Experiment E5 makes the rhetoric numeric: the metaclass inventory of
UML 1.5 (the current standard at DATE 2005; UML 2.0 — the "more UML" the
title complains about — was mid-adoption and substantially larger), the
subset Executable UML defines, and the subset our five example SoC
models *actually exercise*, measured from the models themselves.

The UML 1.5 inventory below is a curated per-package metaclass list
(abstract metaclasses included, per the specification's own counting);
it does not need to be exact to the last metaclass for the claim's shape
to hold — the profile uses well under a fifth of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xuml.model import Model

#: UML 1.5 metaclasses by specification package (curated inventory).
UML15_METACLASSES: dict[str, tuple[str, ...]] = {
    "Foundation.Core": (
        "Element", "ModelElement", "GeneralizableElement", "Namespace",
        "Classifier", "Class", "DataType", "Interface", "Attribute",
        "Operation", "Method", "Parameter", "BehavioralFeature",
        "StructuralFeature", "Feature", "AssociationEnd", "Association",
        "AssociationClass", "Generalization", "Dependency", "Abstraction",
        "Usage", "Binding", "Component", "Node", "Artifact", "Comment",
        "Constraint", "Relationship", "Flow", "PresentationElement",
        "TemplateParameter", "TemplateArgument", "Stereotype",
        "TaggedValue", "TagDefinition", "Primitive", "Enumeration",
        "EnumerationLiteral", "ProgrammingLanguageDataType",
        "ElementResidence", "ElementImport", "Permission",
    ),
    "BehavioralElements.CommonBehavior": (
        "Instance", "Object", "DataValue", "ComponentInstance",
        "NodeInstance", "LinkObject", "Link", "LinkEnd", "Signal",
        "Exception", "Stimulus", "Action", "ActionSequence", "Argument",
        "CreateAction", "DestroyAction", "CallAction", "SendAction",
        "ReturnAction", "TerminateAction", "UninterpretedAction",
        "AttributeLink", "Reception", "SubsystemInstance",
    ),
    "BehavioralElements.StateMachines": (
        "StateMachine", "State", "CompositeState", "SimpleState",
        "FinalState", "PseudoState", "SynchState", "StubState",
        "SubmachineState", "Transition", "Event", "SignalEvent",
        "CallEvent", "TimeEvent", "ChangeEvent", "Guard",
    ),
    "BehavioralElements.Collaborations": (
        "Collaboration", "ClassifierRole", "AssociationRole",
        "AssociationEndRole", "Message", "Interaction",
        "InteractionInstanceSet", "CollaborationInstanceSet",
    ),
    "BehavioralElements.UseCases": (
        "UseCase", "Actor", "UseCaseInstance", "Extend", "Include",
        "ExtensionPoint",
    ),
    "BehavioralElements.ActivityGraphs": (
        "ActivityGraph", "Partition", "SubactivityState", "ActionState",
        "CallState", "ObjectFlowState", "ClassifierInState",
    ),
    "ModelManagement": (
        "Package", "Model", "Subsystem", "ElementImport",
    ),
}

#: Metaclasses the Executable UML profile defines semantics for.
XTUML_SUBSET: frozenset[str] = frozenset({
    "Class", "Attribute", "Operation", "Parameter", "DataType",
    "Association", "AssociationEnd", "AssociationClass", "Signal",
    "SignalEvent", "TimeEvent", "StateMachine", "State", "SimpleState",
    "FinalState", "Transition", "Guard", "Action", "CreateAction",
    "DestroyAction", "SendAction", "ReturnAction", "Package",
    "Enumeration", "EnumerationLiteral", "Instance", "Object", "Link",
    "LinkEnd",
})

#: UML 2.0 superstructure metaclass count (the "more UML"), for context.
UML20_METACLASS_COUNT = 260


@dataclass(frozen=True)
class SurfaceRow:
    """One package's row of the E5 table."""

    package: str
    total: int
    in_profile: int
    used_by_models: int

    @property
    def profile_share(self) -> float:
        return self.in_profile / self.total if self.total else 0.0


def uml15_total() -> int:
    return sum(len(names) for names in UML15_METACLASSES.values())


def metaclasses_used_by(model: Model) -> frozenset[str]:
    """UML metaclasses a concrete model actually instantiates."""
    used: set[str] = {"Package", "Class"}
    for component in model.components:
        if component.types.enums:
            used.update({"Enumeration", "EnumerationLiteral", "DataType"})
        for association in component.associations:
            used.update({"Association", "AssociationEnd"})
            if association.link_class_key is not None:
                used.add("AssociationClass")
        for klass in component.classes:
            if klass.attributes:
                used.add("Attribute")
            if klass.operations:
                used.update({"Operation", "Parameter"})
            if klass.events:
                used.update({"Signal", "SignalEvent"})
            machine = klass.statemachine
            if not machine.is_empty():
                used.update({"StateMachine", "State", "SimpleState",
                             "Transition"})
                if any(state.final for state in machine.states):
                    used.add("FinalState")
                for state in machine.states:
                    if state.activity.strip():
                        used.add("Action")
                        if "create object instance" in state.activity:
                            used.add("CreateAction")
                        if "delete object instance" in state.activity:
                            used.add("DestroyAction")
                        if "generate" in state.activity:
                            used.add("SendAction")
                        if "delay" in state.activity:
                            used.add("TimeEvent")
                        if "relate" in state.activity:
                            used.update({"Link", "LinkEnd", "Instance",
                                         "Object"})
    return frozenset(used)


def surface_table(models: dict[str, Model]) -> list[SurfaceRow]:
    """The per-package surface table over a set of models."""
    used_all: set[str] = set()
    for model in models.values():
        used_all.update(metaclasses_used_by(model))
    rows = []
    for package, names in UML15_METACLASSES.items():
        name_set = set(names)
        rows.append(SurfaceRow(
            package=package,
            total=len(names),
            in_profile=len(name_set & XTUML_SUBSET),
            used_by_models=len(name_set & used_all),
        ))
    return rows


def surface_summary(models: dict[str, Model]) -> dict[str, float]:
    """Headline numbers for E5."""
    rows = surface_table(models)
    total = sum(row.total for row in rows)
    in_profile = sum(row.in_profile for row in rows)
    used = sum(row.used_by_models for row in rows)
    return {
        "uml15_metaclasses": total,
        "uml20_metaclasses": UML20_METACLASS_COUNT,
        "profile_metaclasses": in_profile,
        "used_metaclasses": used,
        "profile_share_of_uml15": in_profile / total,
        "profile_share_of_uml20": in_profile / UML20_METACLASS_COUNT,
        "used_share_of_profile": used / in_profile if in_profile else 0.0,
    }
