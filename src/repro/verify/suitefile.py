"""Test-suite files — formal test cases as versionable JSON.

Formal test cases are specification artifacts (paper section 2), so like
models they belong in version control and must survive tool sessions.
This module round-trips :class:`~repro.verify.testcase.TestCase` lists
through JSON, and the CLI's ``run-suite`` command executes a suite file
against a model file on every platform.
"""

from __future__ import annotations

import json

from .testcase import (
    AdvanceStep,
    CreateStep,
    CreationEventStep,
    ExpectAttr,
    ExpectAttrOnOnly,
    ExpectCount,
    ExpectState,
    InjectStep,
    RelateStep,
    RunStep,
    TestCase,
)

FORMAT_VERSION = 1


class SuiteFileError(Exception):
    """Malformed or incompatible suite file."""


_STEP_TO_DICT = {
    CreateStep: lambda s: {"do": "create", "name": s.name,
                           "class": s.class_key,
                           "attributes": dict(s.attributes)},
    RelateStep: lambda s: {"do": "relate", "left": s.left, "right": s.right,
                           "association": s.association, "phrase": s.phrase},
    InjectStep: lambda s: {"do": "inject", "name": s.name, "label": s.label,
                           "params": dict(s.params),
                           "delay_us": s.delay_us},
    CreationEventStep: lambda s: {"do": "creation_event",
                                  "class": s.class_key, "label": s.label,
                                  "params": dict(s.params)},
    RunStep: lambda s: {"do": "run", "max_steps": s.max_steps},
    AdvanceStep: lambda s: {"do": "advance", "time_us": s.time_us},
    ExpectState: lambda s: {"do": "expect_state", "name": s.name,
                            "state": s.state},
    ExpectAttr: lambda s: {"do": "expect_attr", "name": s.name,
                           "attribute": s.attribute, "value": s.value},
    ExpectCount: lambda s: {"do": "expect_count", "class": s.class_key,
                            "count": s.count},
    ExpectAttrOnOnly: lambda s: {"do": "expect_attr_on_only",
                                 "class": s.class_key,
                                 "attribute": s.attribute,
                                 "value": s.value},
}


def _step_from_dict(data: dict):
    kind = data.get("do")
    if kind == "create":
        return CreateStep(data["name"], data["class"],
                          dict(data.get("attributes", {})))
    if kind == "relate":
        return RelateStep(data["left"], data["right"], data["association"],
                          data.get("phrase"))
    if kind == "inject":
        return InjectStep(data["name"], data["label"],
                          dict(data.get("params", {})),
                          data.get("delay_us", 0))
    if kind == "creation_event":
        return CreationEventStep(data["class"], data["label"],
                                 dict(data.get("params", {})))
    if kind == "run":
        return RunStep(data.get("max_steps", 1_000_000))
    if kind == "advance":
        return AdvanceStep(data["time_us"])
    if kind == "expect_state":
        return ExpectState(data["name"], data["state"])
    if kind == "expect_attr":
        return ExpectAttr(data["name"], data["attribute"], data["value"])
    if kind == "expect_count":
        return ExpectCount(data["class"], data["count"])
    if kind == "expect_attr_on_only":
        return ExpectAttrOnOnly(data["class"], data["attribute"],
                                data["value"])
    raise SuiteFileError(f"unknown step kind {kind!r}")


def suite_to_dict(cases: list[TestCase]) -> dict:
    return {
        "format": FORMAT_VERSION,
        "cases": [
            {
                "name": case.name,
                "steps": [_STEP_TO_DICT[type(step)](step)
                          for step in case.steps],
            }
            for case in cases
        ],
    }


def suite_to_json(cases: list[TestCase], indent: int = 2) -> str:
    return json.dumps(suite_to_dict(cases), indent=indent)


def suite_from_dict(data: dict) -> list[TestCase]:
    if data.get("format") != FORMAT_VERSION:
        raise SuiteFileError(
            f"unsupported suite format {data.get('format')!r}")
    cases = []
    for case_data in data.get("cases", []):
        case = TestCase(case_data["name"])
        for step_data in case_data.get("steps", []):
            case.steps.append(_step_from_dict(step_data))
        cases.append(case)
    return cases


def suite_from_json(text: str) -> list[TestCase]:
    return suite_from_dict(json.loads(text))
