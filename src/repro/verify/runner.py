"""Test-case runner.

Executes a :class:`~repro.verify.testcase.TestCase` against one
:class:`~repro.verify.targets.Target`, collecting every assertion
failure (a verification tool reports all of them, not just the first).
"""

from __future__ import annotations

from .targets import Target
from .testcase import (
    AdvanceStep,
    CreateStep,
    CreationEventStep,
    ExpectAttr,
    ExpectAttrOnOnly,
    ExpectCount,
    ExpectState,
    Failure,
    InjectStep,
    RelateStep,
    RunStep,
    TestCase,
    TestResult,
)


def run_case(case: TestCase, target: Target) -> TestResult:
    """Run *case* on *target*; never raises for assertion failures."""
    result = TestResult(case.name, target.name)
    bindings: dict[str, int] = {}
    try:
        for index, step in enumerate(case.steps):
            _run_step(step, index, target, bindings, result)
    except Exception as exc:                          # noqa: BLE001
        result.error = f"{type(exc).__name__}: {exc}"
    return result


def _resolve(bindings: dict[str, int], name: str) -> int:
    try:
        return bindings[name]
    except KeyError:
        raise KeyError(f"test case never created an instance named {name!r}") \
            from None


def _run_step(step, index: int, target: Target,
              bindings: dict[str, int], result: TestResult) -> None:
    if isinstance(step, CreateStep):
        bindings[step.name] = target.create_instance(
            step.class_key, **step.attributes)
    elif isinstance(step, RelateStep):
        target.relate(
            _resolve(bindings, step.left), _resolve(bindings, step.right),
            step.association, step.phrase)
    elif isinstance(step, InjectStep):
        target.inject(_resolve(bindings, step.name), step.label,
                      dict(step.params), delay_us=step.delay_us)
    elif isinstance(step, CreationEventStep):
        target.send_creation(step.class_key, step.label, dict(step.params))
    elif isinstance(step, RunStep):
        target.run_to_quiescence(step.max_steps)
    elif isinstance(step, AdvanceStep):
        target.run_until(step.time_us)
    elif isinstance(step, ExpectState):
        actual = target.state_of(_resolve(bindings, step.name))
        if actual != step.state:
            result.failures.append(Failure(
                index, f"{step.name}: expected state {step.state!r}, "
                       f"got {actual!r}"))
    elif isinstance(step, ExpectAttr):
        actual = target.read_attribute(
            _resolve(bindings, step.name), step.attribute)
        if actual != step.value:
            result.failures.append(Failure(
                index, f"{step.name}.{step.attribute}: expected "
                       f"{step.value!r}, got {actual!r}"))
    elif isinstance(step, ExpectCount):
        actual = len(target.instances_of(step.class_key))
        if actual != step.count:
            result.failures.append(Failure(
                index, f"population of {step.class_key}: expected "
                       f"{step.count}, got {actual}"))
    elif isinstance(step, ExpectAttrOnOnly):
        handles = target.instances_of(step.class_key)
        if len(handles) != 1:
            result.failures.append(Failure(
                index, f"expected exactly one {step.class_key}, "
                       f"got {len(handles)}"))
        else:
            actual = target.read_attribute(handles[0], step.attribute)
            if actual != step.value:
                result.failures.append(Failure(
                    index, f"only {step.class_key}.{step.attribute}: "
                           f"expected {step.value!r}, got {actual!r}"))
    else:
        raise TypeError(f"unknown step {type(step).__name__}")


def run_suite(cases: list[TestCase], target: Target) -> list[TestResult]:
    """Run several cases, each on a *fresh* copy of the target platform.

    The caller supplies a factory-like target; since platform engines are
    stateful, each case re-instantiates via ``type(...)`` is not possible
    generically, so this helper simply runs cases in sequence on the
    given target **only when the cases are independent by construction**.
    Prefer :func:`repro.verify.conformance.check_conformance`, which
    rebuilds targets per case.
    """
    return [run_case(case, target) for case in cases]
