"""Execution targets — one protocol over every platform.

A :class:`Target` adapts one execution platform (the abstract model
runtime, the generated-C architecture, the generated-VHDL architecture)
to the uniform surface the test runner drives.  The point of the
adapter being thin is the point of the whole profile: the platforms
already agree on population, signals and time because the compiler
preserved the defined behaviour.
"""

from __future__ import annotations

from repro.cosim.config import CoSimConfig
from repro.cosim.engine import US_TO_NS, CoSimMachine
from repro.cosim.faults import FaultPlan
from repro.marks.model import MarkSet
from repro.marks.partition import marks_for_partition
from repro.mda.compiler import Build, ModelCompiler
from repro.mda.csim import CSoftwareMachine
from repro.mda.vsim import VHardwareMachine
from repro.runtime.scheduler import Scheduler
from repro.runtime.simulator import Simulation
from repro.xuml.model import Model


class Target:
    """Uniform driving surface over one platform instance."""

    name = "target"

    def __init__(self, engine):
        self._engine = engine

    # population
    def create_instance(self, class_key: str, **attributes) -> int:
        return self._engine.create_instance(class_key, **attributes)

    def relate(self, left: int, right: int, association: str, phrase=None):
        return self._engine.relate(left, right, association, phrase)

    def instances_of(self, class_key: str):
        return self._engine.instances_of(class_key)

    # stimulus
    def inject(self, handle: int, label: str, params=None, delay_us: int = 0):
        return self._engine.inject(handle, label, params, delay=delay_us)

    def send_creation(self, class_key: str, label: str, params=None):
        return self._engine.send_creation(class_key, label, params)

    # execution
    def run_to_quiescence(self, max_steps: int = 1_000_000):
        return self._engine.run_to_quiescence(max_steps)

    def run_until(self, time_us: int):
        return self._engine.run_until(time_us)

    # observation
    def state_of(self, handle: int):
        return self._engine.state_of(handle)

    def read_attribute(self, handle: int, name: str):
        return self._engine.read_attribute(handle, name)

    @property
    def trace(self):
        return self._engine.trace

    @property
    def engine(self):
        return self._engine


class AbstractTarget(Target):
    """The model itself, executed by :class:`repro.runtime.Simulation`."""

    name = "abstract-model"

    def __init__(self, model: Model, scheduler: Scheduler | None = None):
        super().__init__(Simulation(model, scheduler=scheduler))
        if scheduler is not None:
            self.name = f"abstract-model/{scheduler.name}"


class CSimTarget(Target):
    """The generated C, executed by the single-task kernel semantics."""

    name = "generated-c"

    def __init__(self, build: Build):
        super().__init__(CSoftwareMachine(build.manifest))


class VSimTarget(Target):
    """The generated VHDL, executed by the clocked FSM semantics."""

    name = "generated-vhdl"

    def __init__(self, build: Build, clock_mhz: int = 100):
        super().__init__(VHardwareMachine(build.manifest, clock_mhz))

    def run_until(self, time_us: int):
        return self._engine.run_until(time_us)


class CoSimTarget(Target):
    """The timed co-simulation platform, optionally under fault injection.

    ``run_to_quiescence`` gives each run step a bounded *sim-time*
    budget instead of running to true quiescence: a corrupted parameter
    can legally ask for an absurdly long behaviour (a four-billion
    second cook), and chaos runs must terminate anyway.  The budget is
    generous enough that every fault-free suite finishes unchanged.
    """

    name = "cosim"

    def __init__(self, build: Build, config: CoSimConfig | None = None,
                 fault_plan: FaultPlan | None = None,
                 quiescence_budget_s: int = 3_600):
        super().__init__(CoSimMachine(build, config, fault_plan))
        self._budget_us = quiescence_budget_s * 1_000_000
        if fault_plan is not None:
            self.name = "cosim/faulted"

    def run_to_quiescence(self, max_steps: int = 1_000_000):
        machine = self._engine
        horizon_us = machine.now // US_TO_NS + self._budget_us
        return machine.run(horizon_us=horizon_us, max_dispatches=max_steps)

    def run_until(self, time_us: int):
        return self._engine.run(horizon_us=time_us)


def standard_targets(model: Model, marks: MarkSet | None = None,
                     store=None) -> list[Target]:
    """The three platforms every model is verified on (E3).

    The C target compiles the model all-software, the VHDL target
    all-hardware — each architecture then executes *every* class, which
    is the strongest conformance statement a single target can make.

    With *store* (an :class:`repro.build.ArtifactStore`) the builds come
    from the incremental compiler, so suites that rebuild targets per
    case reuse cached artifacts instead of recompiling from scratch.
    """
    component = model.components[0]
    if marks is None:
        sw_marks = marks_for_partition(component, ())
        hw_marks = marks_for_partition(
            component, tuple(component.class_keys))
    else:
        sw_marks = hw_marks = marks
    if store is None:
        compiler = ModelCompiler(model)
    else:
        from repro.build import IncrementalCompiler

        compiler = IncrementalCompiler(model, store=store)
    sw_build = compiler.compile(sw_marks)
    hw_build = compiler.compile(hw_marks)
    return [
        AbstractTarget(model),
        CSimTarget(sw_build),
        VSimTarget(hw_build),
    ]
