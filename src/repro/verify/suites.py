"""Formal test suites for the catalog models.

Each suite expresses the model's *requirements* (cook for N seconds,
serve every hall call, checksum correctly, ...) as platform-independent
test cases — the artifacts paper section 2 says exist before any design
detail is added.  E3 runs every suite on every platform.
"""

from __future__ import annotations

from repro.models.checksum import fletcher_reference

from .testcase import TestCase


def microwave_suite() -> list[TestCase]:
    full_cook = (
        TestCase("cook-runs-to-complete")
        .create("oven", "MO", oven_id=1)
        .create("tube", "PT", tube_id=1)
        .relate("oven", "tube", "R1")
        .inject("oven", "MO1", {"seconds": 3})
        .run()
        .expect_state("oven", "Complete")
        .expect_state("tube", "Off")
        .expect_attr("oven", "remaining_seconds", 0)
        .expect_attr("oven", "cycles_run", 1)
        .expect_attr("oven", "light_on", False)
        .expect_attr("tube", "energize_count", 1)
    )
    door_pause = (
        TestCase("door-open-pauses-cooking")
        .create("oven", "MO", oven_id=1)
        .create("tube", "PT", tube_id=1)
        .relate("oven", "tube", "R1")
        .inject("oven", "MO1", {"seconds": 10})
        .advance(2_500_000)            # 2.5 s into a 10 s cook
        .inject("oven", "MO2")         # open the door
        .run()
        .expect_state("oven", "Paused")
        .expect_state("tube", "Off")
        .inject("oven", "MO3")         # close it again
        .run()
        .expect_state("oven", "Complete")
    )
    reuse = (
        TestCase("second-cook-from-complete")
        .create("oven", "MO", oven_id=1)
        .inject("oven", "MO1", {"seconds": 1})
        .run()
        .expect_state("oven", "Complete")
        .inject("oven", "MO1", {"seconds": 2})
        .run()
        .expect_attr("oven", "cycles_run", 2)
        .expect_state("oven", "Complete")
    )
    idle_ignores = (
        TestCase("idle-ignores-door-traffic")
        .create("oven", "MO", oven_id=1)
        .inject("oven", "MO2")
        .inject("oven", "MO3")
        .run()
        .expect_state("oven", "Idle")
        .expect_attr("oven", "cycles_run", 0)
    )
    zero_seconds = (
        TestCase("zero-second-cook-completes-immediately")
        .create("oven", "MO", oven_id=1)
        .inject("oven", "MO1", {"seconds": 0})
        .run()
        .expect_state("oven", "Complete")
        .expect_attr("oven", "remaining_seconds", 0)
    )
    complete_then_open = (
        TestCase("door-open-from-complete-resets")
        .create("oven", "MO", oven_id=1)
        .inject("oven", "MO1", {"seconds": 1})
        .run()
        .inject("oven", "MO2")
        .run()
        .expect_state("oven", "Idle")
        .expect_attr("oven", "light_on", False)
    )
    return [full_cook, door_pause, reuse, idle_ignores, zero_seconds,
            complete_then_open]


def trafficlight_suite() -> list[TestCase]:
    phases = (
        TestCase("phases-cycle")
        .create("tc", "TC", controller_id=1)
        .inject("tc", "T1")              # leave Off
        .advance(36_000_000)             # 30 s green + 5 s yellow + 1
        .expect_state("tc", "AllRedToEW")
        .advance(38_000_000)
        .expect_state("tc", "EWGreen")
    )
    ped_cut = (
        TestCase("pedestrian-cuts-green")
        .create("tc", "TC", controller_id=1)
        .create("pb", "PB", button_id=1)
        .relate("pb", "tc", "R1")
        .inject("tc", "T1")
        .inject("pb", "PB1", delay_us=10_000_000)   # mid NS green
        .advance(10_500_000)                        # cut green: 1 s left
        .expect_state("tc", "NSGreenCut")
        .expect_attr("tc", "ped_services", 1)
        .advance(12_000_000)                        # 11 s: yellow began
        .expect_state("tc", "NSYellow")
        .advance(17_000_000)                        # 16-18 s: all-red
        .expect_state("tc", "AllRedToEW")
        .advance(40_000_000)                        # no stale tick: EW
        .expect_state("tc", "EWGreen")              # green holds its 30 s
    )
    debounce = (
        TestCase("button-debounces")
        .create("tc", "TC", controller_id=1)
        .create("pb", "PB", button_id=1)
        .relate("pb", "tc", "R1")
        .inject("tc", "T1")
        .inject("pb", "PB1", delay_us=5_000_000)
        .inject("pb", "PB1", delay_us=5_000_100)   # bounce inside refractory
        .inject("pb", "PB1", delay_us=5_000_200)
        .advance(8_000_000)
        .expect_attr("pb", "requests_sent", 1)
    )
    two_cycles = (
        TestCase("two-full-cycles")
        .create("tc", "TC", controller_id=1)
        .inject("tc", "T1")
        .advance(148_500_000)     # 2 × 74 s + slack for clocked targets
        .expect_attr("tc", "cycles", 3)   # entering the third NS green
        .expect_state("tc", "NSGreen")
    )
    return [phases, ped_cut, debounce, two_cycles]


def packetproc_suite() -> list[TestCase]:
    def pipeline_base(case: TestCase) -> TestCase:
        return (
            case
            .create("mac", "M", mac_id=1)
            .create("cl", "CL", cl_id=1)
            .create("ce", "CE", ce_id=1)
            .create("dma", "D", dma_id=1)
            .create("st", "ST", st_id=1)
            .relate("mac", "cl", "R1")
            .relate("cl", "ce", "R2")
            .relate("cl", "dma", "R3")
            .relate("ce", "dma", "R4")
            .relate("dma", "st", "R5")
            .create("fr0", "FR", flow_id=0)
            .create("fr1", "FR", flow_id=1)
            .create("fr2", "FR", flow_id=2)
            .create("fr3", "FR", flow_id=3)
        )

    one_packet = pipeline_base(TestCase("one-clear-packet"))
    one_packet = (
        one_packet
        .inject("mac", "M1", {"pkt_id": 4, "length": 128})   # flow 0: clear
        .run()
        .expect_attr("st", "packets", 1)
        .expect_attr("ce", "encrypted", 0)
        .expect_attr("dma", "transfers", 1)
        .expect_attr("fr0", "packets", 1)
        .expect_attr("fr0", "bytes", 128)
    )
    crypto_packet = pipeline_base(TestCase("one-crypto-packet"))
    crypto_packet = (
        crypto_packet
        .inject("mac", "M1", {"pkt_id": 1, "length": 256})   # flow 1: crypto
        .run()
        .expect_attr("ce", "encrypted", 1)
        .expect_attr("ce", "rounds_done", 17)
        .expect_attr("st", "packets", 1)
        .expect_attr("fr1", "packets", 1)
    )
    burst = pipeline_base(TestCase("burst-of-eight"))
    for pkt in range(1, 9):
        burst = burst.inject("mac", "M1", {"pkt_id": pkt, "length": 64})
    burst = (
        burst
        .run()
        .expect_attr("st", "packets", 8)
        .expect_attr("ce", "encrypted", 4)
        .expect_attr("mac", "rx_count", 8)
        .expect_attr("mac", "rx_bytes", 512)
    )
    jumbo = pipeline_base(TestCase("jumbo-packet-round-count"))
    jumbo = (
        jumbo
        .inject("mac", "M1", {"pkt_id": 3, "length": 1504})  # flow 3: crypto
        .run()
        # rounds = length/16 + 1 = 95, exercising the bounded loop
        .expect_attr("ce", "rounds_done", 95)
        .expect_attr("dma", "bytes_moved", 1504)
        .expect_attr("fr3", "bytes", 1504)
    )
    return [one_packet, crypto_packet, burst, jumbo]


def elevator_suite() -> list[TestCase]:
    serve = (
        TestCase("single-call-served")
        .create("bank", "B", bank_id=1)
        .create("car", "E", car_id=1)
        .relate("bank", "car", "R1")
        .inject("bank", "B1", {"floor": 5, "going_up": True})
        .run()
        .expect_state("car", "Idle")
        .expect_attr("car", "current_floor", 5)
        .expect_attr("car", "trips", 1)
        .expect_count("CA", 0)
    )
    drop = (
        TestCase("no-idle-car-drops-call")
        .create("bank", "B", bank_id=1)
        .create("car", "E", car_id=1)
        .relate("bank", "car", "R1")
        .inject("bank", "B1", {"floor": 9, "going_up": True})
        .inject("bank", "B1", {"floor": 2, "going_up": False},
                delay_us=1_000_000)     # car is still travelling
        .run()
        .expect_attr("bank", "calls_dropped", 1)
        .expect_attr("car", "trips", 1)
        .expect_count("CA", 0)
    )
    two_cars = (
        TestCase("two-cars-split-work")
        .create("bank", "B", bank_id=1)
        .create("car1", "E", car_id=1)
        .create("car2", "E", car_id=2)
        .relate("bank", "car1", "R1")
        .relate("bank", "car2", "R1")
        .inject("bank", "B1", {"floor": 3, "going_up": True})
        .inject("bank", "B1", {"floor": 7, "going_up": True},
                delay_us=100_000)
        .run()
        .expect_attr("car1", "trips", 1)
        .expect_attr("car2", "trips", 1)
        .expect_count("CA", 0)
    )
    downward = (
        TestCase("downward-travel")
        .create("bank", "B", bank_id=1)
        .create("car", "E", car_id=1, current_floor=9, destination=9)
        .relate("bank", "car", "R1")
        .inject("bank", "B1", {"floor": 2, "going_up": False})
        .run()
        .expect_attr("car", "current_floor", 2)
        .expect_attr("car", "floors_travelled", 7)
        .expect_count("CA", 0)
    )
    return [serve, drop, two_cars, downward]


def checksum_suite() -> list[TestCase]:
    single = (
        TestCase("single-job-correct")
        .create("engine", "AC", engine_id=1)
        .creation_event("J", "J0", {"job_id": 1, "length": 100, "seed": 7})
        .run()
        .expect_count("J", 1)
    )
    # the result value is checked via attributes on the (single) job,
    # which needs a name; create the job eagerly through a second engine
    # stimulus pattern instead: expected value asserted by formula
    expected = fletcher_reference(100, 7)
    single = single  # count-checked above; value checked below per-job
    value = (
        TestCase("job-value-matches-reference")
        .create("engine", "AC", engine_id=1)
        .creation_event("J", "J0", {"job_id": 9, "length": 100, "seed": 7})
        .run()
    )
    # jobs are created by the platform; bind by select-like expectation:
    # the only J instance is handle-independent, so expect via count and
    # engine bookkeeping, then check the attribute through a named probe
    value = (
        value
        .expect_count("J", 1)
        .expect_attr_on_only("J", "result", expected)
        .expect_attr_on_only("J", "done", True)
    )
    two_jobs = (
        TestCase("two-jobs-serialized")
        .create("engine", "AC", engine_id=1)
        .creation_event("J", "J0", {"job_id": 1, "length": 10, "seed": 0})
        .creation_event("J", "J0", {"job_id": 2, "length": 20, "seed": 0})
        .run()
        .expect_count("J", 2)
        .expect_attr("engine", "jobs_done", 2)
    )
    empty_job = (
        TestCase("zero-length-job")
        .create("engine", "AC", engine_id=1)
        .creation_event("J", "J0", {"job_id": 1, "length": 0, "seed": 100})
        .run()
        .expect_attr_on_only("J", "result", fletcher_reference(0, 100))
        .expect_attr_on_only("J", "done", True)
    )
    return [single, value, two_jobs, empty_job]


SUITES = {
    "microwave": microwave_suite,
    "trafficlight": trafficlight_suite,
    "packetproc": packetproc_suite,
    "elevator": elevator_suite,
    "checksum": checksum_suite,
}


def suite_for(model_name: str) -> list[TestCase]:
    try:
        return SUITES[model_name]()
    except KeyError:
        raise KeyError(f"no suite for model {model_name!r}") from None
