"""Model-level verification (paper section 2).

* :class:`TestCase` — formal, platform-independent test cases
* :func:`run_case` — execute one case on one :class:`Target`
* :func:`check_conformance` — the E3 matrix: every case on the abstract
  model, the generated C and the generated VHDL, traces compared
* :data:`SUITES` — the formal suites of the catalog models
"""

from .chaos import (
    ChaosCaseResult,
    ChaosPoint,
    ChaosReport,
    chaos_build,
    chaos_sweep,
    default_hardware_for,
    reliability_marks,
)
from .conformance import (
    CaseConformance,
    ConformanceReport,
    check_conformance,
)
from .runner import run_case, run_suite
from .suitefile import (
    SuiteFileError,
    suite_from_dict,
    suite_from_json,
    suite_to_dict,
    suite_to_json,
)
from .suites import SUITES, suite_for
from .targets import (
    AbstractTarget,
    CoSimTarget,
    CSimTarget,
    Target,
    VSimTarget,
    standard_targets,
)
from .testcase import Failure, TestCase, TestResult

__all__ = [
    "AbstractTarget",
    "CSimTarget",
    "CaseConformance",
    "ChaosCaseResult",
    "ChaosPoint",
    "ChaosReport",
    "CoSimTarget",
    "ConformanceReport",
    "Failure",
    "SUITES",
    "SuiteFileError",
    "Target",
    "TestCase",
    "TestResult",
    "VSimTarget",
    "chaos_build",
    "chaos_sweep",
    "check_conformance",
    "default_hardware_for",
    "reliability_marks",
    "run_case",
    "run_suite",
    "standard_targets",
    "suite_for",
    "suite_from_dict",
    "suite_from_json",
    "suite_to_dict",
    "suite_to_json",
]
