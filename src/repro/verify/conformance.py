"""Conformance checking — one test suite, every platform.

Experiment E3's engine: run each formal test case on the abstract model,
the generated-C architecture and the generated-VHDL architecture (fresh
platform instances per case), then compare (a) assertion outcomes and
(b) per-instance behavioural summaries.  A model compiler that preserved
the defined behaviour yields an all-PASS, all-equal matrix — "the model
compiler ... may do [the sequencing] any manner it chooses so long as
the defined behavior is preserved" (paper section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xuml.model import Model

from .runner import run_case
from .targets import standard_targets
from .testcase import TestCase, TestResult


@dataclass
class CaseConformance:
    """One test case's outcome across every platform."""

    case_name: str
    results: list[TestResult] = field(default_factory=list)
    summaries_equal: bool = True

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def conformant(self) -> bool:
        return self.all_passed and self.summaries_equal


@dataclass
class ConformanceReport:
    """The full matrix for one model."""

    model_name: str
    cases: list[CaseConformance] = field(default_factory=list)
    target_names: tuple[str, ...] = ()

    @property
    def conformant(self) -> bool:
        return all(case.conformant for case in self.cases)

    def pass_rate(self) -> float:
        total = sum(len(case.results) for case in self.cases)
        if total == 0:
            return 1.0
        passed = sum(
            1 for case in self.cases for result in case.results
            if result.passed)
        return passed / total

    def render(self) -> str:
        """A paper-style conformance table."""
        lines = [f"conformance of model {self.model_name}:"]
        header = f"{'case':32s} " + " ".join(
            f"{name:>16s}" for name in self.target_names) + "  traces"
        lines.append(header)
        for case in self.cases:
            cells = " ".join(
                f"{'PASS' if result.passed else 'FAIL':>16s}"
                for result in case.results)
            traces = "equal" if case.summaries_equal else "DIVERGE"
            lines.append(f"{case.case_name:32s} {cells}  {traces}")
        verdict = "CONFORMANT" if self.conformant else "NOT CONFORMANT"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def check_conformance(
    model: Model, cases: list[TestCase], include_traces: bool = True,
    store=None,
) -> ConformanceReport:
    """Run *cases* on all standard targets of *model*.

    *store* (an :class:`repro.build.ArtifactStore`) makes the per-case
    target rebuilds hit the artifact cache: the first case pays for the
    compilation, the rest reuse it.
    """
    report = ConformanceReport(model.name)
    names: tuple[str, ...] = ()
    for case in cases:
        # fresh platforms per case (cached artifacts when store given)
        targets = standard_targets(model, store=store)
        names = tuple(target.name for target in targets)
        conformance = CaseConformance(case.name)
        summaries = []
        for target in targets:
            conformance.results.append(run_case(case, target))
            if include_traces:
                summaries.append(target.trace.behavioural_summary())
        if include_traces and summaries:
            first = summaries[0]
            conformance.summaries_equal = all(s == first for s in summaries)
        report.cases.append(conformance)
    report.target_names = names
    return report
