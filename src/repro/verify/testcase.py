"""Model-level test cases.

Paper section 2: "formal test cases can be executed against the model to
verify that requirements have been properly met" — before any design
detail exists.  A :class:`TestCase` is such a formal test: a setup
population, a stimulus script, and assertions over states, attributes
and instance counts.  The same test case object runs unchanged against
the abstract model, the generated-C architecture and the generated-VHDL
architecture (see :mod:`repro.verify.conformance`) — which is the
"execute the model independent of implementation" claim, made checkable.

Steps are plain dataclasses so cases are declarative and printable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CreateStep:
    """Create an instance and bind it to a case-local name."""

    name: str
    class_key: str
    attributes: dict = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class RelateStep:
    """Relate two named instances."""

    left: str
    right: str
    association: str
    phrase: str | None = None


@dataclass(frozen=True)
class InjectStep:
    """Send a signal from the environment to a named instance."""

    name: str
    label: str
    params: dict = field(default_factory=dict, hash=False)
    delay_us: int = 0


@dataclass(frozen=True)
class CreationEventStep:
    """Send a creation event (the instance is born on dispatch)."""

    class_key: str
    label: str
    params: dict = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class RunStep:
    """Run the target to quiescence (bounded)."""

    max_steps: int = 1_000_000


@dataclass(frozen=True)
class AdvanceStep:
    """Advance simulated time to an absolute microsecond mark."""

    time_us: int


@dataclass(frozen=True)
class ExpectState:
    """Assert a named instance's current state."""

    name: str
    state: str


@dataclass(frozen=True)
class ExpectAttr:
    """Assert a named instance's attribute value."""

    name: str
    attribute: str
    value: object


@dataclass(frozen=True)
class ExpectCount:
    """Assert the live population size of a class."""

    class_key: str
    count: int


@dataclass(frozen=True)
class ExpectAttrOnOnly:
    """Assert an attribute on the *sole* live instance of a class.

    Useful for instances born by creation events, which have no
    case-local name.
    """

    class_key: str
    attribute: str
    value: object


Step = (CreateStep | RelateStep | InjectStep | CreationEventStep | RunStep
        | AdvanceStep | ExpectState | ExpectAttr | ExpectCount
        | ExpectAttrOnOnly)


@dataclass
class TestCase:
    """One formal, platform-independent test."""

    #: not a pytest class, despite the (domain-accurate) name
    __test__ = False

    name: str
    steps: list = field(default_factory=list)

    # -- fluent construction ------------------------------------------------

    def create(self, name: str, class_key: str, **attributes) -> "TestCase":
        self.steps.append(CreateStep(name, class_key, attributes))
        return self

    def relate(self, left: str, right: str, association: str,
               phrase: str | None = None) -> "TestCase":
        self.steps.append(RelateStep(left, right, association, phrase))
        return self

    def inject(self, name: str, label: str, params: dict | None = None,
               delay_us: int = 0) -> "TestCase":
        self.steps.append(InjectStep(name, label, params or {}, delay_us))
        return self

    def creation_event(self, class_key: str, label: str,
                       params: dict | None = None) -> "TestCase":
        self.steps.append(CreationEventStep(class_key, label, params or {}))
        return self

    def run(self, max_steps: int = 1_000_000) -> "TestCase":
        self.steps.append(RunStep(max_steps))
        return self

    def advance(self, time_us: int) -> "TestCase":
        self.steps.append(AdvanceStep(time_us))
        return self

    def expect_state(self, name: str, state: str) -> "TestCase":
        self.steps.append(ExpectState(name, state))
        return self

    def expect_attr(self, name: str, attribute: str, value) -> "TestCase":
        self.steps.append(ExpectAttr(name, attribute, value))
        return self

    def expect_count(self, class_key: str, count: int) -> "TestCase":
        self.steps.append(ExpectCount(class_key, count))
        return self

    def expect_attr_on_only(self, class_key: str, attribute: str,
                            value) -> "TestCase":
        self.steps.append(ExpectAttrOnOnly(class_key, attribute, value))
        return self


@dataclass(frozen=True)
class Failure:
    """One assertion that did not hold."""

    step_index: int
    message: str

    def __str__(self) -> str:
        return f"step {self.step_index}: {self.message}"


@dataclass
class TestResult:
    """Outcome of one test case on one execution target."""

    __test__ = False

    case_name: str
    target_name: str
    failures: list[Failure] = field(default_factory=list)
    error: str | None = None

    @property
    def passed(self) -> bool:
        return not self.failures and self.error is None

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        extra = ""
        if self.error:
            extra = f" (error: {self.error})"
        elif self.failures:
            extra = f" ({len(self.failures)} failed assertions)"
        return f"[{status}] {self.case_name} on {self.target_name}{extra}"
