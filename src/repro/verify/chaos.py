"""Chaos testing — the golden suites under injected bus faults (E8).

The paper's pitch is that the generated system is *correct by
construction*; experiment E8 asks how far that correctness survives a
hostile platform.  A :func:`chaos_sweep` compiles one catalog model
twice — once with reliability marks (CRC framing + bounded retransmit),
once without — and replays the model's own formal conformance suite on
the co-simulated SoC while the bus drops, corrupts, duplicates and
delays frames at a swept rate.

The claim under test: with protection marked, every case still passes
and the trace stays causally clean at fault rates that visibly maul the
unprotected build; without protection the platform degrades *gracefully*
(losses are counted, nothing ever raises).  Every fault in a sweep is a
pure function of one seed, so a failing point reproduces exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.cosim.config import CoSimConfig
from repro.cosim.faults import FaultPlan, FaultStats
from repro.marks.model import MarkSet
from repro.marks.partition import marks_for_partition, signal_flows
from repro.mda.compiler import Build, ModelCompiler
from repro.models import build_model
from repro.runtime.causality import check_causality, check_receiver_fifo
from repro.xuml.component import Component
from repro.xuml.model import Model

from .runner import run_case
from .suites import suite_for
from .targets import CoSimTarget

#: the default fault-rate sweep of experiment E8
DEFAULT_RATES: tuple[float, ...] = (0.0, 0.01, 0.02, 0.05)


def default_hardware_for(model: Model) -> tuple[str, ...]:
    """The receiver of the model's first cross-class signal flow.

    That puts at least one marked boundary under the sweep — chaos on a
    bus no message crosses would test nothing.
    """
    component = model.components[0]
    for flow in signal_flows(model, component):
        if flow.sender_class != flow.receiver_class:
            return (flow.receiver_class,)
    return (component.class_keys[0],)


def reliability_marks(component: Component, hardware: tuple[str, ...],
                      crc: str = "crc16", max_retries: int = 3,
                      backoff_ns: int = 2_000) -> MarkSet:
    """Partition marks plus full protection on every receiver class."""
    marks = marks_for_partition(component, tuple(hardware))
    for key in component.class_keys:
        path = f"{component.name}.{key}"
        marks.set(path, "crc", crc)
        marks.set(path, "maxRetries", max_retries)
        marks.set(path, "retryBackoffNs", backoff_ns)
        marks.set(path, "isCritical", True)
    return marks


@dataclass
class ChaosCaseResult:
    """One formal test case replayed under one fault rate."""

    case: str
    passed: bool
    error: str | None
    causality_violations: int
    fifo_reorderings: int
    fault_stats: FaultStats
    makespan_ns: int
    bus_bytes: int

    @property
    def clean(self) -> bool:
        """Conformant: assertions held, nothing raised, causality green."""
        return self.passed and self.error is None \
            and self.causality_violations == 0


@dataclass
class ChaosPoint:
    """All suite cases at one fault rate."""

    rate: float
    cases: list[ChaosCaseResult] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return all(case.clean for case in self.cases)

    @property
    def crashed(self) -> bool:
        return any(case.error is not None for case in self.cases)

    @property
    def fault_stats(self) -> FaultStats:
        total = FaultStats()
        for case in self.cases:
            total.add(case.fault_stats)
        return total

    @property
    def causality_violations(self) -> int:
        return sum(case.causality_violations for case in self.cases)

    @property
    def fifo_reorderings(self) -> int:
        return sum(case.fifo_reorderings for case in self.cases)

    @property
    def bus_bytes(self) -> int:
        return sum(case.bus_bytes for case in self.cases)

    @property
    def mean_makespan_ns(self) -> float:
        if not self.cases:
            return 0.0
        return sum(case.makespan_ns for case in self.cases) / len(self.cases)


@dataclass
class ChaosReport:
    """One full sweep of one build (protected or not) over fault rates."""

    model: str
    protected: bool
    seed: int
    hardware: tuple[str, ...]
    points: list[ChaosPoint] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return all(point.conformant for point in self.points)

    @property
    def crashed(self) -> bool:
        return any(point.crashed for point in self.points)

    def render(self) -> str:
        flavor = "protected" if self.protected else "unprotected"
        lines = [
            f"chaos sweep: {self.model} ({flavor}, "
            f"hw={'/'.join(self.hardware)}, seed={self.seed})",
            f"{'rate':>6s} {'cases':>7s} {'caus':>5s} {'inj':>5s} "
            f"{'det':>5s} {'rexm':>5s} {'recov':>5s} {'lost':>5s} "
            f"{'corr':>5s} {'bus B':>8s} {'mean mk':>10s}",
        ]
        for point in self.points:
            stats = point.fault_stats
            ok = sum(1 for c in point.cases if c.clean)
            lines.append(
                f"{point.rate:6.3f} {ok:3d}/{len(point.cases):<3d} "
                f"{point.causality_violations:5d} {stats.injected:5d} "
                f"{stats.detected:5d} {stats.retransmissions:5d} "
                f"{stats.recovered:5d} {stats.lost:5d} "
                f"{stats.delivered_corrupted:5d} {point.bus_bytes:8d} "
                f"{point.mean_makespan_ns / 1e6:8.2f}ms"
            )
        verdict = "CONFORMANT" if self.conformant else "DEGRADED"
        if self.crashed:
            verdict += " (CRASHED)"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def case_seed(seed: int, rate: float, case_name: str) -> int:
    """The per-case fault seed — a pure function of the sweep seed."""
    return zlib.crc32(f"{seed}:{rate}:{case_name}".encode())


def chaos_build(model_name: str, hardware: tuple[str, ...] | None = None,
                protected: bool = True, crc: str = "crc16",
                max_retries: int = 3, backoff_ns: int = 2_000) -> Build:
    """Compile one catalog model with or without reliability marks."""
    model = build_model(model_name)
    component = model.components[0]
    hardware = tuple(hardware) if hardware else default_hardware_for(model)
    if protected:
        marks = reliability_marks(component, hardware, crc=crc,
                                  max_retries=max_retries,
                                  backoff_ns=backoff_ns)
    else:
        marks = marks_for_partition(component, hardware)
    return ModelCompiler(model).compile(marks)


def chaos_sweep(model_name: str, hardware: tuple[str, ...] | None = None,
                rates: tuple[float, ...] = DEFAULT_RATES, seed: int = 7,
                protected: bool = True,
                config: CoSimConfig | None = None) -> ChaosReport:
    """Replay the model's formal suite at each fault rate."""
    model = build_model(model_name)
    hardware = tuple(hardware) if hardware else default_hardware_for(model)
    build = chaos_build(model_name, hardware, protected=protected)
    suite = suite_for(model_name)
    report = ChaosReport(model=model_name, protected=protected,
                         seed=seed, hardware=hardware)
    for rate in rates:
        point = ChaosPoint(rate=rate)
        for case in suite:
            plan = None
            if rate > 0:
                plan = FaultPlan.uniform(
                    case_seed(seed, rate, case.name), rate)
            target = CoSimTarget(build, config, plan)
            result = run_case(case, target)
            machine = target.engine
            events = machine.trace.events
            # machine.now sits at the quiescence-budget horizon; the last
            # trace timestamp is when work actually stopped
            makespan = events[-1].time if events else 0
            point.cases.append(ChaosCaseResult(
                case=case.name,
                passed=result.passed,
                error=result.error,
                causality_violations=len(check_causality(machine.trace)),
                fifo_reorderings=len(check_receiver_fifo(machine.trace)),
                fault_stats=machine.fault_stats,
                makespan_ns=makespan,
                bus_bytes=machine.bus.stats.bytes_moved,
            ))
        report.points.append(point)
    return report
