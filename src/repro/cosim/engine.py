"""The co-simulation engine.

"Once the prototype runs, it is possible to measure the performance,
which may require changing the partition" (paper section 1).  This
engine is that prototype: it executes a compiled :class:`Build` as a
timed discrete-event simulation of the SoC platform —

* one shared CPU serializes every software-class dispatch;
* each hardware-class instance is its own concurrent resource;
* boundary signals travel over the shared :class:`~repro.cosim.bus.Bus`,
  paying arbitration and per-byte transfer, packed through the generated
  interface codec (so cross-partition traffic exercises the generated
  message layouts on every hop);
* action cost is the *dynamically executed* IR operation count times the
  platform's per-op cost, so a loop over a long packet really costs more
  than a short one.

Changing the partition means flipping marks and recompiling — nothing in
the stimulus or the measurement code changes, which is precisely the
workflow the paper advertises.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.mda.archrt import TargetMachine
from repro.mda.compiler import Build
from repro.mda.interfacegen import InterfaceCodec
from repro.runtime.events import InstanceQueue, SignalInstance

from .bus import Bus, BusRequest
from .config import CoSimConfig

#: model time (microseconds) to platform time (nanoseconds)
US_TO_NS = 1_000


class CoSimError(Exception):
    """Co-simulation setup or execution failure."""


@dataclass
class ResourceStats:
    """Busy accounting for one execution resource."""

    name: str
    busy_ns: int = 0
    dispatches: int = 0

    def utilization(self, horizon_ns: int) -> float:
        if horizon_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / horizon_ns)


class CoSimMachine(TargetMachine):
    """Timed execution of one build on the modelled SoC platform."""

    def __init__(self, build: Build, config: CoSimConfig | None = None):
        super().__init__(build.manifest)
        self.build = build
        self.config = (config or CoSimConfig()).validated()
        self.partition = build.partition
        self.bus = Bus(self.config)
        self._codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        # timed event structures (self.pool is unused here)
        self._heap: list[tuple[int, int, int, object]] = []
        self._heap_seq = 0
        self._queues: dict[int, InstanceQueue] = {}
        self._creation_queue: list[SignalInstance] = []
        self._cpu_free_at = 0
        self._hw_free_at: dict[int, int] = {}
        self._emit_buffer: list[tuple[SignalInstance, int]] | None = None
        self.cpu_stats = ResourceStats("cpu")
        self.hw_stats: dict[str, ResourceStats] = {
            key: ResourceStats(f"hw:{key}")
            for key in self.partition.hardware_classes
        }
        self.bus_messages_sent = 0
        #: observers: callables (time_ns, signal) for sent/consumed signals
        self.on_sent: list = []
        self.on_consumed: list = []

    # -- sides ------------------------------------------------------------------

    def side_of_class(self, class_key: str) -> str:
        return self.partition.side_of(class_key)

    def _resource_free_at(self, handle: int, class_key: str) -> int:
        if self.side_of_class(class_key) == "sw":
            return self._cpu_free_at
        return self._hw_free_at.get(handle, 0)

    # -- signal plumbing (overrides the untimed pool) ------------------------------

    def _enqueue(self, signal: SignalInstance, delay: int) -> None:
        if self._emit_buffer is not None:
            self._emit_buffer.append((signal, delay))
            return
        self._route(signal, self.now + delay * US_TO_NS)

    def _route(self, signal: SignalInstance, ready_ns: int) -> None:
        """Send *signal* towards its receiver, via the bus if it crosses."""
        for observer in self.on_sent:
            observer(ready_ns, signal)
        sender_side = None
        if signal.sender_handle is not None:
            sender_side = self.side_of_class(
                self.class_of(signal.sender_handle))
        receiver_side = self.side_of_class(signal.class_key)
        crosses = sender_side is not None and sender_side != receiver_side
        if not crosses:
            self._push_heap(ready_ns, "arrival", signal)
            return
        message = self.build.interface.message_for(
            signal.class_key, signal.label)
        # pack through the generated layout: the payload a real bus carries
        values = {"target_instance": signal.target_handle or 0}
        values.update({
            name: self._bus_encode(signal.params.get(name), tag)
            for name, tag, _o, _w in self._codec.layouts[message.name][2]
            if name != "target_instance"
        })
        payload = self._codec.pack(message.name, values)
        self.bus_messages_sent += 1
        self.bus.request(BusRequest(
            ready_at=ready_ns,
            sequence=signal.sequence,
            message_id=message.message_id,
            payload_bytes=len(payload),
            sender_side=sender_side,
            deliver=lambda s=signal: self._push_heap_now("arrival", s),
        ))
        self._push_heap(ready_ns, "bus_poll", None)

    def _bus_encode(self, value, tag: str):
        if value is None:
            return 0
        if tag.startswith("enum:"):
            enum_name = tag.split(":", 1)[1]
            return self.manifest.enums[enum_name].index(value) \
                if isinstance(value, str) else int(value)
        if tag.startswith("inst_ref"):
            return int(value) if value else 0
        return value

    def _push_heap(self, time_ns: int, kind: str, payload) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (time_ns, self._heap_seq, kind, payload))

    def _push_heap_now(self, kind: str, payload) -> None:
        self._push_heap(self.now, kind, payload)

    # -- the discrete-event loop -----------------------------------------------------

    def run(self, horizon_us: int | None = None,
            max_dispatches: int = 2_000_000) -> int:
        """Run to quiescence (or to the horizon).  Returns dispatch count."""
        horizon_ns = None if horizon_us is None else horizon_us * US_TO_NS
        dispatches = 0
        while dispatches < max_dispatches:
            advanced = self._drain_heap(horizon_ns)
            started = self._start_services(horizon_ns)
            dispatches += started
            if started or advanced:
                continue
            next_time = self._next_event_time()
            if next_time is None:
                break
            if horizon_ns is not None and next_time > horizon_ns:
                break
            self.now = max(self.now, next_time)
        else:
            raise CoSimError(f"exceeded {max_dispatches} dispatches")
        if horizon_ns is not None:
            self.now = max(self.now, horizon_ns)
        return dispatches

    def _next_event_time(self) -> int | None:
        times = []
        if self._heap:
            times.append(self._heap[0][0])
        bus_next = self.bus.next_ready_time()
        if bus_next is not None:
            times.append(bus_next)
        for handle, queue in self._queues.items():
            if queue:
                class_key = self._class_of.get(handle)
                if class_key is None:
                    continue
                times.append(self._resource_free_at(handle, class_key))
        if self._creation_queue:
            times.append(self._cpu_free_at)
        return min(times) if times else None

    def _drain_heap(self, horizon_ns) -> bool:
        advanced = False
        while self._heap and self._heap[0][0] <= self.now:
            _t, _s, kind, payload = heapq.heappop(self._heap)
            if kind == "arrival":
                self._deliver(payload)
                advanced = True
            elif kind == "bus_poll":
                granted = self.bus.grant(self.now)
                while granted is not None:
                    delivery, request = granted
                    self._push_heap(delivery, "bus_deliver", request)
                    granted = self.bus.grant(self.now)
                advanced = True
            elif kind == "bus_deliver":
                payload.deliver()
                # the bus may have more queued work now that it is free
                self._push_heap_now("bus_poll", None)
                advanced = True
        return advanced

    def _deliver(self, signal: SignalInstance) -> None:
        if signal.is_creation:
            self._creation_queue.append(signal)
            return
        if signal.target_handle not in self._class_of:
            return  # receiver died in flight
        queue = self._queues.get(signal.target_handle)
        if queue is None:
            queue = InstanceQueue()
            self._queues[signal.target_handle] = queue
        queue.push(signal)

    def _start_services(self, horizon_ns) -> int:
        started = 0
        # hardware instances are independent resources: start any that can
        for handle in sorted(self._queues):
            queue = self._queues[handle]
            if not queue:
                continue
            class_key = self._class_of.get(handle)
            if class_key is None or self.side_of_class(class_key) != "hw":
                continue
            if self._hw_free_at.get(handle, 0) <= self.now:
                self._service(handle, class_key, queue.pop())
                started += 1
        # the single CPU: at most one software dispatch per pass
        if self._cpu_free_at <= self.now:
            chosen = self._choose_software()
            if chosen is not None:
                handle, signal = chosen
                class_key = signal.class_key
                self._service(handle, class_key, signal)
                started += 1
        return started

    def _choose_software(self):
        """kernel order: global self-first, then send order (plus creations)."""
        candidates = []
        for handle in sorted(self._queues):
            queue = self._queues[handle]
            if not queue:
                continue
            class_key = self._class_of.get(handle)
            if class_key is None or self.side_of_class(class_key) != "sw":
                continue
            head = queue.peek()
            candidates.append(((not head.is_self_directed, head.sequence),
                               handle, queue))
        creation = None
        for signal in self._creation_queue:
            if self.side_of_class(signal.class_key) == "sw":
                creation = signal
                break
        if creation is not None:
            candidates.append((((True, creation.sequence)), None, None))
        if not candidates:
            # hardware creation events are dispatched by the CPU-side
            # configuration master too (instance banks are provisioned
            # by software), so fall back to any creation
            if self._creation_queue:
                signal = self._creation_queue.pop(0)
                return (None, signal)
            return None
        candidates.sort(key=lambda c: c[0])
        _key, handle, queue = candidates[0]
        if handle is None:
            self._creation_queue.remove(creation)
            return (None, creation)
        return (handle, queue.pop())

    def _service(self, handle, class_key: str, signal: SignalInstance) -> None:
        side = self.side_of_class(class_key)
        ops_before = self.ops_executed
        self._emit_buffer = []
        start = self.now
        for observer in self.on_consumed:
            observer(start, signal)
        try:
            self.dispatch(signal)
        finally:
            emitted = self._emit_buffer
            self._emit_buffer = None
        ops = self.ops_executed - ops_before
        if side == "sw":
            duration = self.config.sw_dispatch_ns + ops * self.config.sw_ns_per_op
            self._cpu_free_at = start + duration
            self.cpu_stats.busy_ns += duration
            self.cpu_stats.dispatches += 1
        else:
            duration = self.config.hw_dispatch_ns + ops * self.config.hw_ns_per_op
            # creation events target a fresh handle; charge its bank
            owner = signal.target_handle if signal.target_handle is not None \
                else handle
            if owner is not None:
                self._hw_free_at[owner] = start + duration
            stats = self.hw_stats.get(class_key)
            if stats is not None:
                stats.busy_ns += duration
                stats.dispatches += 1
        end = start + duration
        for emitted_signal, delay in emitted:
            self._route(emitted_signal, end + delay * US_TO_NS)

    def _dispatch_creation(self, signal: SignalInstance) -> None:
        super()._dispatch_creation(signal)

    # -- measurement helpers ------------------------------------------------------

    def utilization_report(self) -> dict[str, float]:
        horizon = max(self.now, 1)
        report = {"cpu": self.cpu_stats.utilization(horizon),
                  "bus": self.bus.stats.utilization(horizon)}
        for key, stats in self.hw_stats.items():
            report[f"hw:{key}"] = stats.utilization(horizon)
        return report
