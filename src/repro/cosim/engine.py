"""The co-simulation engine.

"Once the prototype runs, it is possible to measure the performance,
which may require changing the partition" (paper section 1).  This
engine is that prototype: it executes a compiled :class:`Build` as a
timed discrete-event simulation of the SoC platform —

* one shared CPU serializes every software-class dispatch;
* each hardware-class instance is its own concurrent resource;
* boundary signals travel over the shared :class:`~repro.cosim.bus.Bus`,
  paying arbitration and per-byte transfer, packed through the generated
  interface codec (so cross-partition traffic exercises the generated
  message layouts on every hop);
* action cost is the *dynamically executed* IR operation count times the
  platform's per-op cost, so a loop over a long packet really costs more
  than a short one.

Changing the partition means flipping marks and recompiling — nothing in
the stimulus or the measurement code changes, which is precisely the
workflow the paper advertises.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

from repro.mda.archrt import ArchError, TargetMachine
from repro.mda.compiler import Build
from repro.mda.interfacegen import InterfaceCodec, InterfaceError
from repro.obs.metrics import active_registry
from repro.runtime.events import InstanceQueue, SignalInstance

from .bus import Bus, BusRequest
from .config import CoSimConfig
from .faults import NO_FAULT, FaultPlan, FaultStats

#: model time (microseconds) to platform time (nanoseconds)
US_TO_NS = 1_000


class CoSimError(Exception):
    """Co-simulation setup or execution failure."""


@dataclass
class ResourceStats:
    """Busy accounting for one execution resource."""

    name: str
    busy_ns: int = 0
    dispatches: int = 0

    def utilization(self, horizon_ns: int) -> float:
        if horizon_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / horizon_ns)


@dataclass
class _Transfer:
    """Sender-side state of one cross-partition signal on the wire.

    A transfer outlives individual bus requests: every (re)transmission
    of the signal is one attempt of the same transfer, and the receiver
    acks by setting ``done`` (the ack travels on an instantaneous
    sideband — it occupies no bus time and is never faulted, which keeps
    the protocol tractable while still exercising loss, corruption,
    duplication and delay on the data path).
    """

    frame_id: int
    signal: SignalInstance
    message_name: str
    message_id: int
    sender_side: str
    payload: bytes              # packed, unframed
    protected: bool = False
    max_retries: int = 0
    backoff_ns: int = 2_000
    critical: bool = False
    attempts: int = 0
    done: bool = False          # receiver accepted a copy (the "ack")
    lost_counted: bool = False


class CoSimMachine(TargetMachine):
    """Timed execution of one build on the modelled SoC platform."""

    def __init__(self, build: Build, config: CoSimConfig | None = None,
                 fault_plan: FaultPlan | None = None):
        super().__init__(build.manifest)
        self.build = build
        self.config = (config or CoSimConfig()).validated()
        self.partition = build.partition
        self.fault_plan = fault_plan
        self.fault_stats = FaultStats()
        self.bus = Bus(self.config, fault_plan, self.fault_stats)
        self._codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        # resilience protocol state
        self._frame_counter = 0
        self._delivered_frames: set[int] = set()
        self._lost_frames: set[int] = set()
        self._corrupted_sequences: set[int] = set()
        # timed event structures (self.pool is unused here)
        self._heap: list[tuple[int, int, int, object]] = []
        self._heap_seq = 0
        self._queues: dict[int, InstanceQueue] = {}
        self._creation_queue: list[SignalInstance] = []
        self._cpu_free_at = 0
        self._hw_free_at: dict[int, int] = {}
        self._emit_buffer: list[tuple[SignalInstance, int]] | None = None
        self.cpu_stats = ResourceStats("cpu")
        self.hw_stats: dict[str, ResourceStats] = {
            key: ResourceStats(f"hw:{key}")
            for key in self.partition.hardware_classes
        }
        self.bus_messages_sent = 0
        #: observers: callables (time_ns, signal) for sent/consumed signals
        self.on_sent: list = []
        self.on_consumed: list = []
        registry = active_registry()
        if registry is None:
            self._m_routed = None
            self._m_retransmissions = None
            self._m_latency = None
            self._m_service = None
            self._m_sent_ns: dict[int, int] | None = None
        else:
            ns_buckets = (100, 1_000, 10_000, 100_000,
                          1_000_000, 10_000_000, 100_000_000)
            self._m_routed = registry.counter("cosim.signals_routed")
            self._m_retransmissions = registry.counter("cosim.retransmissions")
            self._m_latency = {
                side: registry.histogram(
                    f"cosim.signal_latency_ns.{side}", buckets=ns_buckets)
                for side in ("sw", "hw")
            }
            self._m_service = {
                side: registry.histogram(
                    f"cosim.service_ns.{side}", buckets=ns_buckets)
                for side in ("sw", "hw")
            }
            self._m_sent_ns = {}

    # -- sides ------------------------------------------------------------------

    def side_of_class(self, class_key: str) -> str:
        return self.partition.side_of(class_key)

    def _resource_free_at(self, handle: int, class_key: str) -> int:
        if self.side_of_class(class_key) == "sw":
            return self._cpu_free_at
        return self._hw_free_at.get(handle, 0)

    # -- signal plumbing (overrides the untimed pool) ------------------------------

    def _enqueue(self, signal: SignalInstance, delay: int) -> None:
        if self._emit_buffer is not None:
            self._emit_buffer.append((signal, delay))
            return
        self._route(signal, self.now + delay * US_TO_NS)

    def _route(self, signal: SignalInstance, ready_ns: int) -> None:
        """Send *signal* towards its receiver, via the bus if it crosses."""
        for observer in self.on_sent:
            observer(ready_ns, signal)
        if self._m_routed is not None:
            self._m_routed.inc()
            self._m_sent_ns[signal.sequence] = ready_ns
        sender_side = None
        if signal.sender_handle is not None:
            sender_side = self.side_of_class(
                self.class_of(signal.sender_handle))
        receiver_side = self.side_of_class(signal.class_key)
        crosses = sender_side is not None and sender_side != receiver_side
        if not crosses:
            self._push_heap(ready_ns, "arrival", signal)
            return
        message = self.build.interface.message_for(
            signal.class_key, signal.label)
        # pack through the generated layout: the payload a real bus carries
        values = {"target_instance": signal.target_handle or 0}
        values.update({
            name: self._bus_encode(signal.params.get(name), tag)
            for name, tag, _o, _w in self._codec.layouts[message.name][2]
            if name != "target_instance"
        })
        payload = self._codec.pack(message.name, values)
        self.bus_messages_sent += 1
        self._frame_counter += 1
        frame_spec = self._codec.frames.get(message.name)
        transfer = _Transfer(
            frame_id=self._frame_counter,
            signal=signal,
            message_name=message.name,
            message_id=message.message_id,
            sender_side=sender_side,
            payload=payload,
        )
        if frame_spec is not None:
            transfer.protected = True
            transfer.max_retries = frame_spec.max_retries
            transfer.backoff_ns = frame_spec.retry_backoff_ns
            transfer.critical = frame_spec.critical
        self._send_attempt(transfer, ready_ns)

    def _send_attempt(self, transfer: _Transfer, ready_ns: int) -> None:
        """Put one (re)transmission of *transfer* on the bus."""
        transfer.attempts += 1
        attempt = transfer.attempts
        if transfer.protected:
            wire = self._codec.frame(
                transfer.message_name, transfer.payload, transfer.frame_id)
        else:
            wire = transfer.payload
        request = BusRequest(
            ready_at=ready_ns,
            sequence=transfer.signal.sequence,
            message_id=transfer.message_id,
            payload_bytes=len(wire),
            sender_side=transfer.sender_side,
            deliver=None,
            payload=wire,
            message_name=transfer.message_name,
            attempt=attempt,
        )
        request.deliver = \
            lambda t=transfer, r=request: self._frame_arrived(t, r)
        self.bus.request(request)
        self._push_heap(ready_ns, "bus_poll", None)
        if transfer.protected and transfer.max_retries > 0:
            # ack timeout doubles per attempt (exponential backoff)
            timeout = transfer.backoff_ns << (attempt - 1)
            self._push_heap(ready_ns + timeout, "retry", transfer)

    def _bus_encode(self, value, tag: str):
        if value is None:
            return 0
        if tag.startswith("enum:"):
            enum_name = tag.split(":", 1)[1]
            return self.manifest.enums[enum_name].index(value) \
                if isinstance(value, str) else int(value)
        if tag.startswith("inst_ref"):
            return int(value) if value else 0
        return value

    # -- receiver side of the resilience protocol ---------------------------------

    def _frame_arrived(self, transfer: _Transfer, request: BusRequest) -> None:
        """One bus delivery concluded — apply its fault, if any."""
        fault = request.fault or NO_FAULT
        if fault.drop:
            # the wire ate this copy; protected transfers retry on the
            # ack timeout, unprotected ones are silently lost
            if not transfer.protected:
                self._count_lost(transfer)
            elif transfer.attempts > transfer.max_retries:
                self._count_lost(transfer)   # that was the last attempt
            return
        wire = request.payload
        if fault.corrupt and self.fault_plan is not None:
            wire = self.fault_plan.corrupt_payload(
                wire, request.message_name, request.sequence, request.attempt)
        deliveries = 2 if fault.duplicate else 1
        for _ in range(deliveries):
            if transfer.protected:
                self._accept_frame(transfer, wire)
            else:
                self._deliver_unprotected(transfer, wire, fault.corrupt)

    def _accept_frame(self, transfer: _Transfer, wire: bytes) -> None:
        """CRC check, dedup, ack, and delivery of a protected frame."""
        stats = self.fault_stats
        try:
            payload, _seq = self._codec.deframe(transfer.message_name, wire)
        except InterfaceError:
            stats.detected += 1
            if transfer.attempts > transfer.max_retries:
                self._count_lost(transfer)   # no attempts left to fix it
            return
        if transfer.frame_id in self._delivered_frames:
            stats.duplicates_discarded += 1
            transfer.done = True
            return
        self._delivered_frames.add(transfer.frame_id)
        transfer.done = True
        if transfer.frame_id in self._lost_frames:
            # a copy given up for lost limped in after all: un-count it
            self._lost_frames.discard(transfer.frame_id)
            stats.lost -= 1
            if transfer.critical:
                stats.critical_lost -= 1
            stats.recovered += 1
        elif transfer.attempts > 1:
            stats.recovered += 1
        if payload == transfer.payload:
            self._push_heap_now("arrival", transfer.signal)
            return
        # CRC passed on altered bytes (or an undetected flip): decode it
        decoded = self._decode_signal(transfer, payload)
        if decoded is None:
            stats.detected += 1
            self._count_lost(transfer)
        else:
            stats.delivered_corrupted += 1
            self._corrupted_sequences.add(decoded.sequence)
            self._push_heap_now("arrival", decoded)

    def _deliver_unprotected(self, transfer: _Transfer, wire: bytes,
                             corrupted: bool) -> None:
        """Best-effort delivery: garbage degrades gracefully, never raises."""
        if not corrupted:
            self._push_heap_now("arrival", transfer.signal)
            return
        decoded = self._decode_signal(transfer, wire)
        if decoded is None:
            # malformed beyond decoding: dropped and counted, no exception
            self.fault_stats.detected += 1
            self._count_lost(transfer)
            return
        self.fault_stats.delivered_corrupted += 1
        self._corrupted_sequences.add(decoded.sequence)
        self._push_heap_now("arrival", decoded)

    def _decode_signal(self, transfer: _Transfer,
                       payload: bytes) -> SignalInstance | None:
        """Rebuild the signal from wire bytes; None if it cannot be trusted."""
        try:
            values = self._codec.unpack(transfer.message_name, payload)
        except InterfaceError:
            return None
        target = values.pop("target_instance", 0)
        if target != (transfer.signal.target_handle or 0):
            return None   # misrouted: addresses some other (or no) instance
        params: dict = {}
        for name, tag, _o, _w in self._codec.layouts[transfer.message_name][2]:
            if name == "target_instance":
                continue
            try:
                params[name] = self._bus_decode(values[name], tag)
            except (InterfaceError, KeyError, ValueError):
                return None
        return replace(transfer.signal, params=params)

    def _bus_decode(self, value, tag: str):
        if tag.startswith("enum:"):
            enum_name = tag.split(":", 1)[1]
            literals = self.manifest.enums[enum_name]
            index = int(value)
            if not 0 <= index < len(literals):
                raise InterfaceError(
                    f"enum {enum_name} index {index} out of range")
            return literals[index]
        return value

    def _count_lost(self, transfer: _Transfer) -> None:
        if transfer.done or transfer.lost_counted:
            return
        transfer.lost_counted = True
        self._lost_frames.add(transfer.frame_id)
        self.fault_stats.lost += 1
        if transfer.critical:
            self.fault_stats.critical_lost += 1

    def _push_heap(self, time_ns: int, kind: str, payload) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (time_ns, self._heap_seq, kind, payload))

    def _push_heap_now(self, kind: str, payload) -> None:
        self._push_heap(self.now, kind, payload)

    # -- the discrete-event loop -----------------------------------------------------

    def run(self, horizon_us: int | None = None,
            max_dispatches: int = 2_000_000) -> int:
        """Run to quiescence (or to the horizon).  Returns dispatch count."""
        horizon_ns = None if horizon_us is None else horizon_us * US_TO_NS
        dispatches = 0
        while dispatches < max_dispatches:
            advanced = self._drain_heap(horizon_ns)
            started = self._start_services(horizon_ns)
            dispatches += started
            if started or advanced:
                continue
            next_time = self._next_event_time()
            if next_time is None:
                break
            if horizon_ns is not None and next_time > horizon_ns:
                break
            self.now = max(self.now, next_time)
        else:
            raise CoSimError(f"exceeded {max_dispatches} dispatches")
        if horizon_ns is not None:
            self.now = max(self.now, horizon_ns)
        return dispatches

    def _next_event_time(self) -> int | None:
        times = []
        if self._heap:
            times.append(self._heap[0][0])
        bus_next = self.bus.next_ready_time()
        if bus_next is not None:
            times.append(bus_next)
        for handle, queue in self._queues.items():
            if queue:
                class_key = self._class_of.get(handle)
                if class_key is None:
                    continue
                times.append(self._resource_free_at(handle, class_key))
        if self._creation_queue:
            times.append(self._cpu_free_at)
        return min(times) if times else None

    def _drain_heap(self, horizon_ns) -> bool:
        advanced = False
        while self._heap and self._heap[0][0] <= self.now:
            _t, _s, kind, payload = heapq.heappop(self._heap)
            if kind == "arrival":
                self._deliver(payload)
                advanced = True
            elif kind == "bus_poll":
                granted = self.bus.grant(self.now)
                while granted is not None:
                    delivery, request = granted
                    self._push_heap(delivery, "bus_deliver", request)
                    granted = self.bus.grant(self.now)
                advanced = True
            elif kind == "bus_deliver":
                payload.deliver()
                # the bus may have more queued work now that it is free
                self._push_heap_now("bus_poll", None)
                advanced = True
            elif kind == "retry":
                transfer = payload
                if not transfer.done:
                    if transfer.attempts <= transfer.max_retries:
                        self.fault_stats.retransmissions += 1
                        if self._m_retransmissions is not None:
                            self._m_retransmissions.inc()
                        self._send_attempt(transfer, self.now)
                    else:
                        self._count_lost(transfer)
                advanced = True
        return advanced

    def _deliver(self, signal: SignalInstance) -> None:
        if signal.is_creation:
            self._creation_queue.append(signal)
            return
        if signal.target_handle not in self._class_of:
            return  # receiver died in flight
        queue = self._queues.get(signal.target_handle)
        if queue is None:
            queue = InstanceQueue()
            self._queues[signal.target_handle] = queue
        queue.push(signal)

    def _start_services(self, horizon_ns) -> int:
        started = 0
        # hardware instances are independent resources: start any that can
        for handle in sorted(self._queues):
            queue = self._queues[handle]
            if not queue:
                continue
            class_key = self._class_of.get(handle)
            if class_key is None or self.side_of_class(class_key) != "hw":
                continue
            if self._hw_free_at.get(handle, 0) <= self.now:
                self._service(handle, class_key, queue.pop())
                started += 1
        # the single CPU: at most one software dispatch per pass
        if self._cpu_free_at <= self.now:
            chosen = self._choose_software()
            if chosen is not None:
                handle, signal = chosen
                class_key = signal.class_key
                self._service(handle, class_key, signal)
                started += 1
        return started

    def _choose_software(self):
        """kernel order: global self-first, then send order (plus creations)."""
        candidates = []
        for handle in sorted(self._queues):
            queue = self._queues[handle]
            if not queue:
                continue
            class_key = self._class_of.get(handle)
            if class_key is None or self.side_of_class(class_key) != "sw":
                continue
            head = queue.peek()
            candidates.append(((not head.is_self_directed, head.sequence),
                               handle, queue))
        creation = None
        for signal in self._creation_queue:
            if self.side_of_class(signal.class_key) == "sw":
                creation = signal
                break
        if creation is not None:
            candidates.append((((True, creation.sequence)), None, None))
        if not candidates:
            # hardware creation events are dispatched by the CPU-side
            # configuration master too (instance banks are provisioned
            # by software), so fall back to any creation
            if self._creation_queue:
                signal = self._creation_queue.pop(0)
                return (None, signal)
            return None
        candidates.sort(key=lambda c: c[0])
        _key, handle, queue = candidates[0]
        if handle is None:
            self._creation_queue.remove(creation)
            return (None, creation)
        return (handle, queue.pop())

    def _service(self, handle, class_key: str, signal: SignalInstance) -> None:
        side = self.side_of_class(class_key)
        ops_before = self.ops_executed
        self._emit_buffer = []
        start = self.now
        for observer in self.on_consumed:
            observer(start, signal)
        if self._m_latency is not None:
            sent_at = self._m_sent_ns.pop(signal.sequence, None)
            if sent_at is not None:
                self._m_latency[side].observe(start - sent_at)
        try:
            self.dispatch(signal)
        except ArchError:
            # a corrupted command can trip the runtime's safety bounds
            # directly (loop limit) or poison the receiver's state so a
            # *later*, clean signal hits cant-happen.  Once corrupted
            # data was delivered, contain the blast radius and write the
            # dispatch off as lost; with no corruption in play the error
            # is a genuine model bug and propagates.
            if not self._corrupted_sequences:
                raise
            self.fault_stats.lost += 1
        finally:
            emitted = self._emit_buffer
            self._emit_buffer = None
        ops = self.ops_executed - ops_before
        if side == "sw":
            duration = self.config.sw_dispatch_ns + ops * self.config.sw_ns_per_op
            self._cpu_free_at = start + duration
            self.cpu_stats.busy_ns += duration
            self.cpu_stats.dispatches += 1
        else:
            duration = self.config.hw_dispatch_ns + ops * self.config.hw_ns_per_op
            # creation events target a fresh handle; charge its bank
            owner = signal.target_handle if signal.target_handle is not None \
                else handle
            if owner is not None:
                self._hw_free_at[owner] = start + duration
            stats = self.hw_stats.get(class_key)
            if stats is not None:
                stats.busy_ns += duration
                stats.dispatches += 1
        if self._m_service is not None:
            self._m_service[side].observe(duration)
        end = start + duration
        for emitted_signal, delay in emitted:
            self._route(emitted_signal, end + delay * US_TO_NS)

    def _dispatch_creation(self, signal: SignalInstance) -> None:
        super()._dispatch_creation(signal)

    # -- measurement helpers ------------------------------------------------------

    def utilization_report(self) -> dict[str, float]:
        horizon = max(self.now, 1)
        report = {"cpu": self.cpu_stats.utilization(horizon),
                  "bus": self.bus.stats.utilization(horizon)}
        for key, stats in self.hw_stats.items():
            report[f"hw:{key}"] = stats.utilization(horizon)
        registry = active_registry()
        if registry is not None:
            for name, value in report.items():
                registry.gauge(f"cosim.occupancy.{name}").set(value)
        return report
