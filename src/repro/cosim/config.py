"""Co-simulation platform parameters.

The timing model is deliberately simple and fully documented, because
experiment E4 only needs *relative* behaviour (who wins, where the
crossover sits), not absolute silicon numbers:

* software actions execute on one shared CPU, sequentially, at a fixed
  cost per executed IR operation plus a per-dispatch overhead (the
  kernel's queue pop + context);
* each hardware class instance is its own always-available resource with
  a (lower) per-operation cost — specialized logic, no contention;
* every cross-partition signal pays the shared bus: arbitration plus a
  per-byte transfer cost; the bus serves one message at a time under a
  selectable policy.

All times are integer nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoSimConfig:
    """Platform timing parameters (nanoseconds)."""

    #: cost of one executed IR operation on the CPU
    sw_ns_per_op: int = 20
    #: kernel overhead charged per software event dispatch
    sw_dispatch_ns: int = 200
    #: cost of one executed IR operation in a hardware block
    hw_ns_per_op: int = 5
    #: hardware event capture overhead (one clock edge at 100 MHz)
    hw_dispatch_ns: int = 10
    #: bus arbitration cost per message
    bus_arbitration_ns: int = 50
    #: per-byte transfer cost (8-byte beats at 100 MHz ~ 1.25 ns/B)
    bus_ns_per_byte: float = 1.25
    #: "fifo" | "priority" | "round_robin"
    bus_policy: str = "fifo"

    def bus_transfer_ns(self, payload_bytes: int) -> int:
        """Total bus occupancy of one message."""
        return self.bus_arbitration_ns + int(
            round(payload_bytes * self.bus_ns_per_byte))

    def validated(self) -> "CoSimConfig":
        if self.bus_policy not in ("fifo", "priority", "round_robin"):
            raise ValueError(f"unknown bus policy {self.bus_policy!r}")
        for name in ("sw_ns_per_op", "sw_dispatch_ns", "hw_ns_per_op",
                     "hw_dispatch_ns", "bus_arbitration_ns",
                     "bus_ns_per_byte"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        return self
