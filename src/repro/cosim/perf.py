"""Performance probes over a co-simulation.

Probes observe signal traffic through the machine's ``on_sent`` /
``on_consumed`` hooks and aggregate the numbers the paper's workflow
needs to *decide a partition*: end-to-end latency, throughput and
resource utilization.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.obs.metrics import percentile_nearest_rank

from .engine import CoSimMachine


@dataclass
class LatencySample:
    """One correlated start→end observation.

    ``start_ns`` is the *first* send of the key (end-to-end latency
    includes retransmission time); ``last_start_ns`` is the most recent
    send, so ``last_start_ns > start_ns`` marks a resent measurement.
    """

    key: object
    start_ns: int
    end_ns: int
    last_start_ns: int | None = None

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def was_resent(self) -> bool:
        return (self.last_start_ns is not None
                and self.last_start_ns != self.start_ns)


class LatencyProbe:
    """End-to-end latency between two signal observations.

    ``start`` fires when a signal with the given (class, label) is *sent*
    and ``end`` when one is *consumed*; samples are correlated on the
    value of ``key_param`` (e.g. ``pkt_id``).

    A signal that carries no usable correlation key cannot be measured:
    it is dropped and tallied in :attr:`unmatched` rather than silently
    correlated on ``None`` (which would collapse every keyless signal
    into one bogus sample).  Retransmitted starts are tracked explicitly
    as first-send vs. last-send — the sample's latency runs from the
    first send, and :attr:`resent` counts the repeats.
    """

    def __init__(
        self,
        machine: CoSimMachine,
        start: tuple[str, str],
        end: tuple[str, str],
        key_param: str,
    ):
        self._start = start
        self._end = end
        self._key_param = key_param
        self._first_send: dict[object, int] = {}
        self._last_send: dict[object, int] = {}
        self.samples: list[LatencySample] = []
        #: signals with no usable key, or ends with no matching start
        self.unmatched = 0
        #: start observations repeated while the key was still in flight
        self.resent = 0
        machine.on_sent.append(self._on_sent)
        machine.on_consumed.append(self._on_consumed)

    def _on_sent(self, time_ns: int, signal) -> None:
        if (signal.class_key, signal.label) != self._start:
            return
        key = signal.params.get(self._key_param)
        if key is None:
            self.unmatched += 1
            return
        if key in self._first_send:
            self.resent += 1
        else:
            self._first_send[key] = time_ns
        self._last_send[key] = time_ns

    def _on_consumed(self, time_ns: int, signal) -> None:
        if (signal.class_key, signal.label) != self._end:
            return
        key = signal.params.get(self._key_param)
        if key is None:
            self.unmatched += 1
            return
        start = self._first_send.pop(key, None)
        if start is None:
            self.unmatched += 1
            return
        last = self._last_send.pop(key, start)
        self.samples.append(LatencySample(key, start, time_ns, last))

    @property
    def in_flight(self) -> int:
        """Keys whose start was seen but whose end has not arrived."""
        return len(self._first_send)

    # -- statistics ------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean_ns(self) -> float:
        if not self.samples:
            return float("nan")
        return statistics.fmean(s.latency_ns for s in self.samples)

    def percentile_ns(self, fraction: float) -> float:
        """Ceil-based nearest-rank percentile (shared obs helper)."""
        return percentile_nearest_rank(
            (s.latency_ns for s in self.samples), fraction)

    def p99_ns(self) -> float:
        return self.percentile_ns(0.99)

    def max_ns(self) -> int:
        return max((s.latency_ns for s in self.samples), default=0)


class ThroughputProbe:
    """Completions per second of one consumed signal."""

    def __init__(self, machine: CoSimMachine, signal: tuple[str, str]):
        self._signal = signal
        self._machine = machine
        self.completions = 0
        self.first_ns: int | None = None
        self.last_ns: int | None = None
        machine.on_consumed.append(self._on_consumed)

    def _on_consumed(self, time_ns: int, signal) -> None:
        if (signal.class_key, signal.label) != self._signal:
            return
        self.completions += 1
        if self.first_ns is None:
            self.first_ns = time_ns
        self.last_ns = time_ns

    def per_second(self) -> float:
        if self.completions < 2 or self.first_ns == self.last_ns:
            return 0.0
        span_s = (self.last_ns - self.first_ns) / 1e9
        return (self.completions - 1) / span_s


@dataclass
class PartitionMeasurement:
    """One row of the E4 partition sweep."""

    hardware_classes: tuple[str, ...]
    offered_packets: int
    completed: int
    mean_latency_ns: float
    p99_latency_ns: float
    throughput_per_s: float
    cpu_utilization: float
    bus_utilization: float
    bus_messages: int
    makespan_ns: int
    extras: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return "+".join(self.hardware_classes) or "(all software)"
