"""Performance probes over a co-simulation.

Probes observe signal traffic through the machine's ``on_sent`` /
``on_consumed`` hooks and aggregate the numbers the paper's workflow
needs to *decide a partition*: end-to-end latency, throughput and
resource utilization.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from .engine import CoSimMachine


@dataclass
class LatencySample:
    key: object
    start_ns: int
    end_ns: int

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.start_ns


class LatencyProbe:
    """End-to-end latency between two signal observations.

    ``start`` fires when a signal with the given (class, label) is *sent*
    and ``end`` when one is *consumed*; samples are correlated on the
    value of ``key_param`` (e.g. ``pkt_id``).
    """

    def __init__(
        self,
        machine: CoSimMachine,
        start: tuple[str, str],
        end: tuple[str, str],
        key_param: str,
    ):
        self._start = start
        self._end = end
        self._key_param = key_param
        self._open: dict[object, int] = {}
        self.samples: list[LatencySample] = []
        machine.on_sent.append(self._on_sent)
        machine.on_consumed.append(self._on_consumed)

    def _on_sent(self, time_ns: int, signal) -> None:
        if (signal.class_key, signal.label) != self._start:
            return
        key = signal.params.get(self._key_param)
        self._open.setdefault(key, time_ns)

    def _on_consumed(self, time_ns: int, signal) -> None:
        if (signal.class_key, signal.label) != self._end:
            return
        key = signal.params.get(self._key_param)
        start = self._open.pop(key, None)
        if start is not None:
            self.samples.append(LatencySample(key, start, time_ns))

    # -- statistics ------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean_ns(self) -> float:
        if not self.samples:
            return float("nan")
        return statistics.fmean(s.latency_ns for s in self.samples)

    def p99_ns(self) -> float:
        if not self.samples:
            return float("nan")
        ordered = sorted(s.latency_ns for s in self.samples)
        index = min(len(ordered) - 1, int(round(0.99 * (len(ordered) - 1))))
        return float(ordered[index])

    def max_ns(self) -> int:
        return max((s.latency_ns for s in self.samples), default=0)


class ThroughputProbe:
    """Completions per second of one consumed signal."""

    def __init__(self, machine: CoSimMachine, signal: tuple[str, str]):
        self._signal = signal
        self._machine = machine
        self.completions = 0
        self.first_ns: int | None = None
        self.last_ns: int | None = None
        machine.on_consumed.append(self._on_consumed)

    def _on_consumed(self, time_ns: int, signal) -> None:
        if (signal.class_key, signal.label) != self._signal:
            return
        self.completions += 1
        if self.first_ns is None:
            self.first_ns = time_ns
        self.last_ns = time_ns

    def per_second(self) -> float:
        if self.completions < 2 or self.first_ns == self.last_ns:
            return 0.0
        span_s = (self.last_ns - self.first_ns) / 1e9
        return (self.completions - 1) / span_s


@dataclass
class PartitionMeasurement:
    """One row of the E4 partition sweep."""

    hardware_classes: tuple[str, ...]
    offered_packets: int
    completed: int
    mean_latency_ns: float
    p99_latency_ns: float
    throughput_per_s: float
    cpu_utilization: float
    bus_utilization: float
    bus_messages: int
    makespan_ns: int
    extras: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return "+".join(self.hardware_classes) or "(all software)"
