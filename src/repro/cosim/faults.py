"""Deterministic fault injection for the co-simulated bus.

The platform model of :mod:`repro.cosim` is deliberately perfect: the
bus never loses a beat.  Real on-chip interconnects drop, corrupt,
duplicate and delay traffic, and the paper's "measure, then move the
marks" workflow is only credible if the prototype can be stressed the
same way silicon will be.  A :class:`FaultPlan` perturbs bus transfers
with per-message-class rates; every decision is derived from a single
seed plus the transfer's identity ``(message, sequence, attempt)``, so a
chaos run is reproducible bit-for-bit — rerunning the same seed replays
exactly the same faults, which is what makes a failing sweep debuggable.

Acknowledgements of protected frames travel on a dedicated sideband
(they are not themselves subject to injection); the data path is where
the faults live.  :class:`FaultStats` aggregates what happened:
``injected`` counts per fault kind on the wire, ``detected`` counts
frames rejected by CRC/decode checks, ``recovered`` counts frames that
arrived via retransmission, and ``lost`` counts messages that never
reached the model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class FaultError(Exception):
    """Invalid fault-injection configuration."""


@dataclass(frozen=True)
class FaultRates:
    """Per-transfer fault probabilities for one message class."""

    #: probability the frame is lost on the wire
    drop: float = 0.0
    #: probability payload bytes are flipped in flight
    corrupt: float = 0.0
    #: probability the frame is delivered twice
    duplicate: float = 0.0
    #: probability delivery is late by ``delay_ns``
    delay: float = 0.0
    #: extra in-flight latency of a delayed frame
    delay_ns: int = 2_000
    #: how many byte positions a corruption flips
    corrupt_bytes: int = 1

    def validated(self) -> "FaultRates":
        for name in ("drop", "corrupt", "duplicate", "delay"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} rate {rate} is outside [0, 1]")
        if self.delay_ns < 0:
            raise FaultError("delay_ns must be non-negative")
        if self.corrupt_bytes < 1:
            raise FaultError("corrupt_bytes must be at least 1")
        return self

    @property
    def any_nonzero(self) -> bool:
        return (self.drop or self.corrupt or self.duplicate
                or self.delay) > 0.0


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one transfer (all kinds may combine)."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay_ns: int = 0

    @property
    def faulted(self) -> bool:
        return self.drop or self.corrupt or self.duplicate \
            or self.delay_ns > 0


#: the decision a fault-free transfer gets
NO_FAULT = FaultDecision()


@dataclass
class FaultStats:
    """Aggregate accounting of one chaos run."""

    injected_drops: int = 0
    injected_corruptions: int = 0
    injected_duplicates: int = 0
    injected_delays: int = 0
    #: frames rejected at the receiver (CRC mismatch or undecodable)
    detected: int = 0
    #: messages that arrived via a retransmission
    recovered: int = 0
    #: messages that never reached the model
    lost: int = 0
    #: lost messages whose class was marked ``isCritical``
    critical_lost: int = 0
    #: protected frames discarded by receiver-side dedup
    duplicates_discarded: int = 0
    #: corrupted frames that slipped through and were delivered
    delivered_corrupted: int = 0
    #: extra send attempts beyond the first
    retransmissions: int = 0

    @property
    def injected(self) -> int:
        return (self.injected_drops + self.injected_corruptions
                + self.injected_duplicates + self.injected_delays)

    def count_injected(self, decision: FaultDecision) -> None:
        if decision.drop:
            self.injected_drops += 1
        if decision.corrupt:
            self.injected_corruptions += 1
        if decision.duplicate:
            self.injected_duplicates += 1
        if decision.delay_ns > 0:
            self.injected_delays += 1

    def add(self, other: "FaultStats") -> None:
        """Accumulate *other* into this instance (for sweep aggregation)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}


@dataclass
class FaultPlan:
    """Seeded fault schedule over bus transfers.

    Decisions are pure functions of ``(seed, message, sequence,
    attempt)`` — no hidden RNG state — so retransmissions of the same
    frame draw *fresh* faults (attempt differs) while a rerun of the
    whole simulation replays identically.
    """

    seed: int = 0
    default: FaultRates = field(default_factory=FaultRates)
    #: message name -> rates overriding the default for that class
    per_message: dict[str, FaultRates] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.default = self.default.validated()
        self.per_message = {
            name: rates.validated()
            for name, rates in self.per_message.items()
        }

    @classmethod
    def uniform(cls, seed: int, rate: float,
                delay_ns: int = 2_000) -> "FaultPlan":
        """Drop/corrupt at *rate*, duplicate/delay at half of it."""
        return cls(seed, FaultRates(
            drop=rate, corrupt=rate,
            duplicate=rate / 2, delay=rate / 2, delay_ns=delay_ns,
        ))

    def rates_for(self, message_name: str) -> FaultRates:
        return self.per_message.get(message_name, self.default)

    def _rng(self, message_name: str, sequence: int, attempt: int,
             salt: str = "") -> random.Random:
        # seeding from a string is deterministic across processes,
        # unlike hash() of a string
        return random.Random(
            f"{self.seed}:{salt}:{message_name}:{sequence}:{attempt}")

    def decide(self, message_name: str, sequence: int,
               attempt: int = 1) -> FaultDecision:
        """The (reproducible) fate of one transfer."""
        rates = self.rates_for(message_name)
        if not rates.any_nonzero:
            return NO_FAULT
        rng = self._rng(message_name, sequence, attempt)
        return FaultDecision(
            drop=rng.random() < rates.drop,
            corrupt=rng.random() < rates.corrupt,
            duplicate=rng.random() < rates.duplicate,
            delay_ns=rates.delay_ns if rng.random() < rates.delay else 0,
        )

    def corrupt_payload(self, payload: bytes, message_name: str,
                        sequence: int, attempt: int = 1) -> bytes:
        """Flip byte(s) of *payload*, reproducibly, never a no-op."""
        if not payload:
            return payload
        rates = self.rates_for(message_name)
        rng = self._rng(message_name, sequence, attempt, salt="bytes")
        corrupted = bytearray(payload)
        for _ in range(min(rates.corrupt_bytes, len(corrupted))):
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= rng.randint(1, 255)
        return bytes(corrupted)
