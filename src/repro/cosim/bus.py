"""The shared on-chip bus.

Cross-partition messages are serialized through one bus.  The bus grants
pending requests one at a time; the grant order is the arbitration
policy (E4 ablates fixed-priority against round-robin against FIFO).
Occupancy per message comes from :meth:`CoSimConfig.bus_transfer_ns`.

When a :class:`~repro.cosim.faults.FaultPlan` is installed, the grant
path is where faults strike: the bus draws the transfer's (seeded,
reproducible) :class:`~repro.cosim.faults.FaultDecision`, counts it in
the shared :class:`~repro.cosim.faults.FaultStats`, attaches it to the
request for the receiver to act on, and stretches the delivery time of
delayed frames.  The bus itself stays oblivious to frame contents —
detection and recovery are the engine's business.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import active_registry

from .config import CoSimConfig
from .faults import FaultDecision, FaultPlan, FaultStats


@dataclass
class BusRequest:
    """One pending cross-partition message."""

    ready_at: int
    sequence: int
    message_id: int
    payload_bytes: int
    sender_side: str            # "hw" or "sw"
    deliver: object             # zero-arg callable run at delivery time
    payload: bytes = b""        # the (possibly framed) wire bytes
    message_name: str = ""      # interface message this frame carries
    attempt: int = 1            # 1 = first send, >1 = retransmission
    #: FaultDecision drawn at grant time (None until granted / no plan)
    fault: FaultDecision | None = None


@dataclass
class BusStats:
    """Aggregate bus accounting."""

    messages: int = 0
    bytes_moved: int = 0
    busy_ns: int = 0
    wait_ns: int = 0

    def utilization(self, horizon_ns: int) -> float:
        if horizon_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / horizon_ns)


class Bus:
    """Single-master-at-a-time shared bus with pluggable arbitration."""

    def __init__(self, config: CoSimConfig,
                 fault_plan: FaultPlan | None = None,
                 fault_stats: FaultStats | None = None):
        self._config = config.validated()
        self._pending: list[BusRequest] = []
        self._free_at = 0
        self._rr_last_side = "hw"    # round-robin alternates sides
        self.stats = BusStats()
        self._fault_plan = fault_plan
        self.fault_stats = fault_stats if fault_stats is not None \
            else FaultStats()
        registry = active_registry()
        if registry is None:
            self._m_messages = None
            self._m_bytes = None
            self._m_busy_ns = None
            self._m_wait = None
        else:
            self._m_messages = registry.counter("cosim.bus.messages")
            self._m_bytes = registry.counter("cosim.bus.bytes_moved")
            self._m_busy_ns = registry.counter("cosim.bus.busy_ns")
            self._m_wait = registry.histogram(
                "cosim.bus.wait_ns",
                buckets=(0, 100, 1_000, 10_000, 100_000, 1_000_000))

    @property
    def free_at(self) -> int:
        return self._free_at

    def request(self, request: BusRequest) -> None:
        self._pending.append(request)

    def has_pending(self) -> bool:
        return bool(self._pending)

    def next_ready_time(self) -> int | None:
        if not self._pending:
            return None
        earliest = min(r.ready_at for r in self._pending)
        return max(earliest, self._free_at)

    def grant(self, now: int) -> tuple[int, BusRequest] | None:
        """Grant one request if the bus is idle at *now*.

        Returns ``(delivery_time, request)`` after accounting, or None.
        The caller invokes ``request.deliver()`` at the delivery time.
        """
        if now < self._free_at or not self._pending:
            return None
        ready = [r for r in self._pending if r.ready_at <= now]
        if not ready:
            return None
        chosen = self._arbitrate(ready)
        self._pending.remove(chosen)
        transfer = self._config.bus_transfer_ns(chosen.payload_bytes)
        start = max(now, chosen.ready_at)
        delivery = start + transfer
        self._free_at = delivery
        self.stats.messages += 1
        self.stats.bytes_moved += chosen.payload_bytes
        self.stats.busy_ns += transfer
        self.stats.wait_ns += start - chosen.ready_at
        if self._m_messages is not None:
            self._m_messages.inc()
            self._m_bytes.inc(chosen.payload_bytes)
            self._m_busy_ns.inc(transfer)
            self._m_wait.observe(start - chosen.ready_at)
        if self._config.bus_policy == "round_robin":
            self._rr_last_side = chosen.sender_side
        if self._fault_plan is not None:
            decision = self._fault_plan.decide(
                chosen.message_name, chosen.sequence, chosen.attempt)
            self.fault_stats.count_injected(decision)
            chosen.fault = decision
            # a delayed frame leaves the bus on time but lands late
            delivery += decision.delay_ns
        return delivery, chosen

    def _arbitrate(self, ready: list[BusRequest]) -> BusRequest:
        policy = self._config.bus_policy
        if policy == "priority":
            # lower message id = higher priority; FIFO within a priority
            return min(ready, key=lambda r: (r.message_id, r.sequence))
        if policy == "round_robin":
            other = "sw" if self._rr_last_side == "hw" else "hw"
            preferred = [r for r in ready if r.sender_side == other]
            pool = preferred or ready
            return min(pool, key=lambda r: r.sequence)
        return min(ready, key=lambda r: r.sequence)   # fifo
