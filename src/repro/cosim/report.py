"""Sweep reporting — tables and CSV export of partition measurements.

One renderer shared by the CLI, the examples and the benches, plus CSV
export so sweep results feed spreadsheets and plotting scripts.
"""

from __future__ import annotations

import csv
import io

from .faults import FaultStats
from .perf import PartitionMeasurement

_CSV_COLUMNS = (
    "partition", "offered_packets", "completed", "mean_latency_ns",
    "p99_latency_ns", "throughput_per_s", "cpu_utilization",
    "bus_utilization", "bus_messages", "makespan_ns",
)


def render_table(measurements: list[PartitionMeasurement]) -> str:
    """The fixed-width sweep table used everywhere."""
    lines = [
        f"{'partition':18s} {'mean lat':>10s} {'p99 lat':>10s} "
        f"{'thr/s':>9s} {'cpu':>5s} {'bus':>6s}"
    ]
    for m in measurements:
        lines.append(
            f"{m.label:18s} {m.mean_latency_ns / 1000:8.1f}us "
            f"{m.p99_latency_ns / 1000:8.1f}us "
            f"{m.throughput_per_s:9.0f} {m.cpu_utilization:5.2f} "
            f"{m.bus_utilization:6.3f}"
        )
    return "\n".join(lines)


def measurements_to_csv(measurements: list[PartitionMeasurement]) -> str:
    """CSV text, one row per measurement, stable column order."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)
    for m in measurements:
        writer.writerow([
            m.label, m.offered_packets, m.completed,
            f"{m.mean_latency_ns:.1f}", f"{m.p99_latency_ns:.1f}",
            f"{m.throughput_per_s:.1f}", f"{m.cpu_utilization:.4f}",
            f"{m.bus_utilization:.4f}", m.bus_messages, m.makespan_ns,
        ])
    return buffer.getvalue()


def render_fault_stats(stats: FaultStats, label: str = "faults") -> str:
    """One-paragraph summary of a run's fault injection and recovery."""
    lines = [
        f"{label}: {stats.injected} injected "
        f"(drop {stats.injected_drops}, corrupt {stats.injected_corruptions},"
        f" dup {stats.injected_duplicates}, delay {stats.injected_delays})",
        f"  detected {stats.detected}  retransmissions "
        f"{stats.retransmissions}  recovered {stats.recovered}",
        f"  lost {stats.lost} (critical {stats.critical_lost})  "
        f"dup-discarded {stats.duplicates_discarded}  "
        f"delivered-corrupted {stats.delivered_corrupted}",
    ]
    return "\n".join(lines)


def write_csv(measurements: list[PartitionMeasurement], path) -> str:
    """Write the CSV to *path*; returns the path written."""
    import pathlib

    target = pathlib.Path(path)
    target.write_text(measurements_to_csv(measurements))
    return str(target)
