"""Workload generators — seeded, reproducible stimulus.

The paper's platform would be fed by real traffic; offline we synthesize
it.  Every generator takes an explicit seed so each benchmark row is
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PacketStimulus:
    """One packet to inject: arrival time (µs), id and length (bytes)."""

    time_us: int
    pkt_id: int
    length: int


def poisson_packets(
    count: int,
    rate_per_ms: float,
    seed: int = 0,
    min_length: int = 64,
    max_length: int = 1500,
) -> list[PacketStimulus]:
    """*count* packets with exponential inter-arrivals and random sizes."""
    if rate_per_ms <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    mean_gap_us = 1000.0 / rate_per_ms
    time_us = 0.0
    packets = []
    for index in range(count):
        time_us += rng.expovariate(1.0 / mean_gap_us)
        packets.append(PacketStimulus(
            int(time_us), index + 1, rng.randint(min_length, max_length)))
    return packets


def periodic_packets(
    count: int, period_us: int, length: int = 256, start_us: int = 0
) -> list[PacketStimulus]:
    """A constant-bit-rate stream."""
    return [
        PacketStimulus(start_us + i * period_us, i + 1, length)
        for i in range(count)
    ]


def bursty_packets(
    count: int,
    burst_size: int,
    burst_gap_us: int,
    seed: int = 0,
    length: int = 512,
) -> list[PacketStimulus]:
    """Bursts of back-to-back packets separated by idle gaps."""
    rng = random.Random(seed)
    packets = []
    time_us = 0
    index = 0
    while index < count:
        for _ in range(min(burst_size, count - index)):
            packets.append(PacketStimulus(time_us, index + 1, length))
            index += 1
        time_us += burst_gap_us + rng.randint(0, burst_gap_us // 4 or 1)
    return packets


def inject_stimulus(machine, mac_handle: int,
                    packets: list[PacketStimulus]) -> None:
    """Feed a packet list into a machine's MAC as M1 events."""
    for packet in packets:
        machine.inject(
            mac_handle, "M1",
            {"pkt_id": packet.pkt_id, "length": packet.length},
            delay=packet.time_us,
        )
