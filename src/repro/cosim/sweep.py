"""Partition sweeps — "measure, then move the marks".

Drives the full paper workflow end to end, once per candidate partition:

    marks -> compile -> co-simulate under a fixed workload -> measure

The stimulus, probes and measurement code never change between
partitions; only the marking file does.  That invariance *is* the claim
of paper section 4, and experiment E4 reports the resulting latency /
throughput / utilization table.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.marks.partition import marks_for_partition
from repro.mda.compiler import ModelCompiler
from repro.xuml.model import Model

from .config import CoSimConfig
from .engine import CoSimMachine
from .perf import LatencyProbe, PartitionMeasurement, ThroughputProbe
from .workload import PacketStimulus, inject_stimulus


def measure_partition(
    model: Model,
    hardware_classes: tuple[str, ...],
    packets: list[PacketStimulus],
    config: CoSimConfig | None = None,
    populate: Callable[[CoSimMachine], dict] | None = None,
    horizon_us: int | None = None,
) -> PartitionMeasurement:
    """Compile *model* with the given classes in hardware and measure it.

    *populate* builds the instance population on the machine and returns
    a handle map containing at least ``"M"`` (the stimulus entry point);
    by default the packet-processor population is used.
    """
    component = model.components[0]
    marks = marks_for_partition(component, tuple(hardware_classes))
    build = ModelCompiler(model).compile(marks)
    machine = CoSimMachine(build, config)

    if populate is None:
        from repro.models import packetproc
        handles = packetproc.populate(machine)
    else:
        handles = populate(machine)

    latency = LatencyProbe(
        machine, start=("M", "M1"), end=("ST", "ST1"), key_param="pkt_id")
    throughput = ThroughputProbe(machine, signal=("ST", "ST1"))
    inject_stimulus(machine, handles["M"], packets)
    machine.run(horizon_us=horizon_us)

    utilization = machine.utilization_report()
    return PartitionMeasurement(
        hardware_classes=tuple(hardware_classes),
        offered_packets=len(packets),
        completed=latency.count,
        mean_latency_ns=latency.mean_ns(),
        p99_latency_ns=latency.p99_ns(),
        throughput_per_s=throughput.per_second(),
        cpu_utilization=utilization["cpu"],
        bus_utilization=utilization["bus"],
        bus_messages=machine.bus.stats.messages,
        makespan_ns=machine.now,
        extras={"utilization": utilization},
    )


def sweep_partitions(
    model: Model,
    candidates: Iterable[tuple[str, ...]],
    packets: list[PacketStimulus],
    config: CoSimConfig | None = None,
    populate: Callable[[CoSimMachine], dict] | None = None,
) -> list[PartitionMeasurement]:
    """Measure every candidate partition under one fixed workload."""
    return [
        measure_partition(model, candidate, packets, config, populate)
        for candidate in candidates
    ]


def best_partition(
    measurements: list[PartitionMeasurement],
    objective: str = "mean_latency_ns",
) -> PartitionMeasurement:
    """The sweep winner under an objective (lower is better, except
    throughput where higher wins)."""
    if not measurements:
        raise ValueError("no measurements to choose from")
    complete = [m for m in measurements
                if m.completed == m.offered_packets] or measurements
    if objective == "throughput_per_s":
        return max(complete, key=lambda m: m.throughput_per_s)
    return min(complete, key=lambda m: getattr(m, objective))
