"""Co-simulation of the partitioned SoC (the paper's "prototype runs").

* :class:`CoSimMachine` — timed execution of a compiled build: one CPU,
  concurrent hardware blocks, a shared arbitrated bus carrying generated
  interface messages
* :class:`CoSimConfig` — the documented platform timing model
* :class:`LatencyProbe` / :class:`ThroughputProbe` — measurement
* :func:`sweep_partitions` — marks -> compile -> measure, per candidate
"""

from .bus import Bus, BusRequest, BusStats
from .config import CoSimConfig
from .engine import CoSimError, CoSimMachine, ResourceStats, US_TO_NS
from .faults import (
    NO_FAULT,
    FaultDecision,
    FaultError,
    FaultPlan,
    FaultRates,
    FaultStats,
)
from .perf import (
    LatencyProbe,
    LatencySample,
    PartitionMeasurement,
    ThroughputProbe,
)
from .report import (
    measurements_to_csv,
    render_fault_stats,
    render_table,
    write_csv,
)
from .sweep import best_partition, measure_partition, sweep_partitions
from .workload import (
    PacketStimulus,
    bursty_packets,
    inject_stimulus,
    periodic_packets,
    poisson_packets,
)

__all__ = [
    "Bus",
    "BusRequest",
    "BusStats",
    "CoSimConfig",
    "CoSimError",
    "CoSimMachine",
    "FaultDecision",
    "FaultError",
    "FaultPlan",
    "FaultRates",
    "FaultStats",
    "LatencyProbe",
    "LatencySample",
    "NO_FAULT",
    "PacketStimulus",
    "PartitionMeasurement",
    "ResourceStats",
    "ThroughputProbe",
    "US_TO_NS",
    "best_partition",
    "bursty_packets",
    "inject_stimulus",
    "measure_partition",
    "measurements_to_csv",
    "periodic_packets",
    "poisson_packets",
    "render_fault_stats",
    "render_table",
    "sweep_partitions",
    "write_csv",
]
