#!/usr/bin/env python3
"""SoC partitioning: measure, then move the marks.

The paper's headline workflow on the packet-processor SoC:

1. co-simulate the all-software prototype under increasing load and
   watch the CPU saturate;
2. sweep candidate partitions (the crypto engine and the DMA are the
   natural isHardware candidates) under the same stimulus;
3. pick the winner and show that getting there cost exactly as many
   human edits as marks were flipped.

Run:  python examples/soc_partitioning.py
"""

from repro.baselines import price_repartition
from repro.cosim import (
    best_partition,
    poisson_packets,
    render_table,
    sweep_partitions,
)
from repro.marks import marks_for_partition, partition_change_cost
from repro.models import build_packetproc_model

CANDIDATES = [
    (),
    ("CE",),
    ("D",),
    ("CE", "D"),
    ("CE", "CL", "D"),
]

LOADS_PER_MS = (40, 150, 300)
PACKETS = 300


def main() -> None:
    model = build_packetproc_model()
    component = model.components[0]

    print("candidate partitions (isHardware classes):")
    for candidate in CANDIDATES:
        print(f"  {'+'.join(candidate) or '(all software)'}")
    print()

    winners = {}
    for rate in LOADS_PER_MS:
        packets = poisson_packets(PACKETS, rate_per_ms=rate, seed=7)
        rows = sweep_partitions(model, CANDIDATES, packets)
        print(f"load {rate} packets/ms "
              f"({PACKETS} Poisson packets, seed 7):")
        for line in render_table(rows).splitlines():
            print("  " + line)
        winner = best_partition(rows)
        winners[rate] = winner
        print(f"  -> winner at this load: {winner.label}")
        print()

    # the cost of acting on the measurement: move the marks
    final = winners[max(LOADS_PER_MS)]
    before = marks_for_partition(component, ())
    after = marks_for_partition(component, final.hardware_classes)
    flips = partition_change_cost(before, after)
    cost = price_repartition(model, (), final.hardware_classes)
    print(f"adopting '{final.label}' from the all-software prototype:")
    print(f"  model-driven:         {flips} mark flips "
          f"(+ {cost.regenerated_lines} machine-regenerated lines)")
    print(f"  implementation-first: {cost.impl_first_total} hand-edited "
          f"lines ({cost.reduction_factor:.0f}x more human edits)")


if __name__ == "__main__":
    main()
