#!/usr/bin/env python3
"""Interface drift: parallel teams vs generated interfaces.

Paper section 1: hardware and software teams specify in parallel and
"invariably, the two components do not mesh properly".  Section 4's fix:
both halves of every interface are generated from one spec.

This example subjects both workflows to the same stream of specification
churn (fields added, resized, removed; messages renumbered) and counts
the defects found when the halves meet at integration:

* parallel teams: each change reaches each team's copy of the interface
  tables only with some probability — missed meetings, stale emails;
* generated flow: the change lands in the model, both halves are
  regenerated, there is nothing to disagree about.

Run:  python examples/interface_drift.py
"""

from repro.baselines import run_generated_flow, run_parallel_teams
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import build_packetproc_model

CHURN_LEVELS = (5, 10, 20, 35, 50)
MISS_PROBABILITIES = (0.05, 0.15, 0.30)
SEEDS = range(10)


def main() -> None:
    model = build_packetproc_model()
    component = model.components[0]
    build = ModelCompiler(model).compile(
        marks_for_partition(component, ("CE", "D")))
    spec = build.interface
    print(f"interface under churn: {len(spec.messages)} boundary messages "
          f"of the packet-processor SoC (CE+D in hardware)")
    print()

    header = f"{'churn':>6s} " + " ".join(
        f"miss={p:<5.2f}" for p in MISS_PROBABILITIES) + "  generated"
    print(f"mean integration defects over {len(list(SEEDS))} seeds:")
    print(header)
    for churn in CHURN_LEVELS:
        cells = []
        for miss in MISS_PROBABILITIES:
            outcomes = [
                run_parallel_teams(spec, churn, miss, seed=seed)
                for seed in SEEDS
            ]
            mean = sum(o.defect_count for o in outcomes) / len(outcomes)
            cells.append(f"{mean:10.1f}")
        generated = run_generated_flow(spec, churn, seed=0)
        print(f"{churn:6d} " + " ".join(cells) +
              f"  {generated.defect_count:9d}")
    print()

    # show what the defects actually look like
    sample = run_parallel_teams(spec, 50, 0.30, seed=1)
    print(f"sample integration report (churn=50, miss=0.30, seed=1): "
          f"{sample.defect_count} defects")
    for defect in sample.defects[:8]:
        print(f"  - {defect}")
    if sample.defect_count > 8:
        print(f"  ... and {sample.defect_count - 8} more")


if __name__ == "__main__":
    main()
