#!/usr/bin/env python3
"""Quickstart: model -> execute -> mark -> translate, in ~80 lines.

Builds a two-class blinker system in Executable UML, runs it on the
abstract runtime, then marks the pulse generator as hardware and lets
the model compiler emit the C half, the VHDL half and the generated
interface that guarantees they fit together.

Run:  python examples/quickstart.py
"""

from repro.marks import MarkSet, derive_partition
from repro.mda import InterfaceCodec, ModelCompiler
from repro.runtime import Simulation, check_trace
from repro.xuml import ModelBuilder


def build_blinker():
    """An LED driven by a free-running pulse generator."""
    builder = ModelBuilder("Blinker")
    board = builder.component("board")

    pulse = board.klass("PulseGen", "PG")
    pulse.attr("pg_id", "unique_id")
    pulse.attr("edges", "integer")
    pulse.identifier(1, "pg_id")
    pulse.event("PG1", "start")
    pulse.event("PG2", "period elapsed")
    pulse.state("Stopped", 1, activity="")
    pulse.state("Running", 2, activity="""
        self.edges = self.edges + 1;
        select one led related by self->LED[R1];
        generate L1:LED() to led;
        generate PG2:PG() to self delay 500000;    // half a second
    """)
    pulse.trans("Stopped", "PG1", "Running")
    pulse.trans("Running", "PG2", "Running")
    pulse.ignore("Stopped", "PG2")
    pulse.ignore("Running", "PG1")

    led = board.klass("Led", "LED")
    led.attr("led_id", "unique_id")
    led.attr("lit", "boolean")
    led.attr("toggles", "integer")
    led.identifier(1, "led_id")
    led.event("L1", "toggle")
    led.state("Dark", 1, activity="""
        self.lit = false;
    """)
    led.state("Lit", 2, activity="""
        self.lit = true;
        self.toggles = self.toggles + 1;
    """)
    led.trans("Dark", "L1", "Lit")
    led.trans("Lit", "L1", "Dark")

    board.assoc("R1", ("PG", "is clocked by", "1"), ("LED", "drives", "1"))
    return builder.build()          # well-formedness checked here


def main() -> None:
    model = build_blinker()
    print(f"model {model.name} built: {model.stats()}")

    # 1. execute the model — no design detail, no code, just semantics
    simulation = Simulation(model)
    pg = simulation.create_instance("PG", pg_id=1)
    led = simulation.create_instance("LED", led_id=1)
    simulation.relate(pg, led, "R1")
    simulation.inject(pg, "PG1")
    simulation.run_until(3_000_000)                 # three seconds
    print(f"after 3 s: edges={simulation.read_attribute(pg, 'edges')}, "
          f"LED toggles={simulation.read_attribute(led, 'toggles')}, "
          f"lit={simulation.read_attribute(led, 'lit')}")
    violations = check_trace(simulation.trace)
    print(f"causality violations: {len(violations)} (must be 0)")

    # 2. mark: the pulse generator becomes hardware — a sticky note,
    #    not a model change
    marks = MarkSet()
    marks.set("board.PG", "isHardware", True)
    marks.set("board.PG", "clock_mhz", 200)
    partition = derive_partition(model, model.component("board"), marks)
    print()
    print(partition.describe())

    # 3. translate: one spec in, two consistent halves out
    build = ModelCompiler(model).compile(marks)
    print()
    print("generated artifacts:")
    for path in sorted(build.artifacts):
        lines = build.artifacts[path].count("\n")
        print(f"  {path:32s} {lines:4d} lines")
    findings = build.lint()
    print(f"structural lint findings: {len(findings)} (must be 0)")

    # 4. the halves fit together because the interface was generated:
    c_codec = InterfaceCodec.from_artifact(build.artifacts["board_interface.h"])
    v_codec = InterfaceCodec.from_artifact(
        build.artifacts["board_interface_pkg.vhd"])
    message = c_codec.message_names()[0]
    payload = c_codec.pack(message, {"target_instance": 2})
    assert v_codec.unpack(message, payload) == c_codec.unpack(message, payload)
    print(f"interface round-trip through both generated halves: OK "
          f"({message}, {len(payload)} bytes)")


if __name__ == "__main__":
    main()
