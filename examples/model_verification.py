#!/usr/bin/env python3
"""Model-first verification: the same formal tests on every platform.

Paper section 2: "No design details or code need be added, so formal
test cases can be executed against the model to verify that requirements
have been properly met."

This example runs each catalog model's formal suite on three platforms —
the abstract model, the generated-C architecture (single-task kernel)
and the generated-VHDL architecture (clocked FSMs) — and prints the
conformance matrix.  Per-instance behavioural traces are compared too:
the model compiler may choose any sequencing "so long as the defined
behavior is preserved", and the trace digest is how we check it did.

Run:  python examples/model_verification.py
"""

from repro.models import all_models
from repro.verify import check_conformance, suite_for


def main() -> None:
    grand_cases = 0
    grand_passed = 0
    for name, model in all_models().items():
        suite = suite_for(name)
        report = check_conformance(model, suite)
        print(report.render())
        print()
        grand_cases += sum(len(case.results) for case in report.cases)
        grand_passed += sum(
            1 for case in report.cases for result in case.results
            if result.passed)
    print(f"grand total: {grand_passed}/{grand_cases} case-runs passed "
          f"across all platforms")


if __name__ == "__main__":
    main()
