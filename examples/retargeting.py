#!/usr/bin/env python3
"""Retargeting: a third implementation technology, added with one rule.

Paper section 3: marks "allow for retargeting models to different
implementation technologies as they change."  The stock rule set maps
classes to C or (with ``isHardware``) VHDL.  This example adds SystemC —
the very language the paper calls too low-level to *model* in — as one
more *target*: a new mapping rule selected by ``processor = systemc``.

The model does not change.  The metamodel does not change.  One rule is
prepended; one sticky note moves a class onto the new technology.

Run:  python examples/retargeting.py
"""

from repro.marks import marks_for_partition
from repro.mda import ModelCompiler, RuleSet, SYSTEMC_RULE
from repro.models import build_packetproc_model


def describe(build) -> None:
    by_target = {}
    for class_key, rule_name in sorted(build.rules_applied.items()):
        by_target.setdefault(rule_name, []).append(class_key)
    for rule_name, classes in sorted(by_target.items()):
        print(f"  {rule_name:16s} -> {', '.join(classes)}")
    print(f"  artifacts: {len(build.artifacts)} files, "
          f"{build.total_lines()} lines, "
          f"{len(build.lint())} lint findings")


def main() -> None:
    model = build_packetproc_model()
    component = model.components[0]
    rules = RuleSet.standard().prepend(SYSTEMC_RULE)
    compiler = ModelCompiler(model, rules=rules)

    print("1. the familiar two-technology build (CE in hardware):")
    marks = marks_for_partition(component, ("CE",))
    describe(compiler.compile(marks))
    print()

    print("2. move the DMA onto SystemC — one new sticky note:")
    marks.set("soc.D", "processor", "systemc")
    build = compiler.compile(marks)
    describe(build)
    print()

    print("3. the generated SC_MODULE (first 24 lines):")
    module = build.artifacts["dma_engine_sc.h"]
    for line in module.splitlines()[6:30]:
        print("   " + line)
    print("   ...")
    print()
    print("same model, three implementation technologies, zero model edits.")


if __name__ == "__main__":
    main()
