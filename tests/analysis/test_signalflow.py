"""Unit tests for the whole-model signal-flow graph."""

import pytest

from repro.analysis.signalflow import build_graph
from repro.models import build_microwave_model
from repro.xuml import ModelBuilder
from repro.xuml.statemachine import EventResponse


@pytest.fixture(scope="module")
def microwave():
    model = build_microwave_model()
    return model, model.components[0]


@pytest.fixture(scope="module")
def graph(microwave):
    model, component = microwave
    return build_graph(model, component)


class TestEdgeDiscovery:
    def test_every_send_site_found(self, graph):
        labels = {e.event_label for e in graph.edges}
        assert labels == {"MO4", "MO5", "MO6", "PT1", "PT2"}

    def test_delayed_self_tick(self, graph):
        (edge,) = [e for e in graph.edges if e.event_label == "MO4"]
        assert edge.sender_class == "MO"
        assert edge.sender_state == "Cooking"
        assert edge.to_self and edge.delayed
        assert edge.conditional  # sits under the remaining-seconds if

    def test_cross_class_send(self, graph):
        edges = graph.edges_to("PT", "PT1")
        assert len(edges) == 1
        assert edges[0].sender_class == "MO"
        assert not edges[0].to_self and not edges[0].delayed

    def test_senders_are_sorted_pairs(self, graph):
        assert graph.senders("PT", "PT2") == [
            ("MO", "Complete"), ("MO", "Idle"), ("MO", "Paused")]

    def test_edges_are_deterministically_ordered(self, microwave):
        model, component = microwave
        again = build_graph(model, component)
        assert again.edges == build_graph(model, component).edges


class TestSelfOnlyPinning:
    def test_immediate_self_send_is_pinned(self, graph):
        assert graph.self_only("MO", "MO5")
        assert graph.self_only("MO", "MO6")

    def test_delayed_self_send_is_not_pinned(self, graph):
        assert not graph.self_only("MO", "MO4")

    def test_cross_class_send_is_not_pinned(self, graph):
        assert not graph.self_only("PT", "PT1")

    def test_stimulus_breaks_the_pin(self, microwave):
        model, component = microwave
        stimulated = build_graph(model, component,
                                 stimuli={"MO": frozenset({"MO5"})})
        assert not stimulated.self_only("MO", "MO5")

    def test_arrival_states_for_pinned_event(self, microwave, graph):
        _, component = microwave
        assert graph.arrival_states(component, "MO", "MO5") == {"Preparing"}
        assert graph.arrival_states(component, "MO", "MO6") == {"Cooking"}

    def test_arrival_states_for_unpinned_event(self, microwave, graph):
        _, component = microwave
        everywhere = graph.arrival_states(component, "MO", "MO4")
        assert everywhere == {"Idle", "Preparing", "Cooking", "Paused",
                              "Complete"}


class TestAvailability:
    def test_generated_vs_available(self, microwave):
        model, component = microwave
        graph = build_graph(model, component,
                            stimuli={"MO": frozenset({"MO1", "MO2"})})
        assert "MO1" not in graph.generated_labels("MO")
        assert "MO1" in graph.available_labels("MO")
        assert graph.available_labels("PT") == {"PT1", "PT2"}


class TestDropSites:
    def test_pinning_prunes_false_sites(self, microwave, graph):
        _, component = microwave
        sites = graph.drop_sites(component)
        # MO5/MO6 are pinned to their generating states, where they
        # transition — so no drop site may mention them.
        assert not [s for s in sites if s[1] in ("MO5", "MO6")]

    def test_delayed_tick_hits_ignore_rows(self, microwave, graph):
        _, component = microwave
        sites = set(graph.drop_sites(component))
        assert ("MO", "MO4", "Idle", EventResponse.IGNORE) in sites
        assert ("MO", "MO4", "Paused", EventResponse.IGNORE) in sites

    def test_stimuli_widen_the_sites(self, microwave):
        model, component = microwave
        graph = build_graph(model, component,
                            stimuli={"MO": frozenset({"MO2"})})
        sites = set(graph.drop_sites(component))
        assert ("MO", "MO2", "Idle", EventResponse.IGNORE) in sites


class TestOperationAndLoopEdges:
    def test_operation_send_and_loop_flags(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        a = component.klass("Alpha", "A")
        a.event("A1")
        a.state("Run", 1, activity="""
            select many peers from instances of B;
            for each peer in peers
                generate B1:B() to peer;
            end for;
        """)
        a.trans("Run", "A1", "Run")
        a.operation("kick", body="generate A1:A() to self;")
        b = component.klass("Beta", "B")
        b.event("B1")
        b.state("Wait", 1).state("Done", 2)
        b.trans("Wait", "B1", "Done")
        model = builder.build(check=False)
        graph = build_graph(model, model.components[0])

        (loop_edge,) = graph.edges_to("B", "B1")
        assert loop_edge.in_loop and loop_edge.conditional

        (op_edge,) = graph.edges_to("A", "A1")
        assert op_edge.sender_state == "::kick"
        assert op_edge.from_operation
        # operation bodies run outside any run-to-completion chain
        assert not graph.self_only("A", "A1")
