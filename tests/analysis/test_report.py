"""Unit tests for lint reports, baselines, and the lint/check CLI."""

import json

import pytest

from repro.analysis.findings import Finding, Severity
from repro.analysis.report import (
    LintReport,
    lint_model,
    load_baseline,
    write_baseline,
)
from repro.cli import main
from repro.models import build_microwave_model
from repro.xuml import ModelBuilder, model_to_json


@pytest.fixture(scope="module")
def microwave_report():
    return lint_model(build_microwave_model(), schedules=8)


class TestLintReport:
    def test_counts_and_worst(self):
        report = LintReport("M", "c", findings=[
            Finding(Severity.WARNING, "a", "m"),
            Finding(Severity.INFO, "b", "m"),
        ])
        assert report.counts() == {"error": 0, "warning": 1, "info": 1}
        assert report.worst() is Severity.WARNING

    def test_exit_code_thresholds(self):
        report = LintReport("M", "c", findings=[
            Finding(Severity.WARNING, "a", "m")])
        assert report.exit_code("error") == 0
        assert report.exit_code("warning") == 1
        assert LintReport("M", "c").exit_code("warning") == 0

    def test_microwave_report_shape(self, microwave_report):
        assert microwave_report.model_name == "Microwave"
        assert microwave_report.component_name == "control"
        assert microwave_report.counts()["error"] == 0
        assert microwave_report.witnessed
        assert microwave_report.runs_executed > 0

    def test_findings_sorted_worst_first(self, microwave_report):
        ranks = [f.severity.rank for f in microwave_report.findings]
        assert ranks == sorted(ranks, reverse=True)

    def test_render_mentions_witnesses(self, microwave_report):
        text = microwave_report.render()
        assert "witness: drop in scenario" in text
        assert f"{microwave_report.runs_executed} exploration runs" in text

    def test_report_json_serializes(self, microwave_report):
        payload = json.loads(json.dumps(microwave_report.to_json()))
        assert payload["model"] == "Microwave"
        assert len(payload["findings"]) == len(microwave_report.findings)
        witnessed = [f for f in payload["findings"] if "witness" in f]
        assert witnessed
        assert all(w["witness"]["schedule"] for w in witnessed)

    def test_wellformed_layer_included(self):
        builder = ModelBuilder("Synthetic")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1).state("Island", 2)
        klass.trans("A", "W1", "A")
        report = lint_model(builder.build(check=False), explore=False)
        wellformed = [f for f in report.findings if f.rule == "wellformed"]
        assert any("unreachable" in f.message for f in wellformed)


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path,
                                              microwave_report):
        path = tmp_path / "baseline.json"
        count = write_baseline(str(path), [microwave_report])
        assert count == len(microwave_report.findings)
        keys = load_baseline(str(path))
        report = lint_model(build_microwave_model(), schedules=8,
                            baseline=keys)
        assert report.findings == []
        assert len(report.suppressed) == count
        assert report.exit_code("warning") == 0

    def test_baseline_keys_are_sorted_for_clean_diffs(self, tmp_path,
                                                      microwave_report):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [microwave_report])
        payload = json.loads(path.read_text())
        assert payload["suppress"] == sorted(payload["suppress"])

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "suppress": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(path))

    def test_malformed_suppress_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 1, "suppress": [3]}')
        with pytest.raises(ValueError, match="string list"):
            load_baseline(str(path))


class TestLintCli:
    def test_json_output_parses(self, capsys):
        code = main(["lint", "microwave", "--json", "--schedules", "6"])
        assert code == 0
        reports = json.loads(capsys.readouterr().out)
        assert [r["model"] for r in reports] == ["Microwave"]
        assert reports[0]["counts"]["error"] == 0

    def test_fail_on_warning(self, capsys):
        assert main(["lint", "microwave", "--schedules", "6",
                     "--fail-on", "warning"]) == 1

    def test_baseline_round_trip_through_cli(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "microwave", "--schedules", "6",
                     "--write-baseline", str(baseline)]) == 0
        assert main(["lint", "microwave", "--schedules", "6",
                     "--baseline", str(baseline),
                     "--fail-on", "warning"]) == 0

    def test_no_witness_skips_exploration(self, capsys):
        code = main(["lint", "microwave", "--json", "--no-witness"])
        assert code == 0
        (report,) = json.loads(capsys.readouterr().out)
        assert report["runs_executed"] == 0
        assert not any("witness" in f for f in report["findings"])

    def test_unknown_model_exits_2(self, capsys):
        assert main(["lint", "nosuch"]) == 2
        assert "nosuch" in capsys.readouterr().err

    def test_bad_baseline_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["lint", "microwave", "--baseline", str(bad)]) == 2

    def test_model_file_accepted(self, capsys, tmp_path):
        path = tmp_path / "microwave.json"
        path.write_text(model_to_json(build_microwave_model()))
        assert main(["lint", str(path), "--schedules", "6"]) == 0
        assert "lint Microwave.control" in capsys.readouterr().out


class TestCheckCli:
    @pytest.fixture()
    def warning_model_file(self, tmp_path):
        builder = ModelBuilder("Synthetic")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1).state("Island", 2)
        klass.trans("A", "W1", "A")
        path = tmp_path / "model.json"
        path.write_text(model_to_json(builder.build(check=False)))
        return str(path)

    def test_warnings_pass_by_default(self, capsys, warning_model_file):
        assert main(["check", warning_model_file]) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out

    def test_strict_warnings_fails(self, capsys, warning_model_file):
        assert main(["check", warning_model_file,
                     "--strict-warnings"]) == 1

    def test_output_is_deterministically_sorted(self, capsys,
                                                warning_model_file):
        main(["check", warning_model_file])
        first = capsys.readouterr().out
        main(["check", warning_model_file])
        assert capsys.readouterr().out == first
