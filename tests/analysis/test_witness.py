"""Unit tests for scenario distillation and the interleaving explorer."""

import pytest

from repro.analysis.witness import (
    ReplayScheduler,
    WitnessSearch,
    replay_witness,
    run_scenario,
    scenarios_for_model,
    scenarios_from_cases,
    stimuli_from_scenarios,
)
from repro.models import build_elevator_model, build_microwave_model
from repro.runtime.scheduler import InterleavedScheduler, SynchronousScheduler
from repro.verify import suite_for
from repro.verify.testcase import ExpectState, InjectStep, RunStep


@pytest.fixture(scope="module")
def microwave():
    return build_microwave_model()


@pytest.fixture(scope="module")
def microwave_scenarios():
    return scenarios_for_model("Microwave")


@pytest.fixture(scope="module")
def microwave_search(microwave, microwave_scenarios):
    return WitnessSearch(microwave, microwave_scenarios,
                         component="control", schedules=8)


class TestScenarioDistillation:
    def test_every_scenario_has_a_stimulus(self, microwave_scenarios):
        assert microwave_scenarios
        for scenario in microwave_scenarios:
            assert any(isinstance(s, InjectStep) for s in scenario.steps)

    def test_expectations_are_stripped(self, microwave_scenarios):
        for scenario in microwave_scenarios:
            assert not any(isinstance(s, (ExpectState, RunStep))
                           for s in scenario.steps)

    def test_concurrent_variant_strips_delays(self):
        # the elevator suite spaces calls out with inject delays, so it
        # must also yield +concurrent variants with the delays removed
        scenarios = scenarios_for_model("Elevator")
        concurrent = [s for s in scenarios if s.name.endswith("+concurrent")]
        assert concurrent
        for scenario in concurrent:
            assert all(s.delay_us == 0 for s in scenario.steps
                       if isinstance(s, InjectStep))

    def test_model_name_drift_tolerated(self):
        # the catalog key is "packetproc"; the model names itself
        # "PacketProcessor" — both must resolve to the same suite
        assert scenarios_for_model("PacketProcessor")
        assert scenarios_for_model("packetproc")

    def test_unknown_model_yields_no_scenarios(self):
        assert scenarios_for_model("NoSuchModel") == ()

    def test_distillation_dedupes(self):
        cases = suite_for("microwave")
        once = scenarios_from_cases(cases)
        twice = scenarios_from_cases(list(cases) + list(cases))
        assert [s.name for s in once] == [s.name for s in twice]

    def test_stimuli_map(self, microwave_scenarios):
        stimuli = stimuli_from_scenarios(microwave_scenarios)
        assert "MO1" in stimuli["MO"]


class TestRunAndReplay:
    def test_synchronous_run_reaches_quiescence(self, microwave,
                                                microwave_scenarios):
        record = run_scenario(microwave, microwave_scenarios[0],
                              SynchronousScheduler(), component="control")
        assert not record.truncated
        assert record.steps == len(record.schedule)
        assert any(key == "MO" for key, _, _ in record.fingerprint)

    def test_replay_reproduces_fingerprint(self, microwave,
                                           microwave_scenarios):
        scenario = microwave_scenarios[-1]
        original = run_scenario(microwave, scenario,
                                InterleavedScheduler(5), component="control")
        replayer = ReplayScheduler(original.schedule)
        again = run_scenario(microwave, scenario, replayer,
                             component="control")
        assert again.fingerprint == original.fingerprint
        assert again.drops == original.drops
        assert not replayer.diverged

    def test_max_steps_truncates_instead_of_raising(self, microwave,
                                                    microwave_scenarios):
        record = run_scenario(microwave, microwave_scenarios[0],
                              SynchronousScheduler(), component="control",
                              max_steps=2)
        assert record.truncated
        assert record.steps == 2


class TestWitnessSearch:
    def test_finds_delayed_tick_drop(self, microwave, microwave_search):
        witness = microwave_search.find_drop("MO", "MO4", "Paused", "ignored")
        assert witness is not None
        assert witness.kind == "drop"
        assert replay_witness(microwave, witness, component="control")

    def test_drop_witness_is_trimmed_to_first_occurrence(self,
                                                         microwave_search):
        witness = microwave_search.find_drop("MO", "MO4", "Paused", "ignored")
        for record in microwave_search.records_for(witness.scenario):
            if record.seed == witness.seed:
                first = record.drop_step("MO", "MO4", "Paused", "ignored")
                assert len(witness.schedule) == first
                break
        else:  # pragma: no cover - the witness came from these records
            pytest.fail("witness record not found")

    def test_unrealizable_drop_returns_none(self, microwave_search):
        # MO5 is pinned to its generating state; no schedule can drop it
        assert microwave_search.find_drop(
            "MO", "MO5", "Idle", "ignored") is None

    def test_run_cache_counts_each_run_once(self, microwave,
                                            microwave_scenarios):
        search = WitnessSearch(microwave, microwave_scenarios[:1],
                               component="control", schedules=3)
        search.records_for(microwave_scenarios[0])
        after_first = search.runs_executed
        search.records_for(microwave_scenarios[0])
        assert search.runs_executed == after_first == 4  # baseline + 3

    def test_witness_json_is_self_describing(self, microwave_search):
        witness = microwave_search.find_drop("MO", "MO4", "Paused", "ignored")
        payload = witness.to_json()
        assert payload["kind"] == "drop"
        assert payload["observed"]["label"] == "MO4"
        assert payload["steps"]  # human-readable scenario script


class TestRaceWitness:
    def test_elevator_call_dispatch_races(self):
        model = build_elevator_model()
        search = WitnessSearch(model, scenarios_for_model("Elevator"),
                               schedules=8)
        witness = search.find_race("E", "E1")
        assert witness is not None
        assert witness.kind == "race"
        assert witness.baseline_schedule != witness.schedule
        assert replay_witness(model, witness)

    def test_pinned_signal_never_races(self, microwave_search):
        assert microwave_search.find_race("MO", "MO5") is None
