"""Unit tests for the whole-model detectors."""

import pytest

from repro.analysis.detectors import analyze_model, partition_lint
from repro.analysis.findings import Severity
from repro.analysis.witness import replay_witness
from repro.marks import MarkSet
from repro.models import (
    build_elevator_model,
    build_microwave_model,
    build_packetproc_model,
)
from repro.xuml import ModelBuilder


@pytest.fixture(scope="module")
def microwave_findings():
    return analyze_model(build_microwave_model(), schedules=8)


class TestDropDetection:
    def test_no_errors_without_witness_or_proof(self, microwave_findings):
        for finding in microwave_findings:
            if finding.severity is Severity.ERROR:
                assert finding.witness is not None

    def test_static_ignore_sites_reported(self, microwave_findings):
        lost = [f for f in microwave_findings if f.rule == "lost-signal"]
        assert lost
        # un-witnessed ignore rows stay informational
        assert all(f.severity in (Severity.INFO, Severity.WARNING)
                   for f in lost)

    def test_witnessed_drop_upgraded_and_replayable(self, microwave_findings):
        witnessed = [f for f in microwave_findings
                     if f.rule == "lost-signal" and f.witness is not None]
        assert witnessed
        model = build_microwave_model()
        for finding in witnessed:
            assert finding.severity is Severity.WARNING
            assert replay_witness(model, finding.witness,
                                  component="control")

    def test_explorer_catches_what_the_tables_missed(self,
                                                     microwave_findings):
        # two same-label self events can queue across run-to-completion
        # rounds; the arrival-state tables call MO6 pinned, the explorer
        # observes it dropped in Complete and must report it anyway
        missed = [f for f in microwave_findings
                  if "missed by arrival-state analysis" in f.message]
        assert any("MO6" in f.message for f in missed)
        assert all(f.witness is not None for f in missed)

    def test_suspects_without_witness_stay_downgraded(self):
        findings = analyze_model(build_packetproc_model(), schedules=8)
        cant = [f for f in findings if f.rule == "cant-happen"]
        assert cant  # the D1/CL1/CE1 handshake rows are suspects
        for finding in cant:
            assert finding.severity is Severity.WARNING
            assert finding.witness is None
            assert "not reproduced" in finding.message


class TestRaceDetection:
    def test_elevator_dispatch_race_found(self):
        model = build_elevator_model()
        findings = analyze_model(model, schedules=8)
        races = [f for f in findings if f.rule == "race"]
        assert any("E1" in f.message for f in races)
        for finding in races:
            assert finding.severity is Severity.WARNING
            assert replay_witness(model, finding.witness)

    def test_cascading_self_events_not_reported_as_races(self):
        findings = analyze_model(build_elevator_model(), schedules=8)
        races = [f for f in findings if f.rule == "race"]
        # E2/E3/E4 diverge only as a downstream echo of the E1 race —
        # one root cause, one finding
        assert not [f for f in races
                    if any(label in f.message for label in ("E2", "E3", "E4"))]

    def test_no_explorer_no_race_findings(self):
        findings = analyze_model(build_elevator_model(), explore=False)
        assert not [f for f in findings if f.rule == "race"]


class TestSendAwareReachability:
    def test_generated_events_keep_states_live(self, microwave_findings):
        assert not [f for f in microwave_findings
                    if f.rule == "send-aware-reachability"]

    def test_never_sent_event_strands_a_state(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.event("W2")
        klass.state("Start", 1, activity="generate W1:W() to self;")
        klass.state("Mid", 2)
        klass.state("End", 3)
        klass.trans("Start", "W1", "Mid")
        klass.trans("Mid", "W2", "End")
        model = builder.build(check=False)
        findings = analyze_model(model, explore=False, scenarios=())
        stranded = [f for f in findings
                    if f.rule == "send-aware-reachability"]
        assert len(stranded) == 1
        assert "'End'" in stranded[0].message
        assert "W2" in stranded[0].message


class TestStallCycles:
    @staticmethod
    def _mutual_wait_model():
        builder = ModelBuilder("M")
        component = builder.component("c")
        for mine, other in (("A", "B"), ("B", "A")):
            klass = component.klass(f"Class{mine}", mine)
            klass.event(f"{mine}1")
            klass.event(f"{mine}2")
            klass.state("Start", 1)
            klass.state("Wait", 2)
            klass.state("Done", 3, activity=f"""
                select any peer from instances of {other};
                if (not_empty peer)
                    generate {other}2:{other}() to peer;
                end if;
            """)
            klass.trans("Start", f"{mine}1", "Wait")
            klass.trans("Wait", f"{mine}2", "Done")
        return builder.build(check=False)

    def test_mutual_wait_reported_once(self):
        findings = analyze_model(self._mutual_wait_model(), explore=False,
                                 scenarios=())
        stalls = [f for f in findings if f.rule == "stall-cycle"]
        assert len(stalls) == 1
        assert "A.Wait" in stalls[0].message
        assert "B.Wait" in stalls[0].message

    def test_microwave_has_no_stall_cycle(self, microwave_findings):
        assert not [f for f in microwave_findings
                    if f.rule == "stall-cycle"]


class TestPartitionLint:
    @pytest.fixture(scope="class")
    def packetproc(self):
        return build_packetproc_model()

    def test_pure_software_partition_is_silent(self, packetproc):
        findings = partition_lint(
            packetproc, packetproc.components[0], MarkSet())
        assert findings == []

    def test_unprotected_critical_class_is_an_error(self, packetproc):
        component = packetproc.components[0]
        marks = MarkSet()
        marks.set(f"{component.name}.CE", "isHardware", True)
        marks.set(f"{component.name}.CE", "isCritical", True)
        findings = partition_lint(packetproc, component, marks)
        critical = [f for f in findings if f.rule == "partition.critical"]
        assert critical
        assert all(f.severity is Severity.ERROR for f in critical)
        assert any("no crc mark" in f.message for f in critical)

    def test_protected_critical_class_passes(self, packetproc):
        component = packetproc.components[0]
        marks = MarkSet()
        marks.set(f"{component.name}.CE", "isHardware", True)
        marks.set(f"{component.name}.CE", "isCritical", True)
        marks.set(f"{component.name}.CE", "crc", "crc32")
        marks.set(f"{component.name}.CE", "maxRetries", 3)
        findings = partition_lint(packetproc, component, marks)
        assert not [f for f in findings if f.rule == "partition.critical"]

    def test_loop_amplified_boundary_send_is_chatty(self):
        model = build_elevator_model()
        component = model.components[0]
        marks = MarkSet()
        marks.set(f"{component.name}.E", "isHardware", True)
        findings = partition_lint(model, component, marks)
        chatty = [f for f in findings if f.rule == "partition.chatty"]
        # Bank.Dispatching generates E1 inside its for-each over calls
        assert any("inside a loop" in f.message and "E1" in f.message
                   for f in chatty)
