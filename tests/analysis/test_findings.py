"""Unit tests for the shared findings model and its legacy facades."""

import json

from repro.analysis.findings import (
    Finding,
    LintFinding,
    MarkViolation,
    Severity,
    Violation,
    sorted_findings,
)


class TestSeverity:
    def test_rank_orders_badness(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_value_round_trips(self):
        for severity in Severity:
            assert Severity(severity.value) is severity


class TestFinding:
    def test_str_rendering(self):
        finding = Finding(Severity.WARNING, "c.MO", "signal dropped")
        assert str(finding) == "[warning] c.MO: signal dropped"

    def test_baseline_key_excludes_severity(self):
        info = Finding(Severity.INFO, "c.MO", "dropped", rule="lost-signal")
        warn = info.with_severity(Severity.WARNING)
        assert info.baseline_key == warn.baseline_key
        assert info.baseline_key == "lost-signal|c.MO|dropped"

    def test_witness_excluded_from_equality(self):
        plain = Finding(Severity.ERROR, "c.MO", "m", rule="r")
        witnessed = Finding(Severity.ERROR, "c.MO", "m", rule="r",
                            witness=object())
        assert plain == witnessed

    def test_json_round_trip(self):
        finding = Finding(Severity.ERROR, "gen/main.c", "bad include",
                          rule="structural", line=12)
        payload = json.loads(json.dumps(finding.to_json()))
        back = Finding.from_json(payload)
        assert back == finding

    def test_json_omits_absent_extras(self):
        payload = Finding(Severity.INFO, "e", "m").to_json()
        assert "line" not in payload and "witness" not in payload

    def test_with_severity_keeps_identity(self):
        finding = Finding(Severity.WARNING, "e", "m", rule="cant-happen")
        upgraded = finding.with_severity(Severity.ERROR, witness="w")
        assert upgraded.severity is Severity.ERROR
        assert upgraded.witness == "w"
        assert upgraded.baseline_key == finding.baseline_key


class TestSortedFindings:
    def test_worst_first_then_stable_key(self):
        findings = [
            Finding(Severity.INFO, "a", "z"),
            Finding(Severity.ERROR, "z", "a"),
            Finding(Severity.WARNING, "b", "b"),
            Finding(Severity.ERROR, "a", "b"),
        ]
        ordered = sorted_findings(findings)
        assert [f.severity for f in ordered] == [
            Severity.ERROR, Severity.ERROR, Severity.WARNING, Severity.INFO]
        assert [f.element for f in ordered] == ["a", "z", "b", "a"]

    def test_deterministic_under_shuffle(self):
        findings = [Finding(Severity.WARNING, e, m)
                    for e in "abc" for m in "xy"]
        assert sorted_findings(findings) == sorted_findings(reversed(findings))


class TestViolationCompat:
    def test_positional_signature(self):
        violation = Violation(Severity.WARNING, "c.W", "state unreachable")
        assert violation.severity is Severity.WARNING
        assert violation.element == "c.W"
        assert str(violation) == "[warning] c.W: state unreachable"

    def test_is_a_finding(self):
        assert isinstance(Violation(Severity.ERROR, "e", "m"), Finding)

    def test_reexported_from_wellformed(self):
        from repro.xuml.wellformed import Violation as Legacy
        assert Legacy is Violation


class TestLintFindingCompat:
    def test_legacy_signature_and_rendering(self):
        finding = LintFinding("gen/top.vhd", 4, "missing entity")
        assert finding.path == "gen/top.vhd"
        assert finding.line == 4
        assert finding.severity is Severity.ERROR
        assert finding.rule == "structural"
        assert str(finding) == "gen/top.vhd:4: missing entity"

    def test_is_a_finding_with_json(self):
        finding = LintFinding("a.c", 1, "m")
        assert isinstance(finding, Finding)
        assert finding.to_json()["line"] == 1

    def test_reexported_from_clint(self):
        from repro.mda.clint import LintFinding as Legacy
        assert Legacy is LintFinding


class TestMarkViolationCompat:
    def test_legacy_signature_and_rendering(self):
        violation = MarkViolation("control.MO", "crc", "bad kind")
        assert violation.element_path == "control.MO"
        assert violation.mark_name == "crc"
        assert violation.severity is Severity.ERROR
        assert violation.rule == "marks.crc"
        assert str(violation) == "control.MO crc: bad kind"

    def test_is_a_finding(self):
        assert isinstance(MarkViolation("e", "m", "x"), Finding)

    def test_reexported_from_validate(self):
        from repro.marks.validate import MarkViolation as Legacy
        assert Legacy is MarkViolation


class TestLazyPackageExports:
    def test_every_export_resolves(self):
        import repro.analysis as analysis
        for name in analysis.__all__:
            assert getattr(analysis, name) is not None
