"""Tests for sweep reporting (table + CSV)."""

import csv
import io

from repro.cli import main
from repro.cosim import (
    measurements_to_csv,
    periodic_packets,
    render_table,
    sweep_partitions,
    write_csv,
)
from repro.models import build_packetproc_model


def sample_rows():
    model = build_packetproc_model()
    packets = periodic_packets(10, period_us=50, length=128)
    return sweep_partitions(model, [(), ("CE",)], packets)


class TestReport:
    def test_table_has_one_line_per_partition(self):
        rows = sample_rows()
        table = render_table(rows)
        assert table.count("\n") == len(rows)      # header + N rows
        assert "(all software)" in table
        assert "CE" in table

    def test_csv_parses_back(self):
        rows = sample_rows()
        text = measurements_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["partition"] == "(all software)"
        assert int(parsed[0]["completed"]) == 10
        assert float(parsed[1]["mean_latency_ns"]) > 0

    def test_write_csv(self, tmp_path):
        rows = sample_rows()
        path = write_csv(rows, tmp_path / "sweep.csv")
        assert (tmp_path / "sweep.csv").read_text().startswith("partition,")
        assert path.endswith("sweep.csv")

    def test_cli_sweep_csv_option(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(["sweep", "--packets", "20", "--rate", "100",
                     "--csv", str(target)]) == 0
        assert target.exists()
        out = capsys.readouterr().out
        assert "winner:" in out
        assert str(target) in out
