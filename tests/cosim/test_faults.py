"""Engine-level fault injection and resilience (PR 1 tentpole).

Drives the packet-processing SoC over a hardware boundary while a
:class:`FaultPlan` mauls the bus, and checks the protocol's ledger:
protected builds retransmit and recover, unprotected builds lose
traffic gracefully, and everything reproduces from one seed.
"""

from repro.cosim import CoSimMachine, FaultPlan, FaultRates
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import build_packetproc_model, packetproc


def compiled(hardware=("CE", "D"), protected=False, max_retries=3,
             backoff_ns=2_000):
    model = build_packetproc_model()
    component = model.components[0]
    marks = marks_for_partition(component, hardware)
    if protected:
        for key in component.class_keys:
            path = f"{component.name}.{key}"
            marks.set(path, "crc", "crc16")
            marks.set(path, "maxRetries", max_retries)
            marks.set(path, "retryBackoffNs", backoff_ns)
            marks.set(path, "isCritical", True)
    return ModelCompiler(model).compile(marks)


def run_machine(build, plan=None, packets=20, spacing=50):
    machine = CoSimMachine(build, fault_plan=plan)
    handles = packetproc.populate(machine)
    for index in range(packets):
        machine.inject(handles["M"], "M1",
                       {"pkt_id": index + 1, "length": 128},
                       delay=index * spacing)
    machine.run()
    return machine, handles


class TestFaultFreeBaseline:
    def test_protected_build_without_plan_is_lossless(self):
        machine, handles = run_machine(compiled(protected=True))
        assert machine.read_attribute(handles["ST"], "packets") == 20
        assert machine.fault_stats.injected == 0
        assert machine.fault_stats.lost == 0

    def test_framing_widens_bus_traffic(self):
        plain, _ = run_machine(compiled(protected=False))
        framed, _ = run_machine(compiled(protected=True))
        assert framed.bus.stats.messages == plain.bus.stats.messages
        assert framed.bus.stats.bytes_moved > plain.bus.stats.bytes_moved


class TestProtectedRecovery:
    def test_corruption_detected_and_retransmitted(self):
        plan = FaultPlan(seed=5, default=FaultRates(corrupt=0.3))
        machine, handles = run_machine(compiled(protected=True), plan)
        stats = machine.fault_stats
        assert stats.injected_corruptions > 0
        assert stats.detected > 0
        assert stats.retransmissions > 0
        assert stats.recovered > 0
        assert stats.lost == 0
        # every packet still made it through the pipeline
        assert machine.read_attribute(handles["ST"], "packets") == 20

    def test_drops_recovered_by_retry(self):
        plan = FaultPlan(seed=5, default=FaultRates(drop=0.3))
        machine, handles = run_machine(compiled(protected=True), plan)
        stats = machine.fault_stats
        assert stats.injected_drops > 0
        assert stats.retransmissions > 0
        assert stats.lost == 0
        assert machine.read_attribute(handles["ST"], "packets") == 20

    def test_duplicates_discarded_by_dedup(self):
        plan = FaultPlan(seed=5, default=FaultRates(duplicate=1.0))
        machine, handles = run_machine(compiled(protected=True), plan)
        stats = machine.fault_stats
        assert stats.injected_duplicates > 0
        assert stats.duplicates_discarded == stats.injected_duplicates
        assert machine.read_attribute(handles["ST"], "packets") == 20

    def test_certain_drop_exhausts_retries_and_counts_critical(self):
        plan = FaultPlan(seed=5, default=FaultRates(drop=1.0))
        machine, handles = run_machine(
            compiled(protected=True, max_retries=2), plan, packets=3)
        stats = machine.fault_stats
        assert stats.lost > 0
        assert stats.critical_lost == stats.lost
        # every loss burned its full retry budget first
        assert stats.retransmissions == stats.lost * 2
        assert machine.read_attribute(handles["ST"], "packets") == 0


class TestUnprotectedDegradation:
    def test_drops_are_counted_silent_losses(self):
        plan = FaultPlan(seed=5, default=FaultRates(drop=0.4))
        machine, handles = run_machine(compiled(protected=False), plan)
        stats = machine.fault_stats
        assert stats.injected_drops > 0
        assert stats.lost == stats.injected_drops
        assert stats.retransmissions == 0
        assert machine.read_attribute(handles["ST"], "packets") < 20

    def test_corruption_never_raises(self):
        # heavy corruption across many seeds: the engine must always
        # degrade (detect-and-drop or deliver-corrupted), never crash
        for seed in range(6):
            plan = FaultPlan(seed=seed, default=FaultRates(
                corrupt=1.0, corrupt_bytes=2))
            machine, _ = run_machine(compiled(protected=False), plan,
                                     packets=10)
            stats = machine.fault_stats
            # poisoned state stalls the pipeline, so the hop count varies
            # by seed — but every corrupted frame was either rejected or
            # delivered, and the run completed without an exception
            assert stats.injected_corruptions > 0
            assert (stats.detected + stats.delivered_corrupted
                    == stats.injected_corruptions)

    def test_delay_reorders_but_delivers(self):
        plan = FaultPlan(seed=5, default=FaultRates(
            delay=0.5, delay_ns=40_000))
        machine, handles = run_machine(compiled(protected=False), plan)
        assert machine.fault_stats.injected_delays > 0
        assert machine.fault_stats.lost == 0
        assert machine.read_attribute(handles["ST"], "packets") == 20


class TestReproducibility:
    def ledger(self, seed, protected=True):
        plan = FaultPlan.uniform(seed, 0.2)
        machine, _ = run_machine(compiled(protected=protected), plan)
        return machine.fault_stats.as_dict()

    def test_same_seed_same_ledger(self):
        assert self.ledger(9) == self.ledger(9)
        assert self.ledger(9, protected=False) \
            == self.ledger(9, protected=False)

    def test_different_seed_different_faults(self):
        ledgers = {tuple(sorted(self.ledger(seed).items()))
                   for seed in range(4)}
        assert len(ledgers) > 1
