"""Unit tests for the shared bus and its arbitration policies."""

import pytest

from repro.cosim import Bus, BusRequest, CoSimConfig


def request(ready, seq, msg_id=1, size=16, side="sw", sink=None):
    delivered = sink if sink is not None else []
    return BusRequest(
        ready_at=ready, sequence=seq, message_id=msg_id,
        payload_bytes=size, sender_side=side,
        deliver=lambda: delivered.append(seq),
    )


class TestConfig:
    def test_transfer_time_formula(self):
        config = CoSimConfig(bus_arbitration_ns=50, bus_ns_per_byte=1.25)
        assert config.bus_transfer_ns(16) == 70
        assert config.bus_transfer_ns(0) == 50

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CoSimConfig(bus_policy="chaos").validated()

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CoSimConfig(sw_ns_per_op=-1).validated()


class TestBusFifo:
    def test_single_transfer_accounting(self):
        bus = Bus(CoSimConfig())
        bus.request(request(ready=0, seq=1, size=16))
        granted = bus.grant(0)
        assert granted is not None
        delivery, _req = granted
        assert delivery == 70
        assert bus.stats.messages == 1
        assert bus.stats.bytes_moved == 16
        assert bus.free_at == 70

    def test_busy_bus_defers(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1))
        bus.grant(0)
        bus.request(request(0, 2))
        assert bus.grant(10) is None          # still transferring
        delivery, _ = bus.grant(70)
        assert delivery == 140

    def test_fifo_orders_by_sequence(self):
        bus = Bus(CoSimConfig(bus_policy="fifo"))
        bus.request(request(0, 5))
        bus.request(request(0, 2))
        _d, chosen = bus.grant(0)
        assert chosen.sequence == 2

    def test_not_ready_requests_wait(self):
        bus = Bus(CoSimConfig())
        bus.request(request(ready=100, seq=1))
        assert bus.grant(0) is None
        assert bus.next_ready_time() == 100

    def test_wait_time_accounted(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1))
        bus.grant(0)
        bus.request(request(0, 2))
        bus.grant(70)
        assert bus.stats.wait_ns == 70


class TestArbitrationPolicies:
    def test_priority_prefers_low_message_id(self):
        bus = Bus(CoSimConfig(bus_policy="priority"))
        bus.request(request(0, 1, msg_id=9))
        bus.request(request(0, 2, msg_id=1))
        _d, chosen = bus.grant(0)
        assert chosen.message_id == 1

    def test_priority_fifo_within_level(self):
        bus = Bus(CoSimConfig(bus_policy="priority"))
        bus.request(request(0, 7, msg_id=1))
        bus.request(request(0, 3, msg_id=1))
        _d, chosen = bus.grant(0)
        assert chosen.sequence == 3

    def test_round_robin_alternates_sides(self):
        bus = Bus(CoSimConfig(bus_policy="round_robin"))
        bus.request(request(0, 1, side="hw"))
        bus.request(request(0, 2, side="sw"))
        bus.request(request(0, 3, side="hw"))
        _d, first = bus.grant(0)
        assert first.sender_side == "sw"     # last granted side starts "hw"
        _d, second = bus.grant(bus.free_at)
        assert second.sender_side == "hw"

    def test_utilization_bounded(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1, size=1000))
        bus.grant(0)
        assert 0.0 < bus.stats.utilization(10_000) <= 1.0
        assert bus.stats.utilization(0) == 0.0
