"""Unit tests for the shared bus and its arbitration policies."""

import pytest

from repro.cosim import Bus, BusRequest, CoSimConfig, FaultPlan, FaultRates


def request(ready, seq, msg_id=1, size=16, side="sw", sink=None):
    delivered = sink if sink is not None else []
    return BusRequest(
        ready_at=ready, sequence=seq, message_id=msg_id,
        payload_bytes=size, sender_side=side,
        deliver=lambda: delivered.append(seq),
    )


class TestConfig:
    def test_transfer_time_formula(self):
        config = CoSimConfig(bus_arbitration_ns=50, bus_ns_per_byte=1.25)
        assert config.bus_transfer_ns(16) == 70
        assert config.bus_transfer_ns(0) == 50

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CoSimConfig(bus_policy="chaos").validated()

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CoSimConfig(sw_ns_per_op=-1).validated()


class TestBusFifo:
    def test_single_transfer_accounting(self):
        bus = Bus(CoSimConfig())
        bus.request(request(ready=0, seq=1, size=16))
        granted = bus.grant(0)
        assert granted is not None
        delivery, _req = granted
        assert delivery == 70
        assert bus.stats.messages == 1
        assert bus.stats.bytes_moved == 16
        assert bus.free_at == 70

    def test_busy_bus_defers(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1))
        bus.grant(0)
        bus.request(request(0, 2))
        assert bus.grant(10) is None          # still transferring
        delivery, _ = bus.grant(70)
        assert delivery == 140

    def test_fifo_orders_by_sequence(self):
        bus = Bus(CoSimConfig(bus_policy="fifo"))
        bus.request(request(0, 5))
        bus.request(request(0, 2))
        _d, chosen = bus.grant(0)
        assert chosen.sequence == 2

    def test_not_ready_requests_wait(self):
        bus = Bus(CoSimConfig())
        bus.request(request(ready=100, seq=1))
        assert bus.grant(0) is None
        assert bus.next_ready_time() == 100

    def test_wait_time_accounted(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1))
        bus.grant(0)
        bus.request(request(0, 2))
        bus.grant(70)
        assert bus.stats.wait_ns == 70


class TestArbitrationPolicies:
    def test_priority_prefers_low_message_id(self):
        bus = Bus(CoSimConfig(bus_policy="priority"))
        bus.request(request(0, 1, msg_id=9))
        bus.request(request(0, 2, msg_id=1))
        _d, chosen = bus.grant(0)
        assert chosen.message_id == 1

    def test_priority_fifo_within_level(self):
        bus = Bus(CoSimConfig(bus_policy="priority"))
        bus.request(request(0, 7, msg_id=1))
        bus.request(request(0, 3, msg_id=1))
        _d, chosen = bus.grant(0)
        assert chosen.sequence == 3

    def test_round_robin_alternates_sides(self):
        bus = Bus(CoSimConfig(bus_policy="round_robin"))
        bus.request(request(0, 1, side="hw"))
        bus.request(request(0, 2, side="sw"))
        bus.request(request(0, 3, side="hw"))
        _d, first = bus.grant(0)
        assert first.sender_side == "sw"     # last granted side starts "hw"
        _d, second = bus.grant(bus.free_at)
        assert second.sender_side == "hw"

    def test_utilization_bounded(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1, size=1000))
        bus.grant(0)
        assert 0.0 < bus.stats.utilization(10_000) <= 1.0
        assert bus.stats.utilization(0) == 0.0


class TestContentionAccounting:
    def test_wait_accumulates_under_backlog(self):
        # three requests ready at t=0; the second waits one transfer,
        # the third waits two (70 ns each at the default config)
        bus = Bus(CoSimConfig())
        for seq in (1, 2, 3):
            bus.request(request(0, seq))
        now = 0
        for expected_wait in (0, 70, 140):
            granted = bus.grant(now)
            _delivery, chosen = granted
            assert now - chosen.ready_at == expected_wait
            now = bus.free_at
        assert bus.stats.wait_ns == 0 + 70 + 140
        assert bus.stats.messages == 3
        assert bus.stats.busy_ns == 3 * 70

    def test_round_robin_keeps_alternating_under_contention(self):
        bus = Bus(CoSimConfig(bus_policy="round_robin"))
        for seq, side in enumerate(("hw", "hw", "sw", "sw", "hw", "sw"), 1):
            bus.request(request(0, seq, side=side))
        sides = []
        now = 0
        while bus.has_pending():
            _d, chosen = bus.grant(now)
            sides.append(chosen.sender_side)
            now = bus.free_at
        # strict alternation as long as both sides have pending work
        assert sides == ["sw", "hw", "sw", "hw", "sw", "hw"]

    def test_backlogged_bus_still_moves_every_byte(self):
        bus = Bus(CoSimConfig())
        total = 0
        for seq in range(1, 6):
            bus.request(request(0, seq, size=seq * 8))
            total += seq * 8
        now = 0
        while bus.has_pending():
            bus.grant(now)
            now = bus.free_at
        assert bus.stats.bytes_moved == total


class TestBusFaultPath:
    def grant_all(self, bus):
        granted = []
        now = 0
        while bus.has_pending():
            delivery, chosen = bus.grant(now)
            granted.append((delivery, chosen))
            now = bus.free_at
        return granted

    def test_no_plan_leaves_requests_clean(self):
        bus = Bus(CoSimConfig())
        bus.request(request(0, 1))
        _d, chosen = bus.grant(0)
        assert chosen.fault is None
        assert bus.fault_stats.injected == 0

    def test_certain_drop_marks_every_grant(self):
        plan = FaultPlan(seed=3, default=FaultRates(drop=1.0))
        bus = Bus(CoSimConfig(), fault_plan=plan)
        for seq in range(1, 5):
            bus.request(request(0, seq, size=8))
        for _delivery, chosen in self.grant_all(bus):
            assert chosen.fault is not None and chosen.fault.drop
        assert bus.fault_stats.injected_drops == 4
        # the bus still accounts the transfer: the wire was occupied
        assert bus.stats.messages == 4
        assert bus.stats.bytes_moved == 32

    def test_delay_fault_lands_late_but_frees_on_time(self):
        plan = FaultPlan(seed=3, default=FaultRates(delay=1.0, delay_ns=500))
        bus = Bus(CoSimConfig(), fault_plan=plan)
        bus.request(request(0, 1, size=16))
        delivery, chosen = bus.grant(0)
        assert chosen.fault.delay_ns == 500
        assert delivery == 70 + 500
        assert bus.free_at == 70          # next transfer is not blocked

    def test_fault_decisions_reproducible_across_buses(self):
        def decisions(seed):
            plan = FaultPlan.uniform(seed, 0.3)
            bus = Bus(CoSimConfig(), fault_plan=plan)
            for seq in range(1, 20):
                bus.request(request(0, seq, size=8))
            return [chosen.fault for _d, chosen in self.grant_all(bus)]

        assert decisions(11) == decisions(11)
        assert decisions(11) != decisions(12)

    def test_shared_stats_instance_is_used(self):
        plan = FaultPlan(seed=1, default=FaultRates(corrupt=1.0))
        from repro.cosim import FaultStats
        shared = FaultStats()
        bus = Bus(CoSimConfig(), fault_plan=plan, fault_stats=shared)
        bus.request(request(0, 1))
        bus.grant(0)
        assert shared.injected_corruptions == 1
        assert bus.fault_stats is shared
