"""LatencyProbe correctness: keyless signals, retransmits, percentiles.

Regression coverage for two silent-wrong behaviours the probe used to
have: correlating every keyless signal on ``None`` (collapsing them all
into one bogus sample) and ``setdefault`` swallowing retransmitted
starts, plus the round-based p99 that under-reported the tail.
"""

from dataclasses import dataclass, field

from repro.cosim.perf import LatencyProbe, LatencySample


@dataclass
class StubSignal:
    class_key: str
    label: str
    params: dict = field(default_factory=dict)


class StubMachine:
    """Just the observer surface the probe attaches to."""

    def __init__(self):
        self.on_sent = []
        self.on_consumed = []

    def sent(self, time_ns, signal):
        for observer in self.on_sent:
            observer(time_ns, signal)

    def consumed(self, time_ns, signal):
        for observer in self.on_consumed:
            observer(time_ns, signal)


def probe_on(machine):
    return LatencyProbe(machine, start=("M", "go"), end=("S", "done"),
                        key_param="pkt_id")


class TestKeylessSignals:
    def test_keyless_starts_do_not_collapse_into_one_sample(self):
        machine = StubMachine()
        probe = probe_on(machine)
        # three keyless starts and ends: previously all three correlated
        # on key None, yielding bogus cross-matched samples
        for index in range(3):
            machine.sent(index * 10, StubSignal("M", "go"))
        for index in range(3):
            machine.consumed(100 + index, StubSignal("S", "done"))
        assert probe.count == 0
        assert probe.unmatched == 6
        assert probe.in_flight == 0

    def test_end_without_start_is_unmatched(self):
        machine = StubMachine()
        probe = probe_on(machine)
        machine.consumed(50, StubSignal("S", "done", {"pkt_id": 9}))
        assert probe.count == 0
        assert probe.unmatched == 1

    def test_keyed_signals_still_correlate(self):
        machine = StubMachine()
        probe = probe_on(machine)
        machine.sent(10, StubSignal("M", "go", {"pkt_id": 1}))
        machine.consumed(35, StubSignal("S", "done", {"pkt_id": 1}))
        assert probe.count == 1
        assert probe.samples[0].latency_ns == 25
        assert probe.unmatched == 0


class TestRetransmittedStarts:
    def test_repeated_start_is_counted_not_swallowed(self):
        machine = StubMachine()
        probe = probe_on(machine)
        machine.sent(10, StubSignal("M", "go", {"pkt_id": 1}))
        machine.sent(40, StubSignal("M", "go", {"pkt_id": 1}))  # resend
        machine.consumed(100, StubSignal("S", "done", {"pkt_id": 1}))
        assert probe.resent == 1
        sample = probe.samples[0]
        # end-to-end latency runs from the FIRST send
        assert sample.start_ns == 10
        assert sample.last_start_ns == 40
        assert sample.latency_ns == 90
        assert sample.was_resent

    def test_single_send_sample_is_not_marked_resent(self):
        machine = StubMachine()
        probe = probe_on(machine)
        machine.sent(10, StubSignal("M", "go", {"pkt_id": 1}))
        machine.consumed(30, StubSignal("S", "done", {"pkt_id": 1}))
        assert probe.resent == 0
        assert not probe.samples[0].was_resent

    def test_key_reuse_after_completion_opens_a_new_sample(self):
        machine = StubMachine()
        probe = probe_on(machine)
        machine.sent(0, StubSignal("M", "go", {"pkt_id": 1}))
        machine.consumed(10, StubSignal("S", "done", {"pkt_id": 1}))
        machine.sent(100, StubSignal("M", "go", {"pkt_id": 1}))
        machine.consumed(130, StubSignal("S", "done", {"pkt_id": 1}))
        assert probe.resent == 0
        assert [s.latency_ns for s in probe.samples] == [10, 30]

    def test_in_flight_tracks_open_starts(self):
        machine = StubMachine()
        probe = probe_on(machine)
        machine.sent(0, StubSignal("M", "go", {"pkt_id": 1}))
        machine.sent(0, StubSignal("M", "go", {"pkt_id": 2}))
        assert probe.in_flight == 2
        machine.consumed(5, StubSignal("S", "done", {"pkt_id": 1}))
        assert probe.in_flight == 1


class TestPercentiles:
    def test_p99_of_100_distinct_samples_is_the_100th(self):
        machine = StubMachine()
        probe = probe_on(machine)
        for index in range(100):
            machine.sent(0, StubSignal("M", "go", {"pkt_id": index}))
            # latencies 1..100 ns, in scrambled completion order
        for index in sorted(range(100), key=lambda i: (i * 37) % 100):
            machine.consumed(index + 1,
                             StubSignal("S", "done", {"pkt_id": index}))
        assert probe.count == 100
        # round-based indexing (the old bug) reported 99 here
        assert probe.p99_ns() == 100
        assert probe.percentile_ns(0.5) == 51
        assert probe.max_ns() == 100

    def test_sample_dataclass_defaults(self):
        sample = LatencySample("k", 5, 30)
        assert sample.latency_ns == 25
        assert not sample.was_resent
