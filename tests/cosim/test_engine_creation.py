"""Co-simulation of models that create instances at run time."""

from repro.cosim import CoSimMachine
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import build_checksum_model, fletcher_reference


def compiled(hardware=()):
    model = build_checksum_model()
    component = model.components[0]
    return ModelCompiler(model).compile(
        marks_for_partition(component, hardware))


class TestCreationEventsOnPlatform:
    def test_jobs_complete_all_software(self):
        machine = CoSimMachine(compiled(()))
        machine.create_instance("AC", engine_id=1)
        for job_id in (1, 2, 3):
            machine.send_creation(
                "J", "J0", {"job_id": job_id, "length": 40, "seed": 0})
        machine.run()
        jobs = machine.instances_of("J")
        assert len(jobs) == 3
        expected = fletcher_reference(40, 0)
        for job in jobs:
            assert machine.read_attribute(job, "result") == expected

    def test_jobs_complete_with_hardware_engine(self):
        machine = CoSimMachine(compiled(("AC",)))
        machine.create_instance("AC", engine_id=1)
        machine.send_creation(
            "J", "J0", {"job_id": 1, "length": 64, "seed": 9})
        machine.run()
        job = machine.instances_of("J")[0]
        assert machine.read_attribute(job, "result") == fletcher_reference(
            64, 9)
        # J (software) -> AC (hardware) and back crossed the bus
        assert machine.bus.stats.messages == 2

    def test_compute_time_attributed_to_hardware(self):
        machine = CoSimMachine(compiled(("AC",)))
        machine.create_instance("AC", engine_id=1)
        machine.send_creation(
            "J", "J0", {"job_id": 1, "length": 500, "seed": 0})
        machine.run()
        assert machine.hw_stats["AC"].busy_ns > 0
        assert machine.hw_stats["AC"].dispatches >= 1
