"""Behavioural tests of the co-simulation engine."""

import pytest

from repro.cosim import (
    CoSimConfig,
    CoSimMachine,
    LatencyProbe,
    ThroughputProbe,
    measure_partition,
    periodic_packets,
    poisson_packets,
    sweep_partitions,
)
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import build_packetproc_model, packetproc


def compiled(hardware=()):
    model = build_packetproc_model()
    component = model.components[0]
    return ModelCompiler(model).compile(
        marks_for_partition(component, hardware))


def run_machine(hardware=(), packets=20, spacing=50, config=None):
    machine = CoSimMachine(compiled(hardware), config)
    handles = packetproc.populate(machine)
    for index in range(packets):
        machine.inject(handles["M"], "M1",
                       {"pkt_id": index + 1, "length": 128},
                       delay=index * spacing)
    machine.run()
    return machine, handles


class TestFunctionalCorrectness:
    def test_all_packets_processed_all_software(self):
        machine, handles = run_machine(())
        assert machine.read_attribute(handles["ST"], "packets") == 20

    def test_all_packets_processed_with_hardware(self):
        machine, handles = run_machine(("CE", "D"))
        assert machine.read_attribute(handles["ST"], "packets") == 20
        assert machine.read_attribute(handles["CE"], "encrypted") == 10

    def test_same_results_any_partition(self):
        results = []
        for hardware in [(), ("CE",), ("CE", "D"), ("CE", "CL", "D", "M",
                                                    "ST", "FR")]:
            machine, handles = run_machine(hardware)
            results.append((
                machine.read_attribute(handles["ST"], "packets"),
                machine.read_attribute(handles["ST"], "bytes_total"),
                machine.read_attribute(handles["CE"], "encrypted"),
            ))
        assert len(set(results)) == 1

    def test_boundary_traffic_counted(self):
        machine, _ = run_machine(("CE", "D"))
        # 10 crypto (CL->CE) + 10 clear (CL->D) + 20 (D->ST); the
        # CE->D hops stay inside the hardware side and never touch
        # the bus
        assert machine.bus.stats.messages == 40
        assert machine.bus_messages_sent == 40

    def test_no_bus_without_boundary(self):
        machine, _ = run_machine(())
        assert machine.bus.stats.messages == 0


class TestTiming:
    def test_time_advances_monotonically(self):
        machine, _ = run_machine(("CE",))
        assert machine.now > 0

    def test_cpu_busy_accounted(self):
        machine, _ = run_machine(())
        assert machine.cpu_stats.busy_ns > 0
        assert machine.cpu_stats.dispatches > 0
        assert 0 < machine.utilization_report()["cpu"] <= 1.0

    def test_hw_stats_only_for_hw_classes(self):
        machine, _ = run_machine(("CE",))
        assert machine.hw_stats["CE"].dispatches > 0
        report = machine.utilization_report()
        assert "hw:CE" in report

    def test_hardware_cheaper_per_op(self):
        sw_machine, _ = run_machine(())
        hw_machine, _ = run_machine(("CE", "CL", "D", "M", "ST", "FR"))
        # identical work, faster platform: the all-hardware makespan is
        # shorter (after the last injection at the same offset)
        assert hw_machine.now <= sw_machine.now

    def test_horizon_stops_early(self):
        machine = CoSimMachine(compiled(()))
        handles = packetproc.populate(machine)
        machine.inject(handles["M"], "M1", {"pkt_id": 1, "length": 64},
                       delay=1000)
        machine.run(horizon_us=10)
        assert machine.read_attribute(handles["ST"], "packets") == 0

    def test_config_injection(self):
        config = CoSimConfig(sw_ns_per_op=100, sw_dispatch_ns=1000)
        slow, _ = run_machine((), config=config)
        fast, _ = run_machine((), config=CoSimConfig(sw_ns_per_op=5,
                                                     sw_dispatch_ns=50))
        assert slow.cpu_stats.busy_ns > fast.cpu_stats.busy_ns


class TestProbes:
    def test_latency_probe_counts_all(self):
        machine = CoSimMachine(compiled(("CE",)))
        handles = packetproc.populate(machine)
        probe = LatencyProbe(machine, ("M", "M1"), ("ST", "ST1"), "pkt_id")
        for index in range(5):
            machine.inject(handles["M"], "M1",
                           {"pkt_id": index + 1, "length": 64},
                           delay=index * 10)
        machine.run()
        assert probe.count == 5
        assert probe.mean_ns() > 0
        assert probe.p99_ns() >= probe.mean_ns() * 0.5
        assert probe.max_ns() >= probe.p99_ns()

    def test_throughput_probe(self):
        machine = CoSimMachine(compiled(()))
        handles = packetproc.populate(machine)
        probe = ThroughputProbe(machine, ("ST", "ST1"))
        for index in range(10):
            machine.inject(handles["M"], "M1",
                           {"pkt_id": index + 1, "length": 64},
                           delay=index * 100)
        machine.run()
        assert probe.completions == 10
        assert probe.per_second() > 0


class TestWorkloads:
    def test_poisson_reproducible(self):
        a = poisson_packets(50, 10, seed=3)
        b = poisson_packets(50, 10, seed=3)
        assert a == b
        assert a != poisson_packets(50, 10, seed=4)

    def test_poisson_rate_roughly_matches(self):
        packets = poisson_packets(2000, rate_per_ms=10, seed=1)
        span_ms = packets[-1].time_us / 1000
        rate = len(packets) / span_ms
        assert 8 < rate < 12

    def test_periodic_spacing(self):
        packets = periodic_packets(5, period_us=100)
        gaps = {b.time_us - a.time_us
                for a, b in zip(packets, packets[1:])}
        assert gaps == {100}

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_packets(1, rate_per_ms=0)


class TestSweep:
    def test_measure_partition_end_to_end(self):
        model = build_packetproc_model()
        packets = periodic_packets(30, period_us=50, length=128)
        measurement = measure_partition(model, ("CE",), packets)
        assert measurement.completed == 30
        assert measurement.hardware_classes == ("CE",)
        assert measurement.mean_latency_ns > 0
        assert measurement.label == "CE"

    def test_sweep_is_deterministic(self):
        model = build_packetproc_model()
        packets = periodic_packets(20, period_us=25, length=256)
        first = sweep_partitions(model, [(), ("CE",)], packets)
        second = sweep_partitions(model, [(), ("CE",)], packets)
        assert [m.mean_latency_ns for m in first] == [
            m.mean_latency_ns for m in second]
