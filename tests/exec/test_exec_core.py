"""Unit tests for the unified execution core (:mod:`repro.exec`)."""

import pytest

from repro.exec import (
    BreakSignal,
    CORE_NAME,
    ContinueSignal,
    IRExecutor,
    ReturnSignal,
    c_div,
    c_mod,
    clear_lowering_cache,
    lower_component,
    lowering_cache_stats,
)
from repro.oal.errors import OALRuntimeError
from repro.runtime import Simulation
from repro.xuml import ModelBuilder


def build_counter_model():
    builder = ModelBuilder("M")
    component = builder.component("c")
    counter = component.klass("Counter", "CN")
    counter.attr("cn_id", "unique_id")
    counter.attr("n", "integer")
    counter.event("GO", params=[("a", "integer")])
    counter.state("Idle", 1)
    counter.state("Ran", 2, activity="self.n = param.a * 2;")
    counter.trans("Idle", "GO", "Ran")
    return builder.build()


class TestCValues:
    def test_c_div_truncates_toward_zero(self):
        assert c_div(7, 2) == 3
        assert c_div(-7, 2) == -3
        assert c_div(7, -2) == -3
        assert c_div(-7, -2) == 3

    def test_c_mod_sign_follows_dividend(self):
        assert c_mod(7, 2) == 1
        assert c_mod(-7, 2) == -1
        assert c_mod(7, -2) == 1
        assert c_mod(-7, -2) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(OALRuntimeError):
            c_div(1, 0)
        with pytest.raises(OALRuntimeError):
            c_mod(1, 0)


class TestSingleDefinitions:
    """The satellite fixes: one c_div/c_mod, one control-flow family."""

    def test_runtime_reexports_the_core_cvalues(self):
        from repro import runtime

        assert runtime.c_div is c_div
        assert runtime.c_mod is c_mod

    def test_ast_tree_walker_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.runtime.interpreter  # noqa: F401

    def test_archrt_no_longer_imports_from_runtime_interpreter(self):
        import repro.mda.archrt as archrt

        # the duplicated private control-flow classes are gone too
        for name in ("_Break", "_Continue", "_Return", "_Frame"):
            assert not hasattr(archrt, name)

    def test_control_flow_signals_are_distinct_exceptions(self):
        assert issubclass(BreakSignal, Exception)
        assert issubclass(ContinueSignal, Exception)
        assert ReturnSignal(5).value == 5

    def test_actionir_shim_serves_the_core_lowering(self):
        from repro.exec import ir as core_ir
        from repro.mda import actionir

        assert actionir.lower_block is core_ir.lower_block
        assert actionir.walk_ir_statements is core_ir.walk_ir_statements


class TestExecutorErrorsArePluggable:
    def test_custom_error_type_is_raised(self):
        class HostError(Exception):
            pass

        executor = IRExecutor(host=None, error=HostError)
        with pytest.raises(HostError):
            executor.run([["exprstmt", ["var", "never_assigned"]]], None, {})

    def test_run_returns_return_value(self):
        executor = IRExecutor(host=None)
        assert executor.run([["return", ["int", 42]]], None, {}) == 42

    def test_ops_executed_counts_statements(self):
        executor = IRExecutor(host=None)
        executor.run([["assign_var", "x", ["int", 1]],
                      ["assign_var", "y", ["int", 2]]], None, {})
        assert executor.ops_executed == 2


class TestLoweringCache:
    def test_identical_models_share_one_lowering(self):
        clear_lowering_cache()
        model_a = build_counter_model()
        model_b = build_counter_model()
        lowered_a = lower_component(model_a, model_a.components[0])
        lowered_b = lower_component(model_b, model_b.components[0])
        assert lowered_a is lowered_b
        stats = lowering_cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_simulation_construction_hits_the_cache(self):
        clear_lowering_cache()
        Simulation(build_counter_model())
        Simulation(build_counter_model())
        stats = lowering_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_cache_counters_reach_obs_registry(self):
        from repro.obs.metrics import observe

        clear_lowering_cache()
        with observe() as registry:
            Simulation(build_counter_model())
            Simulation(build_counter_model())
        assert registry.counter("exec.lower_cache.misses").value == 1
        assert registry.counter("exec.lower_cache.hits").value == 1


class TestExecutionCoreIdentity:
    def test_simulation_reports_the_shared_core(self):
        sim = Simulation(build_counter_model())
        assert CORE_NAME in sim.execution_core

    def test_target_machine_reports_the_shared_core(self):
        from repro.marks.partition import marks_for_partition
        from repro.mda.compiler import ModelCompiler
        from repro.mda.csim import CSoftwareMachine

        model = build_counter_model()
        marks = marks_for_partition(model.components[0], ())
        build = ModelCompiler(model).compile(marks)
        machine = CSoftwareMachine(build.manifest)
        assert CORE_NAME in machine.execution_core

    def test_both_layers_execute_through_one_evaluator_class(self):
        from repro.marks.partition import marks_for_partition
        from repro.mda.compiler import ModelCompiler
        from repro.mda.csim import CSoftwareMachine

        model = build_counter_model()
        sim = Simulation(model)
        marks = marks_for_partition(model.components[0], ())
        build = ModelCompiler(model).compile(marks)
        machine = CSoftwareMachine(build.manifest)
        assert type(sim._exec) is type(machine.executor) is IRExecutor

    def test_ops_executed_counts_on_both_layers(self):
        model = build_counter_model()
        sim = Simulation(model)
        handle = sim.create_instance("CN", cn_id=1)
        sim.inject(handle, "GO", {"a": 3})
        sim.run_to_quiescence()
        assert sim.ops_executed > 0
        assert sim.read_attribute(handle, "n") == 6


class TestCheckCommandReportsCore(object):
    def test_check_prints_execution_core(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.xuml.serialize import model_to_dict

        path = tmp_path / "m.json"
        path.write_text(json.dumps(model_to_dict(build_counter_model())))
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"execution core: {CORE_NAME}" in out
