"""Pinned copy of the retired AST tree-walker, kept as a test oracle.

This module preserves, verbatim, the ``ActivityInterpreter`` that used to
live at ``repro/runtime/interpreter.py`` before the execution core was
unified on the lowered action IR (:mod:`repro.exec`).  The differential
tests and the E12 benchmark run the same models through this pinned
walker and through the live IR evaluator and demand byte-identical
traces — the proof that the refactor changed the *code shape* and not
the *semantics*.

Do not "fix" or modernize this file: its value is that it does not move.
"""

from __future__ import annotations

from repro.oal import ast
from repro.oal.analyzer import AnalyzedActivity, analyze_activity
from repro.oal.errors import OALRuntimeError
from repro.oal.parser import parse_activity
from repro.runtime.errors import SelectionError
from repro.runtime.simulator import Simulation
from repro.runtime.tracing import TraceKind
from repro.xuml.klass import Operation


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__()


def c_div(left: int, right: int) -> int:
    """C-style integer division: truncation toward zero."""
    if right == 0:
        raise OALRuntimeError("integer division by zero")
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def c_mod(left: int, right: int) -> int:
    """C-style remainder: sign follows the dividend."""
    if right == 0:
        raise OALRuntimeError("integer remainder by zero")
    return left - c_div(left, right) * right


class ActivityInterpreter:
    """Executes one activity in the context of a simulation.

    Parameters
    ----------
    simulation:
        The host (duck-typed; see :mod:`repro.runtime.simulator`).
    analysis:
        The :class:`AnalyzedActivity` for the block being run.
    self_handle:
        Handle of the executing instance, or None for class operations.
    params:
        Event data items (``param.x``) or operation arguments.
    """

    def __init__(self, simulation, analysis: AnalyzedActivity, self_handle, params):
        self._sim = simulation
        self._analysis = analysis
        self._self = self_handle
        self._params = dict(params)
        self._locals: dict[str, object] = {}
        self._selected: object = None

    # -- entry point ----------------------------------------------------------

    def run(self):
        """Execute the block; returns the ``return`` value, if any."""
        try:
            self._exec_block(self._analysis.block)
        except _Return as ret:
            return ret.value
        except (_Break, _Continue):  # pragma: no cover - analyzer prevents
            raise OALRuntimeError("break/continue escaped its loop")
        return None

    # -- statements ------------------------------------------------------------

    def _exec_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, "_exec_" + type(stmt).__name__)
        method(stmt)

    def _exec_Assign(self, stmt: ast.Assign) -> None:
        value = self._eval(stmt.value)
        target = stmt.target
        if isinstance(target, ast.NameRef):
            self._locals[target.name] = value
            return
        assert isinstance(target, ast.AttrAccess)
        handle = self._eval(target.target)
        self._require_instance(handle, stmt)
        self._sim.write_attribute(handle, target.attribute, value)

    def _exec_CreateInstance(self, stmt: ast.CreateInstance) -> None:
        handle = self._sim.create_instance(stmt.class_key)
        self._locals[stmt.variable] = handle

    def _exec_DeleteInstance(self, stmt: ast.DeleteInstance) -> None:
        handle = self._eval(stmt.target)
        self._require_instance(handle, stmt)
        self._sim.delete_instance(handle)

    def _exec_SelectFromInstances(self, stmt: ast.SelectFromInstances) -> None:
        handles = self._sim.instances_of(stmt.class_key)
        handles = self._filter_where(handles, stmt.where)
        if stmt.many:
            self._locals[stmt.variable] = tuple(sorted(handles))
        else:
            self._locals[stmt.variable] = handles[0] if handles else None

    def _exec_SelectRelated(self, stmt: ast.SelectRelated) -> None:
        start = self._eval(stmt.start)
        current: tuple[int, ...]
        current = () if start is None else (start,)
        for hop in stmt.hops:
            gathered: set[int] = set()
            for handle in current:
                gathered.update(
                    self._sim.navigate(handle, hop.association, hop.class_key, hop.phrase)
                )
            current = tuple(sorted(gathered))
        current = self._filter_where(current, stmt.where)
        if stmt.many:
            self._locals[stmt.variable] = tuple(sorted(current))
        else:
            if len(current) > 1:
                raise SelectionError(
                    f"select one {stmt.variable}: navigation produced "
                    f"{len(current)} instances"
                )
            self._locals[stmt.variable] = current[0] if current else None

    def _filter_where(self, handles, where: ast.Expr | None):
        handles = tuple(handles)
        if where is None:
            return handles
        kept = []
        outer = self._selected
        try:
            for handle in handles:
                self._selected = handle
                if self._eval(where):
                    kept.append(handle)
        finally:
            self._selected = outer
        return tuple(kept)

    def _exec_Relate(self, stmt: ast.Relate) -> None:
        left = self._eval(stmt.left)
        right = self._eval(stmt.right)
        self._require_instance(left, stmt)
        self._require_instance(right, stmt)
        self._sim.relate(left, right, stmt.association, stmt.phrase)

    def _exec_Unrelate(self, stmt: ast.Unrelate) -> None:
        left = self._eval(stmt.left)
        right = self._eval(stmt.right)
        self._require_instance(left, stmt)
        self._require_instance(right, stmt)
        self._sim.unrelate(left, right, stmt.association, stmt.phrase)

    def _exec_Generate(self, stmt: ast.Generate) -> None:
        params = {name: self._eval(value) for name, value in stmt.arguments}
        class_key = self._analysis.generate_classes[id(stmt)]
        delay = int(self._eval(stmt.delay)) if stmt.delay is not None else 0
        if stmt.target is None:
            self._sim.send_creation(class_key, stmt.event_label, params,
                                    sender=self._self, delay=delay)
            return
        target = self._eval(stmt.target)
        self._require_instance(target, stmt)
        self._sim.send_signal(
            target, class_key, stmt.event_label, params,
            sender=self._self, delay=delay,
        )

    def _exec_If(self, stmt: ast.If) -> None:
        for condition, branch in stmt.branches:
            if self._eval(condition):
                self._exec_block(branch)
                return
        if stmt.orelse is not None:
            self._exec_block(stmt.orelse)

    def _exec_While(self, stmt: ast.While) -> None:
        guard = 0
        while self._eval(stmt.condition):
            guard += 1
            if guard > self._sim.loop_bound:
                raise OALRuntimeError(
                    f"while loop exceeded {self._sim.loop_bound} iterations"
                )
            try:
                self._exec_block(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_ForEach(self, stmt: ast.ForEach) -> None:
        handles = self._eval(stmt.iterable)
        for handle in handles:
            self._locals[stmt.variable] = handle
            try:
                self._exec_block(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_Break(self, stmt: ast.Break) -> None:
        raise _Break

    def _exec_Continue(self, stmt: ast.Continue) -> None:
        raise _Continue

    def _exec_Return(self, stmt: ast.Return) -> None:
        value = self._eval(stmt.value) if stmt.value is not None else None
        raise _Return(value)

    def _exec_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self._eval(stmt.expr)

    # -- expressions -------------------------------------------------------------

    def _eval(self, expr: ast.Expr):
        method = getattr(self, "_eval_" + type(expr).__name__)
        return method(expr)

    def _eval_IntLit(self, expr: ast.IntLit):
        return expr.value

    def _eval_RealLit(self, expr: ast.RealLit):
        return expr.value

    def _eval_StringLit(self, expr: ast.StringLit):
        return expr.value

    def _eval_BoolLit(self, expr: ast.BoolLit):
        return expr.value

    def _eval_EnumLit(self, expr: ast.EnumLit):
        return expr.enumerator

    def _eval_SelfRef(self, expr: ast.SelfRef):
        return self._self

    def _eval_SelectedRef(self, expr: ast.SelectedRef):
        return self._selected

    def _eval_NameRef(self, expr: ast.NameRef):
        try:
            return self._locals[expr.name]
        except KeyError:
            raise OALRuntimeError(
                f"variable {expr.name!r} read before assignment"
            ) from None

    def _eval_ParamRef(self, expr: ast.ParamRef):
        try:
            return self._params[expr.name]
        except KeyError:
            raise OALRuntimeError(f"event carries no parameter {expr.name!r}") from None

    def _eval_AttrAccess(self, expr: ast.AttrAccess):
        handle = self._eval(expr.target)
        self._require_instance(handle, expr)
        return self._sim.read_attribute(handle, expr.attribute)

    def _eval_Unary(self, expr: ast.Unary):
        value = self._eval(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "not":
            return not value
        if expr.op == "cardinality":
            return len(self._as_set(value))
        if expr.op == "empty":
            return len(self._as_set(value)) == 0
        if expr.op == "not_empty":
            return len(self._as_set(value)) != 0
        raise OALRuntimeError(f"unknown unary operator {expr.op!r}")

    @staticmethod
    def _as_set(value) -> tuple:
        if value is None:
            return ()
        if isinstance(value, tuple):
            return value
        return (value,)

    def _eval_Binary(self, expr: ast.Binary):
        op = expr.op
        if op == "and":
            return bool(self._eval(expr.left)) and bool(self._eval(expr.right))
        if op == "or":
            return bool(self._eval(expr.left)) or bool(self._eval(expr.right))
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return c_div(left, right)
            if right == 0:
                raise OALRuntimeError("division by zero")
            return left / right
        if op == "%":
            return c_mod(left, right)
        raise OALRuntimeError(f"unknown binary operator {op!r}")

    def _eval_BridgeCall(self, expr: ast.BridgeCall):
        kwargs = {name: self._eval(value) for name, value in expr.arguments}
        if self._analysis.static_operation_calls.get(id(expr)):
            return self._sim.call_class_operation(expr.entity, expr.operation, kwargs)
        return self._sim.call_bridge(
            self._self, expr.entity, expr.operation, kwargs
        )

    def _eval_OperationCall(self, expr: ast.OperationCall):
        handle = self._eval(expr.target)
        self._require_instance(handle, expr)
        kwargs = {name: self._eval(value) for name, value in expr.arguments}
        return self._sim.call_instance_operation(handle, expr.operation, kwargs)

    # -- misc --------------------------------------------------------------------

    def _require_instance(self, handle, node: ast.Node) -> None:
        if handle is None:
            raise OALRuntimeError(
                f"empty instance reference used at line {node.line}"
            )


class PinnedAstSimulation(Simulation):
    """A :class:`Simulation` that executes activities through the pinned
    AST tree-walker instead of the shared IR evaluator.

    Reproduces the pre-refactor ``_prepare_activities`` preparation (one
    parse/analyze pass per activity, operation, and derived attribute)
    and routes the four execution call sites back through
    :class:`ActivityInterpreter`.  Everything else — dispatch, tracing,
    schedulers, bridges — is the live simulator, so a trace diff
    isolates exactly the executor swap.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ast_activities: dict[tuple[str, str], AnalyzedActivity] = {}
        self._ast_operations: dict[tuple[str, str], AnalyzedActivity] = {}
        self._ast_derived: dict[tuple[str, str], AnalyzedActivity] = {}
        for klass in self.component.classes:
            key = klass.key_letters
            for state in klass.statemachine.states:
                block = parse_activity(state.activity)
                analysis = analyze_activity(
                    block, self.model, self.component, klass, state)
                self._ast_activities[(key, state.name)] = analysis
            for operation in klass.operations:
                block = parse_activity(operation.body)
                analysis = analyze_activity(
                    block, self.model, self.component, klass, None,
                    operation=operation)
                self._ast_operations[(key, operation.name)] = analysis
            for attribute in klass.attributes:
                if attribute.derived is None:
                    continue
                pseudo = Operation(
                    f"derived_{attribute.name}",
                    f"return {attribute.derived};",
                    instance_based=True,
                    returns=attribute.dtype,
                )
                block = parse_activity(pseudo.body)
                analysis = analyze_activity(
                    block, self.model, self.component, klass, None,
                    operation=pseudo)
                self._ast_derived[(key, attribute.name)] = analysis

    @property
    def execution_core(self) -> str:
        return "pinned AST tree-walker (test oracle)"

    def read_attribute(self, handle: int, name: str):
        instance = self.instance(handle)
        klass = self.component.klass(instance.class_key)
        attribute = klass.attribute(name)
        if attribute.derived is not None:
            analysis = self._ast_derived[(instance.class_key, name)]
            return ActivityInterpreter(self, analysis, handle, {}).run()
        return instance.get(name)

    def call_instance_operation(self, handle: int, name: str, kwargs: dict):
        class_key = self.class_of(handle)
        analysis = self._ast_operations[(class_key, name)]
        return ActivityInterpreter(self, analysis, handle, kwargs).run()

    def call_class_operation(self, class_key: str, name: str, kwargs: dict):
        analysis = self._ast_operations[(class_key, name)]
        return ActivityInterpreter(self, analysis, None, kwargs).run()

    def _run_state_activity(self, instance, state_name, signal) -> None:
        analysis = self._ast_activities[(instance.class_key, state_name)]
        activity_id = self._next_activity
        self._next_activity += 1
        self.trace.record(
            self.now, TraceKind.ACTIVITY_START,
            activity=activity_id, handle=instance.handle,
            class_key=instance.class_key, state=state_name,
            consumed_sequence=signal.sequence,
        )
        self._activity_stack.append(activity_id)
        try:
            params = {
                name: signal.params.get(name)
                for name in analysis.event_parameters
            }
            ActivityInterpreter(self, analysis, instance.handle, params).run()
        finally:
            self._activity_stack.pop()
            self.trace.record(
                self.now, TraceKind.ACTIVITY_END,
                activity=activity_id, handle=instance.handle,
                class_key=instance.class_key, state=state_name,
            )
