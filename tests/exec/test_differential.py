"""Differential evidence that the unified core changed nothing observable.

Two families:

* **Arithmetic differential** — property-style: the abstract runtime,
  the C architecture simulator and the VHDL architecture simulator are
  handed the same model and the same operands and must agree on every
  C-semantics edge case (negative-operand division/modulo truncation,
  empty-set cardinality, enum comparisons).  Before the refactor these
  were three hand-synchronized implementations; now agreement is by
  construction, and this test is the tripwire that keeps it that way.

* **Old-vs-new trace sweep** — every catalog model x its golden verify
  suite, executed once through the pinned pre-refactor AST tree-walker
  (:mod:`tests.exec.pinned_ast_interpreter`) and once through the live
  IR path, must produce **byte-identical** exported traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marks.partition import marks_for_partition
from repro.mda.compiler import ModelCompiler
from repro.mda.csim import CSoftwareMachine
from repro.mda.vsim import VHardwareMachine
from repro.models import build_model
from repro.models.catalog import CATALOG
from repro.obs import dump_jsonl
from repro.runtime import Simulation
from repro.verify import Target, run_case, suite_for
from repro.xuml import ModelBuilder

from .pinned_ast_interpreter import PinnedAstSimulation


def build_arith_model():
    """One class whose activity exercises the shared value semantics."""
    builder = ModelBuilder("M")
    component = builder.component("c")
    component.enum("Mode", ["OFF", "ON", "AUTO"])
    arith = component.klass("Arith", "AR")
    arith.attr("ar_id", "unique_id")
    arith.attr("q", "integer")
    arith.attr("r", "integer")
    arith.attr("card", "integer")
    arith.attr("enum_eq", "boolean")
    arith.attr("tag", "integer", default=0)
    arith.event("GO", params=[("a", "integer"), ("b", "integer")])
    arith.state("Idle", 1)
    arith.state("Ran", 2, activity="""
        self.q = param.a / param.b;
        self.r = param.a % param.b;
        select many nothing from instances of AR
            where (selected.tag == 1);
        self.card = cardinality nothing;
        m = Mode::AUTO;
        self.enum_eq = (m == Mode::AUTO) and (m != Mode::OFF);
    """)
    arith.trans("Idle", "GO", "Ran")
    return builder.build()


ARITH_MODEL = build_arith_model()
_COMPONENT = ARITH_MODEL.components[0]
_SW_BUILD = ModelCompiler(ARITH_MODEL).compile(
    marks_for_partition(_COMPONENT, ()))
_HW_BUILD = ModelCompiler(ARITH_MODEL).compile(
    marks_for_partition(_COMPONENT, tuple(_COMPONENT.class_keys)))


def _observe(engine, a: int, b: int) -> tuple:
    handle = engine.create_instance("AR", ar_id=1)
    engine.inject(handle, "GO", {"a": a, "b": b})
    engine.run_to_quiescence()
    return (
        engine.read_attribute(handle, "q"),
        engine.read_attribute(handle, "r"),
        engine.read_attribute(handle, "card"),
        engine.read_attribute(handle, "enum_eq"),
    )


class TestArithmeticDifferential:
    @settings(deadline=None, max_examples=40)
    @given(a=st.integers(-1_000_000, 1_000_000),
           b=st.integers(-1_000_000, 1_000_000).filter(lambda v: v != 0))
    def test_three_executors_agree(self, a, b):
        abstract = _observe(Simulation(ARITH_MODEL), a, b)
        csim = _observe(CSoftwareMachine(_SW_BUILD.manifest), a, b)
        vsim = _observe(VHardwareMachine(_HW_BUILD.manifest, 100), a, b)
        assert abstract == csim == vsim

    def test_truncation_edge_cases(self):
        for a, b in [(-7, 2), (7, -2), (-7, -2), (-1, 3), (1, -3), (-9, -9)]:
            abstract = _observe(Simulation(ARITH_MODEL), a, b)
            csim = _observe(CSoftwareMachine(_SW_BUILD.manifest), a, b)
            vsim = _observe(VHardwareMachine(_HW_BUILD.manifest, 100), a, b)
            assert abstract == csim == vsim, (a, b)
            # C semantics, stated directly: truncation toward zero,
            # remainder sign follows the dividend
            quotient, remainder, card, enum_eq = abstract
            assert quotient == int(a / b)
            assert remainder == a - int(a / b) * b
            assert card == 0
            assert enum_eq is True

    def test_empty_set_cardinality_is_zero(self):
        result = _observe(Simulation(ARITH_MODEL), 10, 3)
        assert result[2] == 0


class TestOldVsNewTraceSweep:
    """Every catalog model x golden suite: pinned AST path == IR path."""

    def test_traces_are_byte_identical(self):
        swept = 0
        for entry in CATALOG:
            for case in suite_for(entry.name):
                pinned = Target(PinnedAstSimulation(build_model(entry.name)))
                live = Target(Simulation(build_model(entry.name)))
                pinned_result = run_case(case, pinned)
                live_result = run_case(case, live)
                assert live_result.error == pinned_result.error, \
                    (entry.name, case.name)
                assert ([f.message for f in live_result.failures]
                        == [f.message for f in pinned_result.failures]), \
                    (entry.name, case.name)
                assert dump_jsonl(live.trace) == dump_jsonl(pinned.trace), \
                    (entry.name, case.name)
                swept += 1
        assert swept >= 20   # the catalog's suites are non-trivial

    def test_pinned_oracle_actually_uses_the_old_walker(self):
        sim = PinnedAstSimulation(build_model("checksum"))
        assert "pinned AST tree-walker" in sim.execution_core
