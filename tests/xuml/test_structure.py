"""Unit tests for classes, components and models."""

import pytest

from repro.xuml import (
    Attribute,
    Component,
    CoreType,
    DuplicateElementError,
    EventSpec,
    ExternalEntity,
    BridgeSpec,
    Model,
    ModelClass,
    Operation,
    UnknownElementError,
)
from repro.xuml.association import Association, AssociationEnd, Multiplicity


def oven_class() -> ModelClass:
    klass = ModelClass("MicrowaveOven", "MO", 1)
    klass.add_attribute(Attribute("oven_id", CoreType.UNIQUE_ID))
    klass.add_event(EventSpec("MO1", "cook"))
    return klass


class TestModelClass:
    def test_duplicate_attribute_rejected(self):
        klass = oven_class()
        with pytest.raises(DuplicateElementError):
            klass.add_attribute(Attribute("oven_id", CoreType.INTEGER))

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownElementError):
            oven_class().attribute("nope")

    def test_duplicate_event_rejected(self):
        klass = oven_class()
        with pytest.raises(DuplicateElementError):
            klass.add_event(EventSpec("MO1"))

    def test_unknown_event_raises(self):
        with pytest.raises(UnknownElementError):
            oven_class().event("MO9")

    def test_operations(self):
        klass = oven_class()
        klass.add_operation(Operation("reset"))
        assert klass.operation("reset").instance_based
        with pytest.raises(DuplicateElementError):
            klass.add_operation(Operation("reset"))
        with pytest.raises(UnknownElementError):
            klass.operation("nope")

    def test_passive_class_is_not_active(self):
        assert not oven_class().is_active

    def test_bad_key_letters_rejected(self):
        with pytest.raises(ValueError):
            ModelClass("Oven", "M O", 1)


class TestComponent:
    def build(self) -> Component:
        component = Component("control")
        component.add_class(oven_class())
        return component

    def test_duplicate_key_letters_rejected(self):
        component = self.build()
        with pytest.raises(DuplicateElementError):
            component.add_class(ModelClass("Other", "MO", 2))

    def test_duplicate_class_number_rejected(self):
        component = self.build()
        with pytest.raises(DuplicateElementError):
            component.add_class(ModelClass("Other", "OT", 1))

    def test_unknown_class_raises(self):
        with pytest.raises(UnknownElementError):
            self.build().klass("XX")

    def test_associations_of(self):
        component = self.build()
        component.add_class(ModelClass("PowerTube", "PT", 2))
        assoc = Association(
            "R1",
            AssociationEnd("MO", "a", Multiplicity.ONE),
            AssociationEnd("PT", "b", Multiplicity.ONE),
        )
        component.add_association(assoc)
        assert component.associations_of("MO") == (assoc,)
        assert component.associations_of("XX") == ()

    def test_duplicate_association_number_rejected(self):
        component = self.build()
        component.add_class(ModelClass("PowerTube", "PT", 2))
        assoc = Association(
            "R1",
            AssociationEnd("MO", "a", Multiplicity.ONE),
            AssociationEnd("PT", "b", Multiplicity.ONE),
        )
        component.add_association(assoc)
        with pytest.raises(DuplicateElementError):
            component.add_association(assoc)

    def test_externals(self):
        component = self.build()
        entity = ExternalEntity("TIM", "timer service")
        entity.add_bridge(BridgeSpec("current_time"))
        component.add_external(entity)
        assert component.external("TIM").bridge("current_time")
        with pytest.raises(UnknownElementError):
            component.external("LOG")
        with pytest.raises(UnknownElementError):
            component.external("TIM").bridge("nope")


class TestModel:
    def build(self) -> Model:
        model = Model("Microwave")
        component = Component("control")
        component.add_class(oven_class())
        model.add_component(component)
        return model

    def test_class_paths(self):
        assert self.build().class_paths() == ("control.MO",)

    def test_resolve_class(self):
        model = self.build()
        assert model.resolve_class("control.MO").key_letters == "MO"

    def test_resolve_bad_path_raises(self):
        model = self.build()
        with pytest.raises(UnknownElementError):
            model.resolve_class("justonepart")
        with pytest.raises(UnknownElementError):
            model.resolve_class("nope.MO")

    def test_class_path_roundtrip(self):
        model = self.build()
        klass = model.resolve_class("control.MO")
        assert model.class_path(klass) == "control.MO"

    def test_duplicate_component_rejected(self):
        model = self.build()
        with pytest.raises(DuplicateElementError):
            model.add_component(Component("control"))

    def test_stats(self):
        stats = self.build().stats()
        assert stats["classes"] == 1
        assert stats["attributes"] == 1
        assert stats["events"] == 1
        assert stats["states"] == 0
