"""Unit tests for the state transition table."""

import pytest

from repro.xuml import (
    DefinitionError,
    DuplicateElementError,
    EventResponse,
    State,
    StateMachine,
    UnknownElementError,
)


def two_state_machine() -> StateMachine:
    machine = StateMachine()
    machine.add_state(State("Idle", 1))
    machine.add_state(State("Busy", 2))
    machine.add_transition("Idle", "EV1", "Busy")
    machine.add_transition("Busy", "EV2", "Idle")
    return machine


class TestConstruction:
    def test_first_state_becomes_initial(self):
        machine = two_state_machine()
        assert machine.initial_state == "Idle"

    def test_final_state_does_not_become_initial(self):
        machine = StateMachine()
        machine.add_state(State("Done", 1, final=True))
        assert machine.initial_state is None

    def test_duplicate_state_name_rejected(self):
        machine = two_state_machine()
        with pytest.raises(DuplicateElementError):
            machine.add_state(State("Idle", 3))

    def test_duplicate_state_number_rejected(self):
        machine = two_state_machine()
        with pytest.raises(DuplicateElementError):
            machine.add_state(State("Other", 1))

    def test_duplicate_table_entry_rejected(self):
        machine = two_state_machine()
        with pytest.raises(DuplicateElementError):
            machine.add_transition("Idle", "EV1", "Idle")

    def test_duplicate_creation_transition_rejected(self):
        machine = two_state_machine()
        machine.add_creation_transition("EV9", "Idle")
        with pytest.raises(DuplicateElementError):
            machine.add_creation_transition("EV9", "Busy")

    def test_bad_state_name_rejected(self):
        with pytest.raises(ValueError):
            State("has space", 1)

    def test_state_numbers_start_at_one(self):
        with pytest.raises(ValueError):
            State("X", 0)


class TestResponses:
    def test_transition_response(self):
        machine = two_state_machine()
        assert machine.response_to("Idle", "EV1") is EventResponse.TRANSITION

    def test_unlisted_pair_cant_happen(self):
        machine = two_state_machine()
        assert machine.response_to("Idle", "EV2") is EventResponse.CANT_HAPPEN

    def test_ignore_entry(self):
        machine = two_state_machine()
        machine.set_ignored("Idle", "EV2")
        assert machine.response_to("Idle", "EV2") is EventResponse.IGNORE

    def test_explicit_cant_happen_entry(self):
        machine = two_state_machine()
        machine.set_cant_happen("Busy", "EV1")
        assert machine.response_to("Busy", "EV1") is EventResponse.CANT_HAPPEN

    def test_cannot_ignore_a_transition_pair(self):
        machine = two_state_machine()
        with pytest.raises(DefinitionError):
            machine.set_ignored("Idle", "EV1")

    def test_cannot_cant_happen_a_transition_pair(self):
        machine = two_state_machine()
        with pytest.raises(DefinitionError):
            machine.set_cant_happen("Idle", "EV1")

    def test_transition_for_lookup(self):
        machine = two_state_machine()
        transition = machine.transition_for("Idle", "EV1")
        assert transition.to_state == "Busy"
        assert machine.transition_for("Idle", "EV2") is None

    def test_creation_transition_lookup(self):
        machine = two_state_machine()
        machine.add_creation_transition("EV9", "Busy")
        assert machine.creation_transition_for("EV9").to_state == "Busy"
        assert machine.creation_transition_for("EV1") is None


class TestQueries:
    def test_unknown_state_lookup_raises(self):
        with pytest.raises(UnknownElementError):
            two_state_machine().state("Nope")

    def test_events_handled_includes_all_entry_kinds(self):
        machine = two_state_machine()
        machine.set_ignored("Idle", "EV3")
        machine.add_creation_transition("EV9", "Idle")
        assert machine.events_handled() == {"EV1", "EV2", "EV3", "EV9"}

    def test_reachable_states_from_initial(self):
        machine = two_state_machine()
        machine.add_state(State("Orphan", 3))
        reachable = machine.reachable_states()
        assert reachable == {"Idle", "Busy"}

    def test_creation_targets_count_as_reachable(self):
        machine = two_state_machine()
        machine.add_state(State("Born", 3))
        machine.add_creation_transition("EV9", "Born")
        assert "Born" in machine.reachable_states()

    def test_empty_machine(self):
        machine = StateMachine()
        assert machine.is_empty()
        assert not two_state_machine().is_empty()
