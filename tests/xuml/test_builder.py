"""Unit tests for the fluent model builder."""

import pytest

from repro.xuml import (
    CoreType,
    EnumType,
    InstRefType,
    InstSetType,
    ModelBuilder,
    Multiplicity,
    WellFormednessError,
    parse_multiplicity,
)


class TestMultiplicityParsing:
    @pytest.mark.parametrize("text,expected", [
        ("1", Multiplicity.ONE),
        ("1..1", Multiplicity.ONE),
        ("0..1", Multiplicity.ZERO_ONE),
        ("*", Multiplicity.ZERO_MANY),
        ("0..*", Multiplicity.ZERO_MANY),
        ("1..*", Multiplicity.MANY),
    ])
    def test_spellings(self, text, expected):
        assert parse_multiplicity(text) is expected

    def test_unknown_spelling_rejected(self):
        with pytest.raises(ValueError):
            parse_multiplicity("2..4")


class TestBuilder:
    def test_type_names_resolve_lazily(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.attr("mode", "Mode")            # enum declared *after* use
        component.enum("Mode", ["OFF", "ON"])
        model = builder.build(check=False)
        attribute = model.resolve_class("c.W").attribute("mode")
        assert isinstance(attribute.dtype, EnumType)
        assert attribute.dtype.enumerators == ("OFF", "ON")

    def test_inst_ref_type_spellings(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.attr("peer", "inst_ref<W>")
        klass.attr("peers", "inst_ref_set<W>")
        model = builder.build(check=False)
        widget = model.resolve_class("c.W")
        assert widget.attribute("peer").dtype == InstRefType("W")
        assert widget.attribute("peers").dtype == InstSetType("W")

    def test_unknown_type_name_rejected_at_build(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        component.klass("Widget", "W").attr("x", "mystery")
        with pytest.raises(ValueError):
            builder.build(check=False)

    def test_event_params_resolve(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        component.enum("Mode", ["OFF", "ON"])
        klass = component.klass("Widget", "W")
        klass.event("W1", params=[("mode", "Mode"), ("n", "integer")])
        model = builder.build(check=False)
        event = model.resolve_class("c.W").event("W1")
        assert isinstance(event.parameter("mode").dtype, EnumType)
        assert event.parameter("n").dtype is CoreType.INTEGER

    def test_class_numbers_auto_increment(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        component.klass("A", "A")
        component.klass("B", "B")
        model = builder.build(check=False)
        assert model.resolve_class("c.A").number == 1
        assert model.resolve_class("c.B").number == 2

    def test_explicit_number_respected(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        component.klass("A", "A", number=7)
        component.klass("B", "B")
        model = builder.build(check=False)
        assert model.resolve_class("c.B").number == 8

    def test_strict_build_raises_on_errors(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("S", 1)
        klass.trans("S", "W_NOPE", "S")       # undeclared event
        with pytest.raises(WellFormednessError):
            builder.build()

    def test_initial_override(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1).state("B", 2).initial("B")
        klass.trans("B", "W1", "A")
        model = builder.build(check=False)
        assert model.resolve_class("c.W").statemachine.initial_state == "B"

    def test_operation_definition(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        klass = component.klass("Widget", "W")
        klass.operation("double_it", body="return param.x * 2;",
                        returns="integer", params=[("x", "integer")])
        model = builder.build(check=False)
        operation = model.resolve_class("c.W").operation("double_it")
        assert operation.returns is CoreType.INTEGER
        assert operation.parameters[0].name == "x"
