"""Round-trip tests for model serialization."""

import json

import pytest

from repro.models import all_models, microwave
from repro.runtime import Simulation
from repro.xuml import (
    SerializationError,
    check_model,
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_json,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["microwave", "trafficlight",
                                      "packetproc", "elevator", "checksum"])
    def test_dict_roundtrip_is_identity(self, name):
        model = all_models()[name]
        first = model_to_dict(model)
        rebuilt = model_from_dict(first)
        assert model_to_dict(rebuilt) == first

    @pytest.mark.parametrize("name", ["microwave", "packetproc"])
    def test_json_roundtrip(self, name):
        model = all_models()[name]
        text = model_to_json(model)
        json.loads(text)                       # is real JSON
        rebuilt = model_from_json(text)
        assert model_to_json(rebuilt) == text

    def test_loaded_model_is_well_formed(self):
        model = model_from_dict(model_to_dict(all_models()["elevator"]))
        errors = [v for v in check_model(model)
                  if v.severity.value == "error"]
        assert errors == []

    def test_loaded_model_executes_identically(self):
        original = microwave.build_microwave_model()
        loaded = model_from_dict(model_to_dict(original))

        def run(model):
            sim = Simulation(model)
            oven, tube = microwave.populate(sim)
            sim.inject(oven, "MO1", {"seconds": 3})
            sim.inject(oven, "MO2", delay=1_500_000)
            sim.inject(oven, "MO3", delay=4_000_000)
            sim.run_to_quiescence()
            return sim.trace.behavioural_summary(), sim.now

        assert run(original) == run(loaded)


class TestFormatChecks:
    def test_version_enforced(self):
        data = model_to_dict(all_models()["microwave"])
        data["format"] = 99
        with pytest.raises(SerializationError):
            model_from_dict(data)

    def test_missing_version_rejected(self):
        with pytest.raises(SerializationError):
            model_from_dict({"name": "X"})

    def test_unknown_type_tag_rejected(self):
        data = model_to_dict(all_models()["microwave"])
        klass = data["components"][0]["classes"][0]
        klass["attributes"][0]["type"] = "quaternion"
        with pytest.raises(SerializationError):
            model_from_dict(data)

    def test_enum_types_reattach(self):
        data = model_to_dict(all_models()["microwave"])
        # add an enum + enum attribute, then reload
        component = data["components"][0]
        component["enums"].append(
            {"name": "Power", "enumerators": ["LOW", "HIGH"]})
        component["classes"][0]["attributes"].append(
            {"name": "power", "type": "enum:Power", "default": None,
             "referential": None, "derived": None})
        model = model_from_dict(data)
        attribute = model.resolve_class("control.MO").attribute("power")
        assert attribute.dtype.enumerators == ("LOW", "HIGH")
