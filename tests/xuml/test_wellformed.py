"""Unit tests for well-formedness checking."""

import pytest

from repro.xuml import ModelBuilder, Severity, WellFormednessError, check_model


def violations_of(builder, **kwargs):
    model = builder.build(check=False)
    return check_model(model, **kwargs)


def base_builder():
    builder = ModelBuilder("M")
    component = builder.component("c")
    return builder, component


class TestIdentifierRules:
    def test_identifier_with_unknown_attribute(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.attr("a", "integer")
        klass.identifier(1, "a", "ghost")
        found = violations_of(builder)
        assert any("ghost" in str(v) for v in found)

    def test_clean_identifier_passes(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.attr("a", "integer")
        klass.identifier(1, "a")
        assert violations_of(builder) == []


class TestReferentialRules:
    def test_unknown_association(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.attr("other_id", "integer", referential="R9")
        found = violations_of(builder)
        assert any("R9" in str(v) for v in found)

    def test_non_participant_formalization(self):
        builder, component = base_builder()
        component.klass("A", "A").attr("x", "integer", referential="R1")
        component.klass("B", "B")
        component.klass("C", "C")
        component.assoc("R1", ("B", "left", "1"), ("C", "right", "1"))
        found = violations_of(builder)
        assert any("does not participate" in str(v) for v in found)


class TestStateMachineRules:
    def test_transition_to_unknown_state(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1)
        klass.trans("A", "W1", "Ghost")
        found = violations_of(builder)
        assert any("Ghost" in str(v) for v in found)

    def test_transition_on_undeclared_event(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1).state("B", 2)
        klass.trans("A", "W9", "B")
        found = violations_of(builder)
        assert any("W9" in str(v) for v in found)

    def test_creation_event_on_normal_transition(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W0", creation=True)
        klass.state("A", 1).state("B", 2)
        klass.trans("A", "W0", "B")
        found = violations_of(builder)
        assert any("creation event" in str(v) for v in found)

    def test_creation_transition_on_normal_event(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1)
        klass.creation("W1", "A")
        found = violations_of(builder)
        assert any("not declared creation" in str(v) for v in found)

    def test_unreachable_state_is_warning_only(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1).state("Island", 2)
        klass.trans("A", "W1", "A")
        found = violations_of(builder)
        warnings = [v for v in found if v.severity is Severity.WARNING]
        assert any("unreachable" in str(v) for v in warnings)
        # strict mode must NOT raise on warnings
        model = builder._model
        check_model(model, strict=True)

    def test_unhandled_event_is_warning(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.event("W_UNUSED")
        klass.state("A", 1)
        klass.trans("A", "W1", "A")
        found = violations_of(builder)
        assert any("never handled" in str(v) for v in found)

    def test_events_without_machine_is_error(self):
        builder, component = base_builder()
        component.klass("Widget", "W").event("W1")
        found = violations_of(builder)
        assert any("no state machine" in str(v) for v in found)


class TestAssociationRules:
    def test_end_references_unknown_class(self):
        builder, component = base_builder()
        component.klass("A", "A")
        component.assoc("R1", ("A", "x", "1"), ("GHOST", "y", "1"))
        found = violations_of(builder)
        assert any("GHOST" in str(v) for v in found)

    def test_reflexive_same_phrase_rejected(self):
        builder, component = base_builder()
        component.klass("A", "A")
        component.assoc("R1", ("A", "same", "*"), ("A", "same", "0..1"))
        found = violations_of(builder)
        assert any("distinct phrases" in str(v) for v in found)


class TestActionRules:
    def test_syntax_error_in_activity(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1, activity="this is not OAL")
        klass.trans("A", "W1", "A")
        found = violations_of(builder)
        assert any("does not parse" in str(v) for v in found)

    def test_type_error_in_activity(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.attr("n", "integer")
        klass.event("W1")
        klass.state("A", 1, activity='self.n = "text";')
        klass.trans("A", "W1", "A")
        found = violations_of(builder)
        assert any("ill-typed" in str(v) for v in found)

    def test_strict_raises_with_all_errors_listed(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1, activity="nonsense")
        klass.trans("A", "W1", "Ghost")
        model = builder.build(check=False)
        with pytest.raises(WellFormednessError) as excinfo:
            check_model(model, strict=True)
        assert len(excinfo.value.violations) >= 2

    def test_actions_check_can_be_skipped(self):
        builder, component = base_builder()
        klass = component.klass("Widget", "W")
        klass.event("W1")
        klass.state("A", 1, activity="nonsense")
        klass.trans("A", "W1", "A")
        model = builder.build(check=False)
        assert check_model(model, check_actions=False) == []
