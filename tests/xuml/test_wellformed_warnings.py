"""Warning-path coverage for well-formedness across the catalog.

The error paths of :mod:`repro.xuml.wellformed` are exercised by
``test_wellformed.py`` on synthetic models; this module pins down the
*warning* behavior on every real catalog model: the shipped models are
warning-clean, and mutating any of them (an island state, an undeclared
-use event) produces exactly the expected warning without upgrading it
to an error.
"""

import pytest

from repro.models import CATALOG, build_model
from repro.xuml import EventSpec, Severity, State, check_model

MODELS = sorted(entry.name for entry in CATALOG)


@pytest.mark.parametrize("name", MODELS)
def test_catalog_models_are_warning_clean(name):
    assert check_model(build_model(name)) == []


def _first_active_class(model):
    for component in model.components:
        for klass in component.classes:
            if not klass.statemachine.is_empty():
                return klass
    raise AssertionError("catalog model with no active class")


@pytest.mark.parametrize("name", MODELS)
def test_island_state_warns_in_every_model(name):
    model = build_model(name)
    klass = _first_active_class(model)
    klass.statemachine.add_state(State("SyntheticIsland", 99))
    found = check_model(model)
    island = [v for v in found if "SyntheticIsland" in v.message]
    assert len(island) == 1
    assert island[0].severity is Severity.WARNING
    assert "unreachable" in island[0].message
    # a warning never makes the model ill-formed
    assert not [v for v in found if v.severity is Severity.ERROR]
    check_model(model, strict=True)  # strict raises only on errors


@pytest.mark.parametrize("name", MODELS)
def test_unhandled_event_warns_in_every_model(name):
    model = build_model(name)
    klass = _first_active_class(model)
    klass.add_event(EventSpec("ZZ99", "synthetic never-handled event"))
    found = check_model(model)
    unhandled = [v for v in found if "ZZ99" in v.message]
    assert len(unhandled) == 1
    assert unhandled[0].severity is Severity.WARNING
    assert "never handled" in unhandled[0].message


@pytest.mark.parametrize("name", MODELS)
def test_warnings_carry_the_class_path(name):
    model = build_model(name)
    klass = _first_active_class(model)
    klass.statemachine.add_state(State("SyntheticIsland", 99))
    (violation,) = [v for v in check_model(model)
                    if "SyntheticIsland" in v.message]
    assert violation.element.endswith(f".{klass.key_letters}")


def test_both_warning_kinds_sort_stably_together():
    model = build_model(MODELS[0])
    klass = _first_active_class(model)
    klass.statemachine.add_state(State("SyntheticIsland", 99))
    klass.add_event(EventSpec("ZZ99", "synthetic"))
    found = check_model(model)
    assert len(found) == 2
    ordered = sorted(found, key=lambda v: (v.element, v.message))
    assert ordered == sorted(reversed(found),
                             key=lambda v: (v.element, v.message))
