"""Unit tests for attributes, identifiers and event specs."""

import pytest

from repro.xuml import Attribute, CoreType, EventParameter, EventSpec, Identifier


class TestAttribute:
    def test_initial_value_prefers_explicit_default(self):
        attr = Attribute("watts", CoreType.INTEGER, default=900)
        assert attr.initial_value == 900

    def test_initial_value_falls_back_to_type_default(self):
        assert Attribute("count", CoreType.INTEGER).initial_value == 0

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("not a name", CoreType.INTEGER)

    def test_derived_and_referential_conflict(self):
        with pytest.raises(ValueError):
            Attribute("x", CoreType.INTEGER, referential="R1",
                      derived="1 + 1")

    def test_referential_records_association(self):
        attr = Attribute("oven_id", CoreType.UNIQUE_ID, referential="R1")
        assert attr.referential == "R1"


class TestIdentifier:
    def test_first_identifier_is_preferred(self):
        assert Identifier(1, ("oven_id",)).label == "*"
        assert Identifier(2, ("name",)).label == "I2"

    def test_zero_number_rejected(self):
        with pytest.raises(ValueError):
            Identifier(0, ("x",))

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(ValueError):
            Identifier(1, ())

    def test_repeated_attribute_rejected(self):
        with pytest.raises(ValueError):
            Identifier(1, ("a", "a"))

    def test_composite_identifier(self):
        ident = Identifier(2, ("bank", "floor"))
        assert ident.attribute_names == ("bank", "floor")


class TestEventSpec:
    def test_parameter_lookup(self):
        spec = EventSpec("MO1", "cook", (
            EventParameter("seconds", CoreType.INTEGER),))
        assert spec.parameter("seconds").dtype is CoreType.INTEGER
        assert spec.parameter_names == ("seconds",)

    def test_unknown_parameter_raises(self):
        spec = EventSpec("MO1")
        with pytest.raises(KeyError):
            spec.parameter("nope")

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            EventSpec("MO1", parameters=(
                EventParameter("x", CoreType.INTEGER),
                EventParameter("x", CoreType.REAL),
            ))

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            EventSpec("not a label")

    def test_bad_parameter_name_rejected(self):
        with pytest.raises(ValueError):
            EventParameter("9bad", CoreType.INTEGER)

    def test_creation_flag_defaults_false(self):
        assert EventSpec("EV1").creation is False
        assert EventSpec("EV2", creation=True).creation is True
