"""Unit tests for the profile's type system."""

import pytest

from repro.xuml import (
    CoreType,
    EnumType,
    InstRefType,
    InstSetType,
    TypeRegistry,
    bit_width,
    default_value,
)


class TestEnumType:
    def test_enumerator_codes_follow_declaration_order(self):
        door = EnumType("DoorState", ("CLOSED", "OPEN", "AJAR"))
        assert door.code_of("CLOSED") == 0
        assert door.code_of("OPEN") == 1
        assert door.code_of("AJAR") == 2

    def test_unknown_enumerator_raises(self):
        door = EnumType("DoorState", ("CLOSED", "OPEN"))
        with pytest.raises(KeyError):
            door.code_of("MISSING")

    def test_empty_enum_rejected(self):
        with pytest.raises(ValueError):
            EnumType("Empty", ())

    def test_duplicate_enumerators_rejected(self):
        with pytest.raises(ValueError):
            EnumType("Dup", ("A", "A"))

    def test_str_is_type_name(self):
        assert str(EnumType("Mode", ("A",))) == "Mode"


class TestDefaults:
    @pytest.mark.parametrize("dtype,expected", [
        (CoreType.INTEGER, 0),
        (CoreType.REAL, 0.0),
        (CoreType.BOOLEAN, False),
        (CoreType.STRING, ""),
        (CoreType.UNIQUE_ID, 0),
        (CoreType.TIMESTAMP, 0),
    ])
    def test_core_defaults(self, dtype, expected):
        assert default_value(dtype) == expected

    def test_enum_defaults_to_first_enumerator(self):
        mode = EnumType("Mode", ("OFF", "ON"))
        assert default_value(mode) == "OFF"

    def test_inst_ref_defaults_to_none(self):
        assert default_value(InstRefType("MO")) is None

    def test_inst_set_defaults_to_empty(self):
        assert default_value(InstSetType("MO")) == ()


class TestBitWidth:
    def test_scalar_widths(self):
        assert bit_width(CoreType.INTEGER) == 32
        assert bit_width(CoreType.REAL) == 64
        assert bit_width(CoreType.BOOLEAN) == 1
        assert bit_width(CoreType.TIMESTAMP) == 64

    def test_enum_width_covers_enumerator_count(self):
        two = EnumType("Two", ("A", "B"))
        five = EnumType("Five", tuple("ABCDE"))
        assert bit_width(two) == 1
        assert bit_width(five) == 3

    def test_single_enumerator_enum_still_one_bit(self):
        assert bit_width(EnumType("One", ("A",))) == 1

    def test_handles_are_32_bits(self):
        assert bit_width(InstRefType("X")) == 32
        assert bit_width(InstSetType("X")) == 32


class TestTypeRegistry:
    def test_define_and_lookup(self):
        registry = TypeRegistry()
        registry.define_enum("Mode", ("OFF", "ON"))
        assert registry.enum("Mode").enumerators == ("OFF", "ON")
        assert "Mode" in registry

    def test_duplicate_definition_rejected(self):
        registry = TypeRegistry()
        registry.define_enum("Mode", ("OFF",))
        with pytest.raises(ValueError):
            registry.define_enum("Mode", ("ON",))

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            TypeRegistry().enum("Nope")

    def test_enums_listing_in_definition_order(self):
        registry = TypeRegistry()
        registry.define_enum("B", ("X",))
        registry.define_enum("A", ("Y",))
        assert [e.name for e in registry.enums] == ["B", "A"]
