"""Property: randomly generated models survive serialization exactly."""

from hypothesis import given, settings, strategies as st

from repro.xuml import (
    Attribute,
    Component,
    CoreType,
    EventParameter,
    EventSpec,
    Model,
    ModelClass,
    State,
    model_from_dict,
    model_to_dict,
)
from repro.xuml.association import Association, AssociationEnd, Multiplicity

_IDENT = st.sampled_from(
    ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf"])
_CORE = st.sampled_from(list(CoreType))


@st.composite
def random_models(draw):
    model = Model("Rand")
    component = Component("comp")
    model.add_component(component)

    class_count = draw(st.integers(1, 3))
    keys = [f"K{i}" for i in range(class_count)]
    for number, key in enumerate(keys, start=1):
        klass = ModelClass(f"Class{key}", key, number)
        component.add_class(klass)

        attr_names = draw(st.lists(_IDENT, unique=True, max_size=4))
        for attr_name in attr_names:
            klass.add_attribute(Attribute(attr_name, draw(_CORE)))

        event_count = draw(st.integers(0, 3))
        labels = [f"{key}E{i}" for i in range(event_count)]
        for label in labels:
            param_names = draw(st.lists(_IDENT, unique=True, max_size=2))
            klass.add_event(EventSpec(label, "", tuple(
                EventParameter(name, draw(_CORE)) for name in param_names)))

        if labels:
            state_count = draw(st.integers(1, 3))
            state_names = [f"S{i}" for i in range(state_count)]
            for index, state_name in enumerate(state_names, start=1):
                klass.statemachine.add_state(State(state_name, index))
            transition_count = draw(st.integers(0, 4))
            used = set()
            for _ in range(transition_count):
                source = draw(st.sampled_from(state_names))
                label = draw(st.sampled_from(labels))
                if (source, label) in used:
                    continue
                used.add((source, label))
                klass.statemachine.add_transition(
                    source, label, draw(st.sampled_from(state_names)))
            # sprinkle ignore entries on unused pairs
            for state_name in state_names:
                for label in labels:
                    if (state_name, label) in used:
                        continue
                    if draw(st.booleans()):
                        klass.statemachine.set_ignored(state_name, label)
                        used.add((state_name, label))

    if len(keys) >= 2 and draw(st.booleans()):
        component.add_association(Association(
            "R1",
            AssociationEnd(keys[0], "left of",
                           draw(st.sampled_from(list(Multiplicity)))),
            AssociationEnd(keys[1], "right of",
                           draw(st.sampled_from(list(Multiplicity)))),
        ))
    return model


@settings(max_examples=60, deadline=None)
@given(random_models())
def test_random_model_roundtrip(model):
    data = model_to_dict(model)
    assert model_to_dict(model_from_dict(data)) == data


@settings(max_examples=30, deadline=None)
@given(random_models())
def test_random_model_roundtrip_preserves_tables(model):
    rebuilt = model_from_dict(model_to_dict(model))
    for component in model.components:
        twin = rebuilt.component(component.name)
        for klass in component.classes:
            other = twin.klass(klass.key_letters)
            machine, other_machine = klass.statemachine, other.statemachine
            assert machine.initial_state == other_machine.initial_state
            for state in machine.states:
                for event in klass.events:
                    assert (machine.response_to(state.name, event.label)
                            == other_machine.response_to(state.name,
                                                         event.label))
