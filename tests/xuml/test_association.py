"""Unit tests for associations and multiplicities."""

import pytest

from repro.xuml import Association, AssociationEnd, Multiplicity


def heats() -> Association:
    return Association(
        "R1",
        AssociationEnd("MO", "is powered by", Multiplicity.ONE),
        AssociationEnd("PT", "energizes", Multiplicity.ZERO_ONE),
    )


def manages() -> Association:
    return Association(
        "R2",
        AssociationEnd("P", "manages", Multiplicity.ZERO_MANY),
        AssociationEnd("P", "is managed by", Multiplicity.ZERO_ONE),
    )


class TestMultiplicity:
    @pytest.mark.parametrize("mult,many,conditional,lower", [
        (Multiplicity.ONE, False, False, 1),
        (Multiplicity.ZERO_ONE, False, True, 0),
        (Multiplicity.MANY, True, False, 1),
        (Multiplicity.ZERO_MANY, True, True, 0),
    ])
    def test_properties(self, mult, many, conditional, lower):
        assert mult.is_many is many
        assert mult.is_conditional is conditional
        assert mult.lower == lower


class TestAssociation:
    def test_number_format_enforced(self):
        with pytest.raises(ValueError):
            Association(
                "X1",
                AssociationEnd("A", "x", Multiplicity.ONE),
                AssociationEnd("B", "y", Multiplicity.ONE),
            )

    def test_end_for_by_class(self):
        assoc = heats()
        assert assoc.end_for("MO").phrase == "is powered by"
        assert assoc.end_for("PT").phrase == "energizes"

    def test_end_for_unknown_class_raises(self):
        with pytest.raises(KeyError):
            heats().end_for("XX")

    def test_end_for_with_wrong_phrase_raises(self):
        with pytest.raises(KeyError):
            heats().end_for("MO", "energizes")

    def test_reflexive_requires_phrase(self):
        assoc = manages()
        assert assoc.is_reflexive
        with pytest.raises(KeyError):
            assoc.end_for("P")

    def test_reflexive_phrase_disambiguates(self):
        assoc = manages()
        assert assoc.end_for("P", "manages").mult is Multiplicity.ZERO_MANY
        assert assoc.end_for("P", "is managed by").mult is Multiplicity.ZERO_ONE

    def test_opposite(self):
        assoc = heats()
        mo_end = assoc.end_for("MO")
        assert assoc.opposite(mo_end).class_key == "PT"

    def test_participants_include_link_class(self):
        assoc = Association(
            "R3",
            AssociationEnd("A", "x", Multiplicity.MANY),
            AssociationEnd("B", "y", Multiplicity.MANY),
            link_class_key="AB",
        )
        assert assoc.participants() == ("A", "B", "AB")

    def test_non_reflexive_participants(self):
        assert heats().participants() == ("MO", "PT")
