"""CLI tests (driving main() directly, asserting output and exit codes)."""

import json

import pytest

from repro.cli import main
from repro.xuml import model_from_json


@pytest.fixture
def model_file(tmp_path):
    assert main(["export", "microwave",
                 "-o", str(tmp_path / "model.json")]) == 0
    return tmp_path / "model.json"


class TestExport:
    def test_export_to_stdout(self, capsys):
        assert main(["export", "microwave"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["name"] == "Microwave"

    def test_exported_file_loads(self, model_file):
        model = model_from_json(model_file.read_text())
        assert model.name == "Microwave"

    def test_unknown_catalog_name(self):
        with pytest.raises(KeyError):
            main(["export", "nonexistent"])


class TestInfoAndCheck:
    def test_info(self, model_file, capsys):
        assert main(["info", str(model_file)]) == 0
        out = capsys.readouterr().out
        assert "MicrowaveOven" in out
        assert "classes" in out

    def test_check_clean_model(self, model_file, capsys):
        assert main(["check", str(model_file)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_check_broken_model_exits_nonzero(self, model_file, tmp_path,
                                              capsys):
        data = json.loads(model_file.read_text())
        # sabotage: point a transition at a ghost state
        machine = data["components"][0]["classes"][0]["statemachine"]
        machine["transitions"][0][2] = "Ghost"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        assert main(["check", str(broken)]) == 1
        assert "Ghost" in capsys.readouterr().out


class TestCompile:
    def test_compile_with_marks(self, model_file, tmp_path, capsys):
        marks = tmp_path / "hw.mks"
        marks.write_text("control.PT isHardware = true\n")
        out_dir = tmp_path / "gen"
        assert main(["compile", str(model_file), "--marks", str(marks),
                     "-o", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "hardware: PT" in out
        assert (out_dir / "power_tube.vhd").exists()
        assert (out_dir / "control_interface.h").exists()

    def test_compile_without_marks_is_all_software(self, model_file,
                                                   tmp_path, capsys):
        out_dir = tmp_path / "gen"
        assert main(["compile", str(model_file), "-o", str(out_dir)]) == 0
        assert "hardware: (none)" in capsys.readouterr().out
        assert (out_dir / "control_mo.c").exists()

    def test_invalid_marks_rejected(self, model_file, tmp_path, capsys):
        marks = tmp_path / "bad.mks"
        marks.write_text("control.GHOST isHardware = true\n")
        assert main(["compile", str(model_file), "--marks", str(marks),
                     "-o", str(tmp_path / "gen")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestVerifyAndSweep:
    def test_verify_catalog_model(self, capsys):
        assert main(["verify", "checksum"]) == 0
        assert "CONFORMANT" in capsys.readouterr().out

    def test_sweep_prints_winner(self, capsys):
        assert main(["sweep", "--packets", "40", "--rate", "200"]) == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "(all software)" in out


class TestBatch:
    def test_batch_runs_and_summarizes(self, tmp_path, capsys):
        assert main(["batch", "microwave", "checksum",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "sw-only" in out
        assert "hit rate" in out

    def test_second_run_hits_the_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch", "microwave", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", "microwave", "--cache-dir", cache,
                     "--min-hit-rate", "0.9"]) == 0
        assert "hit rate 100.0%" in capsys.readouterr().out

    def test_min_hit_rate_fails_a_cold_cache(self, tmp_path, capsys):
        assert main(["batch", "microwave",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--min-hit-rate", "0.9"]) == 1
        assert "below the required 90%" in capsys.readouterr().err

    def test_parallel_jobs_accepted(self, tmp_path, capsys):
        assert main(["batch", "microwave", "checksum", "--jobs", "2",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "on 2 worker(s)" in capsys.readouterr().out

    def test_no_cache_flag_skips_the_store(self, tmp_path, capsys):
        assert main(["batch", "checksum", "--no-cache",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "0 hits / 0 lookups" in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()

    def test_jobs_below_one_rejected(self, tmp_path, capsys):
        assert main(["batch", "microwave", "--jobs", "0",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_unwritable_cache_dir_rejected(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        assert main(["batch", "microwave",
                     "--cache-dir", str(blocker / "cache")]) == 1
        assert "is not writable" in capsys.readouterr().err

    def test_unknown_model_rejected(self, tmp_path, capsys):
        assert main(["batch", "ghost",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        err = capsys.readouterr().err
        assert "no catalog model named ghost" in err
        assert "microwave" in err

    def test_bad_min_hit_rate_rejected(self, tmp_path, capsys):
        assert main(["batch", "microwave",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--min-hit-rate", "1.5"]) == 1
        assert "within 0..1" in capsys.readouterr().err

    def test_batch_csv_written(self, tmp_path, capsys):
        csv_path = tmp_path / "batch.csv"
        assert main(["batch", "checksum",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("model,variant,ok")
        assert len(lines) == 5  # sw-only + 2 classes + hw-all + header


class TestChaos:
    def test_chaos_protected_conformant(self, capsys):
        assert main(["chaos", "microwave", "--rates", "0.0,0.02",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "protected" in out
        assert "unprotected" in out
        assert "CONFORMANT" in out
        assert "framing overhead" in out

    def test_chaos_garbage_rates_rejected(self, capsys):
        assert main(["chaos", "microwave", "--rates", "abc"]) == 1
        assert "comma-separated" in capsys.readouterr().err

    def test_chaos_rate_out_of_range_rejected(self, capsys):
        assert main(["chaos", "microwave", "--rates", "0.0,1.5"]) == 1
        assert "within 0..1" in capsys.readouterr().err

    def test_chaos_unknown_hardware_class_rejected(self, capsys):
        assert main(["chaos", "microwave", "--hardware", "GHOST",
                     "--rates", "0.0"]) == 1
        err = capsys.readouterr().err
        assert "no class GHOST" in err
        assert "MO/PT" in err

    def test_chaos_csv_written(self, tmp_path, capsys):
        csv_path = tmp_path / "chaos.csv"
        assert main(["chaos", "microwave", "--rates", "0.0",
                     "--seed", "7", "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("model,protected,rate")
        # one protected + one unprotected row at the single rate
        assert len(lines) == 3


class TestTrace:
    def test_trace_to_stdout_is_valid_jsonl(self, capsys):
        from repro.obs import SCHEMA, load_jsonl

        assert main(["trace", "microwave"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out.splitlines()[0])["schema"] == SCHEMA
        assert len(load_jsonl(out)) > 0

    def test_trace_export_and_check_round_trip(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["trace", "microwave", "-o", str(path)]) == 0
        assert "events" in capsys.readouterr().out
        assert main(["trace", "--load", str(path), "--check"]) == 0
        assert "byte-identically" in capsys.readouterr().out

    def test_trace_check_rejects_tampering(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["trace", "microwave", "-o", str(path)]) == 0
        capsys.readouterr()
        # non-canonical whitespace survives load but not re-dump
        path.write_text(path.read_text().replace('":', '": ', 1))
        assert main(["trace", "--load", str(path), "--check"]) == 1
        assert "not byte-identical" in capsys.readouterr().err

    def test_trace_load_rejects_foreign_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":"other","version":1}\n')
        assert main(["trace", "--load", str(path)]) == 1
        assert "not a repro.trace stream" in capsys.readouterr().err

    def test_trace_critical_path(self, capsys):
        assert main(["trace", "microwave", "--critical"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "dependent signal(s)" in out

    def test_trace_named_case(self, capsys):
        assert main(["trace", "microwave",
                     "--case", "door-open-pauses-cooking",
                     "--critical"]) == 0
        assert "critical path:" in capsys.readouterr().out

    def test_trace_unknown_case_lists_suite(self, capsys):
        assert main(["trace", "microwave", "--case", "ghost"]) == 1
        assert "no case 'ghost'" in capsys.readouterr().err

    def test_trace_without_name_or_load_rejected(self, capsys):
        assert main(["trace"]) == 1
        assert "required" in capsys.readouterr().err

    def test_trace_unknown_model_rejected(self, capsys):
        assert main(["trace", "ghost"]) == 1
        assert "no suite" in capsys.readouterr().err

    def test_trace_missing_file_rejected(self, tmp_path, capsys):
        assert main(["trace", "--load", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestMetrics:
    def test_metrics_reports_all_three_subsystems(self, capsys):
        assert main(["metrics", "microwave", "--require"]) == 0
        out = capsys.readouterr().out
        assert "runtime.dispatches" in out
        assert "cosim.signals_routed" in out
        assert "cosim.bus.messages" in out
        assert "build.store.hits" in out
        assert "build.job_wall_ms" in out

    def test_metrics_json_snapshot(self, capsys):
        assert main(["metrics", "checksum", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["runtime.dispatches"] > 0
        assert snapshot["counters"]["build.store.hits"] > 0
        assert snapshot["histograms"]["runtime.queue_depth"]["count"] > 0

    def test_metrics_unknown_model_rejected(self, capsys):
        assert main(["metrics", "ghost"]) == 1
        assert "no suite" in capsys.readouterr().err

    def test_metrics_registry_deactivated_afterwards(self):
        from repro.obs import active_registry

        assert main(["metrics", "microwave"]) == 0
        assert active_registry() is None
