"""Multi-component models: per-component simulation and translation."""

import pytest

from repro.marks import MarkSet
from repro.mda import ModelCompiler
from repro.runtime import Simulation
from repro.xuml import ModelBuilder


def build_two_domain_model():
    """Two independent domains in one system model."""
    builder = ModelBuilder("System")

    control = builder.component("control")
    pump = control.klass("Pump", "PU")
    pump.attr("pu_id", "unique_id")
    pump.attr("running", "boolean")
    pump.event("PU1", "toggle")
    pump.state("Off", 1, activity="self.running = false;")
    pump.state("On", 2, activity="self.running = true;")
    pump.trans("Off", "PU1", "On")
    pump.trans("On", "PU1", "Off")

    logging = builder.component("logging")
    journal = logging.klass("Journal", "JO")
    journal.attr("jo_id", "unique_id")
    journal.attr("entries", "integer")
    journal.event("JO1", "record")
    journal.state("Ready", 1)
    journal.state("Recording", 2, activity="""
        self.entries = self.entries + 1;
        generate JO2:JO() to self;
    """)
    journal.event("JO2", "recorded")
    journal.trans("Ready", "JO1", "Recording")
    journal.trans("Recording", "JO2", "Ready")
    journal.ignore("Ready", "JO2")

    return builder.build()


class TestSimulationPerComponent:
    def test_each_component_simulates_independently(self):
        model = build_two_domain_model()
        control = Simulation(model, component="control")
        pump = control.create_instance("PU", pu_id=1)
        control.inject(pump, "PU1")
        control.run_to_quiescence()
        assert control.read_attribute(pump, "running") is True

        logging = Simulation(model, component="logging")
        journal = logging.create_instance("JO", jo_id=1)
        logging.inject(journal, "JO1")
        logging.run_to_quiescence()
        assert logging.read_attribute(journal, "entries") == 1

    def test_component_isolation(self):
        model = build_two_domain_model()
        control = Simulation(model, component="control")
        with pytest.raises(Exception):
            control.create_instance("JO")      # other domain's class


class TestCompilationPerComponent:
    def test_compiler_requires_component_choice(self):
        model = build_two_domain_model()
        with pytest.raises(ValueError):
            ModelCompiler(model)

    def test_each_component_compiles(self):
        model = build_two_domain_model()
        marks = MarkSet()
        marks.set("control.PU", "isHardware", True)
        control_build = ModelCompiler(model, component="control").compile(marks)
        assert "pump.vhd" in control_build.artifacts
        assert control_build.lint() == []

        logging_build = ModelCompiler(model, component="logging").compile(
            MarkSet())
        assert "logging_jo.c" in logging_build.artifacts
        assert logging_build.lint() == []

    def test_cli_component_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.xuml import model_to_json

        model_file = tmp_path / "system.json"
        model_file.write_text(model_to_json(build_two_domain_model()))
        out_dir = tmp_path / "gen"
        assert main(["compile", str(model_file), "--component", "logging",
                     "-o", str(out_dir)]) == 0
        assert (out_dir / "logging_jo.c").exists()
