"""End-to-end integration: the whole paper workflow in one test file."""

import pytest

from repro.baselines import price_repartition, run_generated_flow, run_parallel_teams
from repro.cosim import CoSimMachine, LatencyProbe, periodic_packets, sweep_partitions
from repro.marks import (
    MarkSet,
    derive_partition,
    marks_for_partition,
    partition_change_cost,
    validate_marks,
)
from repro.mda import CSoftwareMachine, InterfaceCodec, ModelCompiler, VHardwareMachine
from repro.models import all_models, build_packetproc_model, packetproc
from repro.runtime import Simulation, check_trace
from repro.verify import check_conformance, suite_for


class TestPaperWorkflow:
    """Sections 1-5 of the paper as one executable narrative."""

    def test_full_workflow(self):
        # Section 2: model once, execute without implementation detail
        model = build_packetproc_model()
        simulation = Simulation(model)
        handles = packetproc.populate(simulation)
        packetproc.inject_packets(simulation, handles["M"], 10, length=256)
        simulation.run_to_quiescence()
        assert simulation.read_attribute(handles["ST"], "packets") == 10
        assert check_trace(simulation.trace) == []

        # Section 3: marks, outside the model
        component = model.components[0]
        marks = MarkSet()
        marks.set("soc.CE", "isHardware", True)
        marks.set("soc.CE", "clock_mhz", 200)
        assert validate_marks(marks, model) == []
        partition = derive_partition(model, component, marks)
        assert partition.hardware_classes == ("CE",)

        # Section 4: one spec, two generated halves, zero lint findings
        build = ModelCompiler(model).compile(marks)
        assert build.lint() == []
        c_codec = InterfaceCodec.from_artifact(
            build.artifacts["soc_interface.h"])
        v_codec = InterfaceCodec.from_artifact(
            build.artifacts["soc_interface_pkg.vhd"])
        assert c_codec.layouts == v_codec.layouts

        # Section 1's complaint, measured: the co-simulated prototype
        machine = CoSimMachine(build)
        cos_handles = packetproc.populate(machine)
        probe = LatencyProbe(machine, ("M", "M1"), ("ST", "ST1"), "pkt_id")
        for index in range(10):
            machine.inject(cos_handles["M"], "M1",
                           {"pkt_id": index + 1, "length": 256},
                           delay=index * 20)
        machine.run()
        assert probe.count == 10

        # Section 4 again: repartition = move the marks
        new_marks = marks_for_partition(component, ("CE", "D"), base=marks)
        assert partition_change_cost(marks, new_marks) >= 1
        rebuild = ModelCompiler(model).compile(new_marks)
        assert rebuild.partition.hardware_classes == ("CE", "D")


class TestCrossPlatformAgreement:
    @pytest.mark.parametrize("name", ["microwave", "trafficlight",
                                      "packetproc", "elevator", "checksum"])
    def test_every_model_fully_conformant(self, name):
        model = all_models()[name]
        report = check_conformance(model, suite_for(name))
        assert report.conformant, report.render()

    def test_three_platforms_agree_on_packet_counts(self):
        model = build_packetproc_model()
        component = model.components[0]
        compiler = ModelCompiler(model)
        counts = []
        platforms = [
            Simulation(model),
            CSoftwareMachine(compiler.compile(
                marks_for_partition(component, ())).manifest),
            VHardwareMachine(compiler.compile(
                marks_for_partition(
                    component, tuple(component.class_keys))).manifest,
                clock_mhz=100),
        ]
        for platform in platforms:
            handles = packetproc.populate(platform)
            packetproc.inject_packets(platform, handles["M"], 12, length=96)
            platform.run_to_quiescence()
            counts.append(platform.read_attribute(handles["ST"], "packets"))
        assert counts == [12, 12, 12]


class TestMeasurementDrivesDecision:
    def test_sweep_winner_beats_all_software_under_load(self):
        model = build_packetproc_model()
        packets = periodic_packets(120, period_us=4, length=1024)
        rows = sweep_partitions(model, [(), ("CE", "D")], packets)
        all_sw, offloaded = rows
        assert offloaded.mean_latency_ns < all_sw.mean_latency_ns

    def test_repartition_cost_is_marks_not_code(self):
        model = build_packetproc_model()
        cost = price_repartition(model, (), ("CE", "D"))
        assert cost.mark_flips == 2
        assert cost.impl_first_total > 100


class TestInterfaceConsistencyStory:
    def test_generated_never_drifts_manual_does(self):
        model = build_packetproc_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("CE", "D")))
        manual_defects = sum(
            run_parallel_teams(build.interface, 40, 0.25, seed=s).defect_count
            for s in range(6))
        generated_defects = sum(
            run_generated_flow(build.interface, 40, seed=s).defect_count
            for s in range(6))
        assert manual_defects > 0
        assert generated_defects == 0
