"""Property-based tests of the toolchain's core invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.marks import MarkSet, diff_marks, marks_for_partition
from repro.mda import InterfaceCodec
from repro.models import build_packetproc_model, packetproc
from repro.runtime import (
    EventPool,
    InterleavedScheduler,
    SignalInstance,
    Simulation,
    check_trace,
)

MODEL = build_packetproc_model()


# ---------------------------------------------------------------------------
# queue discipline: self-first + per-receiver FIFO, under any consumption
# pattern a scheduler is allowed to use
# ---------------------------------------------------------------------------

@st.composite
def signal_batches(draw):
    count = draw(st.integers(1, 30))
    signals = []
    for sequence in range(1, count + 1):
        target = draw(st.integers(1, 4))
        self_directed = draw(st.booleans())
        signals.append(SignalInstance(
            sequence=sequence, label=f"EV{sequence}", class_key="W",
            params={}, target_handle=target,
            sender_handle=target if self_directed else 99,
        ))
    return signals


@given(signal_batches(), st.randoms(use_true_random=False))
def test_pool_preserves_per_receiver_order(signals, rng):
    """Popping in any scheduler order keeps self-first + FIFO per target."""
    pool = EventPool()
    for signal in signals:
        pool.push_ready(signal)
    consumed: dict[int, list[SignalInstance]] = {}
    while True:
        handles = pool.ready_handles()
        if not handles:
            break
        handle = rng.choice(handles)
        signal = pool.pop_for(handle)
        consumed.setdefault(handle, []).append(signal)
    for handle, events in consumed.items():
        # all self-directed events precede all external ones
        kinds = [e.is_self_directed for e in events]
        assert kinds == sorted(kinds, reverse=True)
        # FIFO within each kind
        self_seqs = [e.sequence for e in events if e.is_self_directed]
        other_seqs = [e.sequence for e in events if not e.is_self_directed]
        assert self_seqs == sorted(self_seqs)
        assert other_seqs == sorted(other_seqs)


# ---------------------------------------------------------------------------
# interleaving independence: any seed, same per-instance behaviour
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=15,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**32 - 1), st.integers(1, 10))
def test_interleaving_independence(seed, packets):
    baseline = Simulation(MODEL)
    handles = packetproc.populate(baseline)
    packetproc.inject_packets(baseline, handles["M"], packets, length=64)
    baseline.run_to_quiescence()

    shuffled = Simulation(MODEL, scheduler=InterleavedScheduler(seed))
    handles2 = packetproc.populate(shuffled)
    packetproc.inject_packets(shuffled, handles2["M"], packets, length=64)
    shuffled.run_to_quiescence()

    assert (baseline.trace.behavioural_summary()
            == shuffled.trace.behavioural_summary())
    assert check_trace(shuffled.trace) == []


# ---------------------------------------------------------------------------
# interface codec: pack/unpack is the identity on every field
# ---------------------------------------------------------------------------

_CODEC = None


def _codec():
    global _CODEC
    if _CODEC is None:
        from repro.marks import marks_for_partition
        from repro.mda import ModelCompiler
        component = MODEL.components[0]
        build = ModelCompiler(MODEL).compile(
            marks_for_partition(component, ("CE", "D")))
        _CODEC = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
    return _CODEC


@given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1),
       st.integers(-(2**31), 2**31 - 1), st.integers(0, 2**32 - 1))
def test_codec_roundtrip_is_identity(pkt_id, length, flow, target):
    # pkt_id/length/flow are signed 32-bit "integer" fields;
    # target_instance is an unsigned handle
    codec = _codec()
    values = {"target_instance": target, "pkt_id": pkt_id,
              "length": length, "flow": flow}
    assert codec.unpack("ce_ce1", codec.pack("ce_ce1", values)) == values


@given(st.integers(), st.integers())
def test_codec_rejects_out_of_range_loudly(pkt_id, target):
    """Out-of-range values must raise, never truncate silently."""
    import pytest
    from hypothesis import assume
    codec = _codec()
    assume(not (-(2**31) <= pkt_id < 2**31) or not (0 <= target < 2**32))
    values = {"target_instance": target, "pkt_id": pkt_id,
              "length": 0, "flow": 0}
    with pytest.raises(OverflowError):
        codec.pack("ce_ce1", values)


# ---------------------------------------------------------------------------
# marks: diffs are complete and minimal
# ---------------------------------------------------------------------------

@st.composite
def random_partitions(draw):
    keys = sorted(MODEL.components[0].class_keys)
    subset = draw(st.sets(st.sampled_from(keys)))
    return tuple(sorted(subset))


@given(random_partitions(), random_partitions())
def test_partition_diff_counts_moved_classes(first, second):
    component = MODEL.components[0]
    marks_a = marks_for_partition(component, first)
    marks_b = marks_for_partition(component, second)
    changes = diff_marks(marks_a, marks_b)
    moved = set(first) ^ set(second)
    assert len(changes) == len(moved)
    # applying the diff's new values onto A yields exactly B
    patched = marks_a.copy()
    for change in changes:
        patched.set(change.element_path, change.mark_name, change.new_value)
    assert patched.marks == marks_b.marks


@given(random_partitions())
def test_partition_derivation_matches_marks(subset):
    from repro.marks import derive_partition
    component = MODEL.components[0]
    marks = marks_for_partition(component, subset)
    partition = derive_partition(MODEL, component, marks)
    assert set(partition.hardware_classes) == set(subset)
    for flow in partition.boundary_flows:
        assert (partition.side_of(flow.sender_class)
                != partition.side_of(flow.receiver_class))
    for flow in partition.internal_flows:
        assert (partition.side_of(flow.sender_class)
                == partition.side_of(flow.receiver_class))
