"""The TUTORIAL.md walkthrough, executed — docs that cannot rot."""

from repro.cosim import CoSimMachine, FaultPlan, render_fault_stats
from repro.marks import MarkSet, derive_partition
from repro.mda import ModelCompiler
from repro.runtime import Simulation, check_trace
from repro.verify import TestCase, check_conformance
from repro.xuml import ModelBuilder, model_from_json, model_to_json


def build_sensor_node():
    builder = ModelBuilder("SensorNode")
    node = builder.component("node")

    sampler = node.klass("Sampler", "SA")
    sampler.attr("sa_id", "unique_id")
    sampler.attr("period_us", "integer", default=1000)
    sampler.attr("samples_taken", "integer")
    sampler.event("SA1", "start sampling")
    sampler.event("SA2", "period elapsed")
    sampler.event("SA3", "stop")
    sampler.state("Stopped", 1)
    sampler.state("Sampling", 2, activity="""
        self.samples_taken = self.samples_taken + 1;
        reading = (self.samples_taken * 37) % 100;    // synthetic sensor
        select one filt related by self->FI[R1];
        generate FI1:FI(value: reading) to filt;
        generate SA2:SA() to self delay self.period_us;
    """)
    sampler.trans("Stopped", "SA1", "Sampling")
    sampler.trans("Sampling", "SA2", "Sampling")
    sampler.trans("Sampling", "SA3", "Stopped")
    sampler.ignore("Stopped", "SA2")
    sampler.ignore("Stopped", "SA3")
    sampler.ignore("Sampling", "SA1")

    filt = node.klass("Filter", "FI")
    filt.attr("fi_id", "unique_id")
    filt.attr("count", "integer")
    filt.attr("total", "integer")
    filt.attr("outliers", "integer")
    filt.attr("mean", "integer", derived="self.total / (self.count + 1)")
    filt.event("FI1", "new reading", params=[("value", "integer")])
    filt.state("Ready", 1)
    filt.state("Accumulating", 2, activity="""
        self.count = self.count + 1;
        self.total = self.total + param.value;
        if (param.value > 90)
            self.outliers = self.outliers + 1;
        end if;
    """)
    filt.trans("Ready", "FI1", "Accumulating")
    filt.trans("Accumulating", "FI1", "Accumulating")

    node.assoc("R1", ("SA", "feeds", "1"), ("FI", "is fed by", "1"))
    return builder.build()


class TestTutorialSteps:
    def test_step_2_execute(self):
        model = build_sensor_node()
        sim = Simulation(model)
        sampler_i = sim.create_instance("SA", sa_id=1)
        filter_i = sim.create_instance("FI", fi_id=1)
        sim.relate(sampler_i, filter_i, "R1")
        sim.inject(sampler_i, "SA1")
        sim.run_until(10_000)
        assert sim.read_attribute(filter_i, "count") == 11
        assert sim.read_attribute(filter_i, "mean") > 0
        assert check_trace(sim.trace) == []

    def test_step_3_conformance(self):
        model = build_sensor_node()
        # assert mid-period: the clocked architecture's registered
        # outputs deliver the boundary-edge reading a few cycles late,
        # so sampling exactly on the period boundary races the pipeline
        case = (
            TestCase("ten-ms-of-sampling")
            .create("sa", "SA", sa_id=1)
            .create("fi", "FI", fi_id=1)
            .relate("sa", "fi", "R1")
            .inject("sa", "SA1")
            .advance(10_500)
            .expect_attr("fi", "count", 11)
            .expect_state("sa", "Sampling")
        )
        report = check_conformance(model, [case])
        assert report.conformant, report.render()

    def test_step_3_boundary_sampling_is_brittle_on_hardware(self):
        # the anti-pattern the tutorial warns about, demonstrated
        model = build_sensor_node()
        case = (
            TestCase("exact-boundary")
            .create("sa", "SA", sa_id=1)
            .create("fi", "FI", fi_id=1)
            .relate("sa", "fi", "R1")
            .inject("sa", "SA1")
            .advance(10_000)
            .expect_attr("fi", "count", 11)
        )
        report = check_conformance(model, [case])
        outcomes = {r.target_name: r.passed
                    for r in report.cases[0].results}
        assert outcomes["abstract-model"]
        assert outcomes["generated-c"]
        assert not outcomes["generated-vhdl"]

    def test_step_4_partition_and_compile(self, tmp_path):
        model = build_sensor_node()
        marks = MarkSet()
        marks.set("node.FI", "isHardware", True)
        marks.set("node.FI", "clock_mhz", 150)
        partition = derive_partition(model, model.component("node"), marks)
        assert partition.hardware_classes == ("FI",)
        assert [str(f) for f in partition.boundary_flows] == [
            "SA --FI1--> FI"]
        build = ModelCompiler(model).compile(marks)
        assert build.lint() == []
        written = build.write_to(tmp_path)
        assert any(path.endswith("filter.vhd") for path in written)

    def test_step_5_cosimulate(self):
        model = build_sensor_node()
        marks = MarkSet()
        marks.set("node.FI", "isHardware", True)
        build = ModelCompiler(model).compile(marks)
        machine = CoSimMachine(build)
        sa = machine.create_instance("SA", sa_id=1)
        fi = machine.create_instance("FI", fi_id=1)
        machine.relate(sa, fi, "R1")
        machine.inject(sa, "SA1")
        machine.run(horizon_us=10_000)
        report = machine.utilization_report()
        assert set(report) == {"cpu", "bus", "hw:FI"}
        assert machine.bus.stats.messages > 0

    def test_step_6_chaos_and_resilience(self):
        model = build_sensor_node()
        marks = MarkSet()
        marks.set("node.FI", "isHardware", True)
        marks.set("node.FI", "crc", "crc16")
        marks.set("node.FI", "maxRetries", 3)
        marks.set("node.FI", "isCritical", True)
        build = ModelCompiler(model).compile(marks)

        plan = FaultPlan.uniform(seed=1, rate=0.10)
        machine = CoSimMachine(build, fault_plan=plan)
        sa = machine.create_instance("SA", sa_id=1)
        fi = machine.create_instance("FI", fi_id=1)
        machine.relate(sa, fi, "R1")
        machine.inject(sa, "SA1")
        machine.run(horizon_us=10_000)

        assert "injected" in render_fault_stats(machine.fault_stats)
        assert machine.fault_stats.injected > 0
        # same count as the fault-free co-sim: the edge reading is in
        # flight (the step-3 timing note), nothing was lost to faults
        assert machine.read_attribute(fi, "count") == 10
        assert machine.fault_stats.lost == 0

    def test_step_6_unprotected_build_loses_quietly(self):
        # the asymmetry the tutorial points at: same plan, no marks
        model = build_sensor_node()
        marks = MarkSet()
        marks.set("node.FI", "isHardware", True)
        build = ModelCompiler(model).compile(marks)
        plan = FaultPlan.uniform(seed=1, rate=0.10)
        machine = CoSimMachine(build, fault_plan=plan)
        sa = machine.create_instance("SA", sa_id=1)
        fi = machine.create_instance("FI", fi_id=1)
        machine.relate(sa, fi, "R1")
        machine.inject(sa, "SA1")
        machine.run(horizon_us=10_000)
        assert machine.fault_stats.lost > 0
        assert machine.read_attribute(fi, "count") < 10

    def test_step_7_batch_build(self, tmp_path):
        from repro.build import ArtifactStore, IncrementalCompiler
        from repro.build import clear_manifest_memo

        clear_manifest_memo()
        model = build_sensor_node()
        store = ArtifactStore(tmp_path / "build-cache")
        compiler = IncrementalCompiler(model, store=store)

        marks = MarkSet()
        marks.set("node.FI", "isHardware", True)
        compiler.compile(marks)
        cold = compiler.last_stats
        assert cold.classes_compiled == 2
        assert cold.classes_reused == 0
        assert not cold.manifest_reused

        marks.set("node.SA", "isHardware", True)
        warm_build = compiler.compile(marks)
        warm = compiler.last_stats
        # only the moved class was recompiled; the manifest was reused
        assert warm.classes_compiled == 1
        assert warm.classes_reused == 1
        assert warm.manifest_reused

        # and the cache is honest: cold compile, same bytes
        gold = ModelCompiler(model).compile(marks)
        assert warm_build.artifacts == gold.artifacts

    def test_step_7_batch_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "build-cache")
        assert main(["batch", "checksum", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", "checksum", "--cache-dir", cache,
                     "--min-hit-rate", "0.9"]) == 0
        assert "hit rate 100.0%" in capsys.readouterr().out

    def test_step_8_observability(self):
        from repro.obs import critical_path, dump_jsonl, load_jsonl, observe

        model = build_sensor_node()
        with observe() as registry:
            sim = Simulation(model)
            sa = sim.create_instance("SA", sa_id=1)
            fi = sim.create_instance("FI", fi_id=1)
            sim.relate(sa, fi, "R1")
            sim.inject(sa, "SA1")
            sim.run_until(10_000)

        table = registry.render_table()
        assert "runtime.dispatches" in table
        assert "runtime.queue_depth" in table
        assert registry.counter("runtime.dispatches").value > 0

        text = dump_jsonl(sim.trace)
        assert dump_jsonl(load_jsonl(text)) == text   # load∘dump == id

        path = critical_path(sim.trace)
        assert path.length > 0
        assert "critical path:" in path.render()

    def test_step_8_cli_surfaces(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["metrics", "microwave", "--require"]) == 0
        capsys.readouterr()
        run = str(tmp_path / "run.jsonl")
        assert main(["trace", "microwave", "-o", run, "--critical"]) == 0
        capsys.readouterr()
        assert main(["trace", "--load", run, "--check"]) == 0
        assert "byte-identically" in capsys.readouterr().out

    def test_step_9_lint_packetproc(self, capsys):
        from repro.analysis import lint_model
        from repro.cli import main
        from repro.models import build_packetproc_model

        assert main(["lint", "packetproc"]) == 0
        assert "lint PacketProcessor.soc" in capsys.readouterr().out

        report = lint_model(build_packetproc_model())
        assert report.counts()["error"] == 0
        # the D1 handshake row is a suspect the explorer cannot realize
        # — it must stay a downgraded warning, not an error
        cant = [f for f in report.findings if f.rule == "cant-happen"]
        assert any("D1" in f.message for f in cant)
        assert all("not reproduced" in f.message for f in cant)

    def test_step_9_race_witness_replays(self):
        from repro.analysis import lint_model, replay_witness
        from repro.models import build_elevator_model

        model = build_elevator_model()
        report = lint_model(model)
        race = next(f for f in report.findings if f.rule == "race")
        assert replay_witness(model, race.witness)

    def test_step_9_baseline_gate(self, tmp_path, capsys):
        from repro.cli import main

        baseline = str(tmp_path / "lint-baseline.json")
        assert main(["lint", "packetproc",
                     "--write-baseline", baseline]) == 0
        capsys.readouterr()
        assert main(["lint", "packetproc", "--baseline", baseline,
                     "--fail-on", "warning"]) == 0

    def test_step_10_one_execution_core(self):
        from repro.exec import clear_lowering_cache, lowering_cache_stats
        from repro.marks import marks_for_partition
        from repro.mda.csim import CSoftwareMachine

        clear_lowering_cache()
        model = build_sensor_node()
        sim = Simulation(model)
        assert sim.execution_core == "repro.exec (lowered action IR)"
        assert lowering_cache_stats()["misses"] == 1

        Simulation(build_sensor_node())        # same content -> cache hit
        assert lowering_cache_stats()["hits"] == 1

        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ()))
        machine = CSoftwareMachine(build.manifest)
        assert machine.execution_core == sim.execution_core

    def test_step_11_serialize(self):
        model = build_sensor_node()
        text = model_to_json(model)
        assert model_to_json(model_from_json(text)) == text
