"""Unit tests for mapping rules."""

import pytest

from repro.marks import MarkSet
from repro.mda import MappingRule, RuleError, RuleSet


class TestStandardRules:
    def test_is_hardware_selects_vhdl(self):
        rules = RuleSet.standard()
        marks = MarkSet()
        marks.set("c.CE", "isHardware", True)
        assert rules.resolve("c.CE", marks).target == "vhdl"

    def test_default_is_software(self):
        rules = RuleSet.standard()
        assert rules.resolve("c.M", MarkSet()).target == "c"

    def test_first_match_wins(self):
        rules = RuleSet.standard()
        marks = MarkSet()
        marks.set("c.CE", "isHardware", True)
        # the hardware rule precedes the catch-all software rule
        assert rules.resolve("c.CE", marks).name == "hardware-class"

    def test_targets_listing(self):
        assert RuleSet.standard().targets() == ("vhdl", "c")


class TestExtension:
    def test_prepend_new_target(self):
        systemc = MappingRule(
            "systemc-class", "systemc",
            lambda path, marks: marks.get(path, "processor") == "sysc0",
        )
        rules = RuleSet.standard().prepend(systemc)
        marks = MarkSet()
        marks.set("c.X", "processor", "sysc0")
        assert rules.resolve("c.X", marks).target == "systemc"
        # existing behaviour untouched
        assert rules.resolve("c.Y", MarkSet()).target == "c"

    def test_prepend_does_not_mutate_original(self):
        original = RuleSet.standard()
        original.prepend(MappingRule("x", "x", lambda p, m: True))
        assert len(original.rules) == 2

    def test_empty_rule_set_raises(self):
        with pytest.raises(RuleError):
            RuleSet([]).resolve("c.X", MarkSet())

    def test_rule_str(self):
        rule = RuleSet.standard().rules[0]
        assert "->" in str(rule)
