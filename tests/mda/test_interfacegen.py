"""Unit tests for the interface generator and byte codecs."""

import pytest

from repro.marks import marks_for_partition
from repro.mda import (
    InterfaceCodec,
    InterfaceError,
    ModelCompiler,
    build_interface_spec,
    build_manifest,
)
from repro.marks.partition import derive_partition
from repro.models import build_packetproc_model


@pytest.fixture(scope="module")
def spec():
    model = build_packetproc_model()
    component = model.components[0]
    manifest = build_manifest(model, component)
    marks = marks_for_partition(component, ("CE", "D"))
    partition = derive_partition(model, component, marks)
    return build_interface_spec(manifest, partition)


class TestSpecDerivation:
    def test_one_message_per_boundary_event(self, spec):
        names = {m.name for m in spec.messages}
        assert names == {"ce_ce1", "d_d1", "st_st1"}

    def test_message_ids_deterministic(self, spec):
        ids = [m.message_id for m in spec.messages]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_every_message_carries_target_instance(self, spec):
        for message in spec.messages:
            assert message.fields[0].name == "target_instance"
            assert message.fields[0].offset_bits == 0

    def test_fields_packed_contiguously(self, spec):
        message = spec.message_for("CE", "CE1")
        offsets = [f.offset_bits for f in message.fields]
        widths = [f.width_bits for f in message.fields]
        for i in range(1, len(offsets)):
            assert offsets[i] == offsets[i - 1] + widths[i - 1]

    def test_payload_padded_to_words(self, spec):
        for message in spec.messages:
            assert message.payload_bytes % 4 == 0

    def test_direction_follows_receiver_side(self, spec):
        assert spec.message_for("CE", "CE1").direction == "sw_to_hw"
        assert spec.message_for("ST", "ST1").direction == "hw_to_sw"

    def test_unknown_message_raises(self, spec):
        with pytest.raises(InterfaceError):
            spec.message_for("CE", "NOPE")
        assert not spec.has_message("CE", "NOPE")

    def test_layout_digest_stable(self, spec):
        assert spec.layout_digest() == spec.layout_digest()


class TestEmission:
    def test_c_header_has_guard_ids_and_structs(self, spec):
        header = spec.emit_c_header()
        assert "#ifndef SOC_INTERFACE_H" in header
        assert "#define MSG_ID_CE_CE1 1" in header
        assert "typedef struct ce_ce1_msg" in header
        assert "LAYOUT-MSG ce_ce1" in header

    def test_vhdl_package_mirrors_ids(self, spec):
        package = spec.emit_vhdl_package()
        assert "constant MSG_ID_CE_CE1 : integer := 1;" in package
        assert "type ce_ce1_msg_t is record" in package
        assert "LAYOUT-MSG ce_ce1" in package

    def test_both_artifacts_carry_identical_layout_tables(self, spec):
        c_layout = InterfaceCodec.from_artifact(spec.emit_c_header()).layouts
        v_layout = InterfaceCodec.from_artifact(
            spec.emit_vhdl_package()).layouts
        assert c_layout == v_layout


class TestCodec:
    @pytest.fixture(scope="class")
    def codec(self, spec):
        return InterfaceCodec.from_artifact(spec.emit_c_header())

    def test_pack_unpack_roundtrip(self, codec):
        values = {"target_instance": 3, "pkt_id": -5, "length": 1500,
                  "flow": 2}
        payload = codec.pack("ce_ce1", values)
        assert codec.unpack("ce_ce1", payload) == values

    def test_negative_integers_twos_complement(self, codec):
        payload = codec.pack("d_d1", {"target_instance": 1, "pkt_id": -1,
                                      "length": 0, "flow": 0})
        assert codec.unpack("d_d1", payload)["pkt_id"] == -1

    def test_payload_length_checked(self, codec):
        with pytest.raises(InterfaceError):
            codec.unpack("ce_ce1", b"\x00" * 3)

    def test_missing_field_rejected(self, codec):
        with pytest.raises(InterfaceError):
            codec.pack("ce_ce1", {"target_instance": 1})

    def test_unknown_message_rejected(self, codec):
        with pytest.raises(InterfaceError):
            codec.pack("nope", {})
        with pytest.raises(InterfaceError):
            codec.unpack("nope", b"")

    def test_message_id_lookup(self, codec):
        assert codec.message_id("ce_ce1") == 1


class TestEmptyBoundary:
    def test_pure_software_yields_empty_interface(self):
        model = build_packetproc_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ()))
        assert build.interface.messages == ()
        header = build.interface.emit_c_header()
        assert "#ifndef" in header     # still a valid artifact
