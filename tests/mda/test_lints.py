"""Unit tests for the structural lints: they must catch injected faults."""

import pytest

from repro.marks import marks_for_partition
from repro.mda import ModelCompiler, lint_c, lint_vhdl
from repro.models import build_microwave_model


@pytest.fixture(scope="module")
def build():
    model = build_microwave_model()
    component = model.components[0]
    return ModelCompiler(model).compile(
        marks_for_partition(component, ("PT",)))


class TestCleanArtifactsPass:
    def test_generated_c_is_clean(self, build):
        for path, text in build.c_artifacts.items():
            assert lint_c(path, text) == [], path

    def test_generated_vhdl_is_clean(self, build):
        for path, text in build.vhdl_artifacts.items():
            assert lint_vhdl(path, text) == [], path


class TestCLintCatchesFaults:
    def test_unbalanced_brace(self, build):
        text = build.artifacts["control_mo.c"].replace("}\n", "\n", 1)
        findings = lint_c("x.c", text)
        assert any("unclosed brace" in f.message for f in findings)

    def test_extra_closing_brace(self):
        findings = lint_c("x.c", "void f(void)\n{\n}\n}\n")
        assert any("unbalanced closing" in f.message for f in findings)

    def test_missing_include_guard(self):
        findings = lint_c("x.h", "typedef int foo_t;\n")
        assert any("include guard" in f.message for f in findings)

    def test_guard_never_defined(self):
        findings = lint_c("x.h", "#ifndef A_H\n#define B_H\n#endif\n")
        assert any("never #defined" in f.message for f in findings)

    def test_case_fallthrough_detected(self):
        text = (
            "void f(int e)\n{\n    switch (e) {\n"
            "    case 1:\n        do_a();\n"
            "    case 2:\n        break;\n    }\n}\n"
        )
        findings = lint_c("x.c", text)
        assert any("falls through" in f.message for f in findings)

    def test_unterminated_statement_detected(self):
        findings = lint_c("x.c", "void f(void)\n{\n    int x = 1\n}\n")
        assert any("suspicious line ending" in f.message for f in findings)

    def test_comment_bodies_exempt(self):
        text = "/* anything\n goes here with no semicolon\n*/\nint x = 1;\n"
        assert lint_c("x.c", text) == []


class TestVhdlLintCatchesFaults:
    def test_unclosed_process(self):
        text = (
            "entity e is\nend entity e;\n"
            "architecture rtl of e is\nbegin\n"
            "    p : process (clk)\n    begin\n"
            "end architecture rtl;\n"
        )
        findings = lint_vhdl("x.vhd", text)
        assert findings   # mismatched or unclosed blocks reported

    def test_mismatched_end_kind(self):
        text = "entity e is\nend process;\n"
        findings = lint_vhdl("x.vhd", text)
        assert any("closes" in f.message or "nothing open" in f.message
                   for f in findings)

    def test_architecture_of_unknown_entity(self):
        text = (
            "entity real_one is\nend entity real_one;\n"
            "architecture rtl of ghost is\nbegin\nend architecture rtl;\n"
        )
        findings = lint_vhdl("x.vhd", text)
        assert any("unknown entity" in f.message for f in findings)

    def test_end_with_nothing_open(self):
        findings = lint_vhdl("x.vhd", "end case;\n")
        assert any("nothing open" in f.message for f in findings)

    def test_record_blocks_balanced(self):
        text = (
            "package p is\n"
            "    type r_t is record\n        f : integer;\n    end record;\n"
            "end package p;\n"
        )
        assert lint_vhdl("x.vhd", text) == []

    def test_finding_str_includes_position(self):
        finding = lint_c("x.h", "int x;\n")[0]
        assert str(finding).startswith("x.h:")
