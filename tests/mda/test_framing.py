"""CRC framing of protected boundary messages (PR 1 tentpole, layer 3).

Both generated halves must emit the identical frame description, the
codec must round-trip frames and reject corruption, and ``unpack`` must
degrade malformed bytes into :class:`InterfaceError` — never a raw
``struct.error`` or ``UnicodeDecodeError``.
"""

import pytest

from repro.marks import MarkSet, marks_for_partition
from repro.mda import (
    InterfaceCodec,
    InterfaceError,
    ModelCompiler,
    Protection,
    crc8,
    crc16_ccitt,
)
from repro.mda.interfacegen import FRAME_TRAILER_BYTES
from repro.models import build_microwave_model


def protected_build(crc="crc16", max_retries=3):
    model = build_microwave_model()
    component = model.components[0]
    marks = marks_for_partition(component, ("PT",))
    path = f"{component.name}.PT"
    marks.set(path, "crc", crc)
    marks.set(path, "maxRetries", max_retries)
    marks.set(path, "isCritical", True)
    return ModelCompiler(model).compile(marks)


class TestCrcFunctions:
    def test_crc8_known_properties(self):
        assert crc8(b"") == 0
        assert crc8(b"\x00") == 0
        assert crc8(b"123456789") == 0xF4      # CRC-8/ATM check value

    def test_crc16_known_properties(self):
        assert crc16_ccitt(b"") == 0xFFFF
        assert crc16_ccitt(b"123456789") == 0x29B1   # CCITT-FALSE check

    def test_single_bit_flip_changes_crc(self):
        data = bytes(range(16))
        for crc in (crc8, crc16_ccitt):
            for position in range(len(data)):
                flipped = bytearray(data)
                flipped[position] ^= 0x01
                assert crc(bytes(flipped)) != crc(data)


class TestProtectionFromMarks:
    def test_unmarked_build_has_no_frames(self):
        model = build_microwave_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("PT",)))
        assert all(not m.protection.enabled
                   for m in build.interface.messages)
        codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        assert codec.frames == {}

    def test_marked_receiver_gets_framing(self):
        build = protected_build()
        for message in build.interface.messages:
            assert message.receiver_class == "PT"
            assert message.protection == Protection(
                crc="crc16", max_retries=3, critical=True)
            assert message.frame_bytes == \
                message.payload_bytes + FRAME_TRAILER_BYTES

    def test_no_marks_at_all_defaults_unprotected(self):
        model = build_microwave_model()
        build = ModelCompiler(model).compile(MarkSet())
        assert all(not m.protection.enabled
                   for m in build.interface.messages)


class TestBothHalvesAgree:
    def test_frame_lines_identical_in_c_and_vhdl(self):
        build = protected_build()
        c_codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        v_codec = InterfaceCodec.from_artifact(
            build.interface.emit_vhdl_package())
        assert c_codec.frames == v_codec.frames
        assert c_codec.frames          # at least one protected message
        assert c_codec.layouts == v_codec.layouts

    def test_frame_bytes_macro_in_both_artifacts(self):
        build = protected_build()
        header = build.interface.emit_c_header()
        package = build.interface.emit_vhdl_package()
        for message in build.interface.messages:
            macro = f"{message.name.upper()}_FRAME_BYTES"
            assert macro in header
            assert macro in package


class TestFrameRoundtrip:
    def codec(self, crc="crc16"):
        build = protected_build(crc=crc)
        return InterfaceCodec.from_artifact(build.interface.emit_c_header())

    @pytest.mark.parametrize("crc", ["crc8", "crc16"])
    def test_roundtrip(self, crc):
        codec = self.codec(crc)
        name = sorted(codec.frames)[0]
        payload = codec.pack(name, {
            field: 0 for field, _t, _o, _w in codec.layouts[name][2]})
        framed = codec.frame(name, payload, 41)
        assert len(framed) == codec.frames[name].frame_bytes
        assert codec.deframe(name, framed) == (payload, 41)

    @pytest.mark.parametrize("crc", ["crc8", "crc16"])
    def test_any_single_byte_corruption_detected(self, crc):
        codec = self.codec(crc)
        name = sorted(codec.frames)[0]
        payload = codec.pack(name, {
            field: 3 for field, _t, _o, _w in codec.layouts[name][2]})
        framed = codec.frame(name, payload, 7)
        for position in range(len(framed)):
            mauled = bytearray(framed)
            mauled[position] ^= 0x5A
            with pytest.raises(InterfaceError):
                codec.deframe(name, bytes(mauled))

    def test_wrong_length_rejected(self):
        codec = self.codec()
        name = sorted(codec.frames)[0]
        with pytest.raises(InterfaceError):
            codec.deframe(name, b"\x00" * 3)

    def test_sequence_survives_wraparound(self):
        codec = self.codec()
        name = sorted(codec.frames)[0]
        payload = codec.pack(name, {
            field: 0 for field, _t, _o, _w in codec.layouts[name][2]})
        framed = codec.frame(name, payload, 0x1_0005)   # > 16 bits
        _p, seq = codec.deframe(name, framed)
        assert seq == 0x0005

    def test_unframed_message_refuses_framing(self):
        model = build_microwave_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("PT",)))
        codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        name = sorted(codec.layouts)[0]
        with pytest.raises(InterfaceError):
            codec.frame(name, b"\x00" * 4, 1)


class TestUnpackRobustness:
    """Satellite: malformed bytes raise InterfaceError, nothing rawer."""

    def artifact_codec(self):
        layout = "\n".join([
            "LAYOUT-MSG m id=1 bytes=24",
            "LAYOUT-FIELD m target_instance type=unique_id "
            "offset=0 width=32",
            "LAYOUT-FIELD m level type=real offset=32 width=64",
            "LAYOUT-FIELD m tag type=string offset=96 width=64",
        ])
        return InterfaceCodec.from_artifact(layout)

    def test_short_real_chunk_is_interface_error(self):
        codec = self.artifact_codec()
        # 24 bytes expected by the layout, but give the real field a
        # truncated view by shortening the declared message
        bad = InterfaceCodec({"m": (1, 8, [("level", "real", 32, 64)])})
        with pytest.raises(InterfaceError):
            bad.unpack("m", b"\x00" * 8)

    def test_invalid_utf8_is_interface_error(self):
        codec = self.artifact_codec()
        payload = bytearray(24)
        payload[12:20] = b"\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8"
        with pytest.raises(InterfaceError) as excinfo:
            codec.unpack("m", bytes(payload))
        assert "malformed bytes" in str(excinfo.value)

    def test_wrong_length_still_interface_error(self):
        codec = self.artifact_codec()
        with pytest.raises(InterfaceError):
            codec.unpack("m", b"\x00" * 5)

    def test_valid_payload_still_decodes(self):
        codec = self.artifact_codec()
        packed = codec.pack("m", {
            "target_instance": 9, "level": 2.5, "tag": "ok"})
        values = codec.unpack("m", packed)
        assert values == {"target_instance": 9, "level": 2.5, "tag": "ok"}
