"""Unit tests for the build manifest."""

import pytest

from repro.mda import build_manifest, dtype_tag, tag_to_dtype
from repro.models import build_microwave_model, build_checksum_model
from repro.xuml import CoreType, EnumType, InstRefType, InstSetType


class TestTypeTags:
    @pytest.mark.parametrize("dtype,tag", [
        (CoreType.INTEGER, "integer"),
        (CoreType.REAL, "real"),
        (InstRefType("MO"), "inst_ref:MO"),
        (InstSetType("MO"), "inst_ref_set:MO"),
    ])
    def test_roundtrip(self, dtype, tag):
        assert dtype_tag(dtype) == tag
        assert tag_to_dtype(tag, {}) == dtype

    def test_enum_roundtrip(self):
        mode = EnumType("Mode", ("OFF", "ON"))
        tag = dtype_tag(mode)
        assert tag == "enum:Mode"
        assert tag_to_dtype(tag, {"Mode": ("OFF", "ON")}) == mode


class TestManifest:
    @pytest.fixture(scope="class")
    def manifest(self):
        model = build_microwave_model()
        return build_manifest(model, model.components[0])

    def test_classes_present(self, manifest):
        assert set(manifest.classes) == {"MO", "PT"}

    def test_state_table_complete(self, manifest):
        oven = manifest.klass("MO")
        assert oven.initial_state == "Idle"
        assert oven.transitions[("Idle", "MO1")] == "Preparing"
        assert oven.response("Idle", "MO2") == "ignore"
        assert oven.response("Idle", "MO5") == "cant_happen"
        assert oven.response("Idle", "MO1") == "transition"

    def test_attributes_with_defaults(self, manifest):
        tube = manifest.klass("PT")
        defaults = {name: default for name, _t, default in tube.attributes}
        assert defaults["watts"] == 900
        assert defaults["energize_count"] == 0

    def test_activities_lowered(self, manifest):
        oven = manifest.klass("MO")
        assert oven.activities["Idle"]          # non-empty IR
        assert all(isinstance(stmt, list) for stmt in oven.activities["Idle"])

    def test_events_with_params(self, manifest):
        oven = manifest.klass("MO")
        assert oven.events["MO1"].params == [("seconds", "integer")]
        assert not oven.events["MO1"].creation

    def test_associations_serialized(self, manifest):
        one, other, link = manifest.associations["R1"]
        assert {one[0], other[0]} == {"MO", "PT"}
        assert link is None

    def test_externals_listed(self, manifest):
        assert "LOG" in manifest.externals
        assert "info" in manifest.externals["LOG"]

    def test_creation_transitions(self):
        model = build_checksum_model()
        manifest = build_manifest(model, model.components[0])
        job = manifest.klass("J")
        assert job.creations == {"J0": "Submitted"}
        assert job.events["J0"].creation

    def test_operations_lowered(self):
        model = build_checksum_model()
        manifest = build_manifest(model, model.components[0])
        engine = manifest.klass("AC")
        fletcher = engine.operations["fletcher"]
        assert fletcher.returns == "integer"
        assert fletcher.instance_based
        assert fletcher.ir
        census = engine.operations["engines_available"]
        assert not census.instance_based
