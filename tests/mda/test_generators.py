"""Unit tests for the C and VHDL text generators."""

import pytest

from repro.marks import marks_for_partition
from repro.mda import CGenerator, ModelCompiler, VhdlGenerator, build_manifest
from repro.models import build_microwave_model, build_packetproc_model


@pytest.fixture(scope="module")
def microwave():
    model = build_microwave_model()
    manifest = build_manifest(model, model.components[0])
    return model, manifest


class TestCGenerator:
    def test_types_header(self, microwave):
        _model, manifest = microwave
        text = CGenerator(manifest).emit_types_header()
        assert "typedef uint32_t instance_handle_t;" in text
        assert "CLASS_MO = 1," in text
        assert "CLASS_PT = 2," in text

    def test_class_header_declares_tables(self, microwave):
        _model, manifest = microwave
        text = CGenerator(manifest).emit_class_header(manifest.klass("MO"))
        assert "MO_STATE_IDLE = 1," in text
        assert "MO_EV_MO1" in text
        assert "typedef struct mo_mo1_params" in text
        assert "int32_t seconds;" in text
        assert "mo_data_t *mo_data(instance_handle_t inst);" in text

    def test_class_source_dispatch_shape(self, microwave):
        _model, manifest = microwave
        text = CGenerator(manifest).emit_class_source(manifest.klass("MO"))
        assert "void mo_dispatch(" in text
        assert "case MO_STATE_IDLE:" in text
        assert "switch (event) {" in text
        assert "self_data->state = MO_STATE_PREPARING;" in text
        assert "mo_enter_preparing(inst, params);" in text
        assert "/* ignored */" in text
        assert "rt_cant_happen(inst, (int)event);" in text

    def test_entry_actions_lower_generate_and_select(self, microwave):
        _model, manifest = microwave
        text = CGenerator(manifest).emit_class_source(manifest.klass("MO"))
        assert "rt_generate(CLASS_MO, MO_EV_MO5" in text
        assert "rt_navigate_set(" in text
        assert "rt_generate(CLASS_PT, PT_EV_PT1" in text

    def test_delayed_generate_carries_delay(self, microwave):
        _model, manifest = microwave
        text = CGenerator(manifest).emit_class_source(manifest.klass("MO"))
        assert "1000000" in text      # the one-second tick

    def test_kernel_queue_discipline_documented(self, microwave):
        _model, manifest = microwave
        text = CGenerator(manifest).emit_kernel_source()
        assert "self_queue_head" in text
        assert "kernel_next" in text
        assert "run to completion" in text

    def test_attribute_access_resolves_variable_class(self):
        # Stats writes rec.packets where rec is a FlowRecord: the
        # accessor must use fr_data, not st_data
        model = build_packetproc_model()
        manifest = build_manifest(model, model.components[0])
        text = CGenerator(manifest).emit_class_source(manifest.klass("ST"))
        assert "fr_data(rec)->packets" in text


class TestVhdlGenerator:
    def test_entity_ports(self, microwave):
        _model, manifest = microwave
        text = VhdlGenerator(manifest).emit_entity(manifest.klass("PT"))
        assert "entity power_tube is" in text
        assert "clk          : in  std_logic;" in text
        assert "architecture rtl of power_tube is" in text

    def test_fsm_case_structure(self, microwave):
        _model, manifest = microwave
        text = VhdlGenerator(manifest).emit_entity(manifest.klass("PT"))
        assert "type state_t is (st_off, st_energized);" in text
        assert "case current_state is" in text
        assert "when st_off =>" in text
        assert "current_state <= st_energized;" in text
        assert "end case;" in text

    def test_attributes_become_registers(self, microwave):
        _model, manifest = microwave
        text = VhdlGenerator(manifest).emit_entity(manifest.klass("PT"))
        assert "signal r_watts : signed(31 downto 0);" in text

    def test_clock_generic_from_marks(self, microwave):
        _model, manifest = microwave
        text = VhdlGenerator(manifest).emit_entity(
            manifest.klass("PT"), clock_mhz=250)
        assert "CLOCK_MHZ : natural := 250" in text

    def test_ignored_events_are_null(self, microwave):
        _model, manifest = microwave
        text = VhdlGenerator(manifest).emit_entity(manifest.klass("PT"))
        assert "null;  -- ignored" in text

    def test_runtime_package(self, microwave):
        _model, manifest = microwave
        text = VhdlGenerator(manifest).emit_runtime_package()
        assert "package control_rt_pkg is" in text
        assert "MAX_INSTANCES" in text


class TestCompilerAssembly:
    def test_rules_applied_recorded(self):
        model = build_packetproc_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("CE",)))
        assert build.rules_applied["CE"] == "hardware-class"
        assert build.rules_applied["M"] == "software-class"

    def test_artifact_sets_follow_partition(self):
        model = build_packetproc_model()
        component = model.components[0]
        compiler = ModelCompiler(model)
        all_sw = compiler.compile(marks_for_partition(component, ()))
        assert not all_sw.vhdl_artifacts or set(
            all_sw.vhdl_artifacts) == {"soc_interface_pkg.vhd"}
        all_hw = compiler.compile(
            marks_for_partition(component, tuple(component.class_keys)))
        assert not any(p.endswith(".c") for p in all_hw.artifacts)

    def test_marking_file_snapshot_included(self):
        model = build_packetproc_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("CE",)))
        assert "soc.CE isHardware = True" in build.artifacts["marks.mks"]

    def test_write_to_disk(self, tmp_path):
        model = build_microwave_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("PT",)))
        written = build.write_to(tmp_path)
        assert len(written) == len(build.artifacts)
        assert (tmp_path / "marks.mks").exists()

    def test_write_to_is_atomic(self, tmp_path, monkeypatch):
        """An export interrupted mid-file leaves no partial artifact —
        the target is either absent or carries complete prior text."""
        import os

        model = build_microwave_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("PT",)))
        victim = sorted(build.artifacts)[3]

        real_replace = os.replace

        def exploding_replace(src, dst):
            if str(dst).endswith(victim):
                raise KeyboardInterrupt("simulated ctrl-C mid-export")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", exploding_replace)
        try:
            build.write_to(tmp_path)
        except KeyboardInterrupt:
            pass
        monkeypatch.undo()

        # the interrupted artifact never appeared, not even truncated,
        # and no temp droppings remain
        assert not (tmp_path / victim).exists()
        assert not [p for p in tmp_path.iterdir()
                    if p.name.startswith(".")]
        # everything that did land is complete
        for path in tmp_path.iterdir():
            assert path.read_text() == build.artifacts[path.name]

    def test_write_to_overwrites_previous_export(self, tmp_path):
        model = build_microwave_model()
        component = model.components[0]
        compiler = ModelCompiler(model)
        compiler.compile(
            marks_for_partition(component, ())).write_to(tmp_path)
        retargeted = compiler.compile(
            marks_for_partition(component, ("PT",)))
        retargeted.write_to(tmp_path)
        assert (tmp_path / "marks.mks").read_text() == \
            retargeted.artifacts["marks.mks"]

    def test_lines_for_class(self):
        model = build_packetproc_model()
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ("CE",)))
        assert build.lines_for_class("CE") > 20    # the VHDL entity
        assert build.lines_for_class("M") > 40     # header + source
