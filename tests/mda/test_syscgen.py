"""Tests of the SystemC mapping extension.

The point under test is paper section 3's retargeting claim: a third
implementation technology is added by *prepending one rule* and marking
elements — no model change, no metamodel change.
"""

import pytest

from repro.marks import MarkSet, marks_for_partition
from repro.mda import (
    ModelCompiler,
    RuleSet,
    SYSTEMC_RULE,
    SystemCGenerator,
    build_manifest,
    lint_c,
)
from repro.models import build_microwave_model, build_packetproc_model


def systemc_rules() -> RuleSet:
    return RuleSet.standard().prepend(SYSTEMC_RULE)


class TestRuleSelection:
    def test_processor_mark_selects_systemc(self):
        rules = systemc_rules()
        marks = MarkSet()
        marks.set("soc.CE", "processor", "systemc")
        assert rules.resolve("soc.CE", marks).target == "systemc"

    def test_is_hardware_still_wins_nothing_marked(self):
        rules = systemc_rules()
        marks = MarkSet()
        marks.set("soc.CE", "isHardware", True)
        # hardware rule comes after the systemc rule but the systemc
        # rule does not match, so VHDL still applies
        assert rules.resolve("soc.CE", marks).target == "vhdl"

    def test_default_still_software(self):
        assert systemc_rules().resolve("soc.M", MarkSet()).target == "c"


class TestEmission:
    @pytest.fixture(scope="class")
    def module_text(self):
        model = build_microwave_model()
        manifest = build_manifest(model, model.components[0])
        return SystemCGenerator(manifest).emit_module(manifest.klass("MO"))

    def test_sc_module_shape(self, module_text):
        assert "SC_MODULE(microwave_oven)" in module_text
        assert "SC_CTOR(microwave_oven)" in module_text
        assert "SC_METHOD(step);" in module_text
        assert "sensitive << clk.pos();" in module_text

    def test_state_enum_and_dispatch(self, module_text):
        assert "ST_IDLE = 1," in module_text
        assert "switch (current_state) {" in module_text
        assert "current_state = ST_PREPARING;" in module_text
        assert "enter_preparing();" in module_text

    def test_entry_actions_emitted(self, module_text):
        assert "void enter_cooking()" in module_text
        assert "remaining_seconds = (remaining_seconds - 1);" in module_text

    def test_structurally_clean(self, module_text):
        # braces balanced, cases terminated — reuse the C lint
        findings = [f for f in lint_c("mo_sc.h", module_text)
                    if "include guard" not in f.message]
        assert findings == []


class TestCompilerIntegration:
    def test_three_target_build(self):
        model = build_packetproc_model()
        component = model.components[0]
        marks = marks_for_partition(component, ("CE",))
        marks.set("soc.D", "processor", "systemc")
        build = ModelCompiler(model, rules=systemc_rules()).compile(marks)
        assert build.rules_applied["CE"] == "hardware-class"
        assert build.rules_applied["D"] == "systemc-class"
        assert build.rules_applied["M"] == "software-class"
        assert "dma_engine_sc.h" in build.artifacts
        assert "crypto_engine.vhd" in build.artifacts
        assert "soc_m.c" in build.artifacts

    def test_retargeting_is_marks_only(self):
        # the same model compiles to three different technology mixes
        # with zero model edits — only the sticky notes change
        model = build_packetproc_model()
        component = model.components[0]
        compiler = ModelCompiler(model, rules=systemc_rules())
        plain = compiler.compile(marks_for_partition(component, ()))
        marked = marks_for_partition(component, ())
        marked.set("soc.CE", "processor", "systemc")
        retargeted = compiler.compile(marked)
        assert "crypto_engine_sc.h" in retargeted.artifacts
        assert "crypto_engine_sc.h" not in plain.artifacts
