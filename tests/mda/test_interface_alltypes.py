"""Every profile data type across the generated interface boundary.

The catalog models' boundary events carry integers and booleans; this
purpose-built model pushes an enum, a real, a string and a boolean
through one cross-partition message, proving the whole chain — spec
derivation, both emitted halves, byte codecs, and the co-simulated bus —
handles the full type system.
"""

import pytest

from repro.cosim import CoSimMachine
from repro.marks import MarkSet
from repro.mda import InterfaceCodec, ModelCompiler
from repro.xuml import ModelBuilder


def build_telemetry_model():
    builder = ModelBuilder("Telemetry")
    node = builder.component("telem")
    node.enum("Severity", ["INFO", "WARN", "ALARM"])

    sensor = node.klass("Sensor", "SE")
    sensor.attr("se_id", "unique_id")
    sensor.attr("sent", "integer")
    sensor.event("SE1", "report requested", params=[
        ("level", "Severity"), ("value", "real"),
        ("tag", "string"), ("latched", "boolean")])
    sensor.state("Idle", 1)
    sensor.state("Reporting", 2, activity="""
        self.sent = self.sent + 1;
        select one sink related by self->SK[R1];
        generate SK1:SK(level: param.level, value: param.value,
                        tag: param.tag, latched: param.latched) to sink;
    """)
    sensor.trans("Idle", "SE1", "Reporting")
    sensor.trans("Reporting", "SE1", "Reporting")

    sink = node.klass("Sink", "SK")
    sink.attr("sk_id", "unique_id")
    sink.attr("alarms", "integer")
    sink.attr("last_value", "real")
    sink.attr("last_tag", "string")
    sink.attr("last_latched", "boolean")
    sink.attr("last_level", "Severity")
    sink.event("SK1", "telemetry", params=[
        ("level", "Severity"), ("value", "real"),
        ("tag", "string"), ("latched", "boolean")])
    sink.state("Ready", 1)
    sink.state("Recording", 2, activity="""
        self.last_level = param.level;
        self.last_value = param.value;
        self.last_tag = param.tag;
        self.last_latched = param.latched;
        if (param.level == Severity::ALARM)
            self.alarms = self.alarms + 1;
        end if;
    """)
    sink.trans("Ready", "SK1", "Recording")
    sink.trans("Recording", "SK1", "Recording")

    node.assoc("R1", ("SE", "reports to", "1"), ("SK", "collects from", "1"))
    return builder.build()


@pytest.fixture(scope="module")
def build():
    model = build_telemetry_model()
    marks = MarkSet()
    marks.set("telem.SK", "isHardware", True)
    return ModelCompiler(model).compile(marks)


class TestSpecCoversAllTypes:
    def test_field_tags(self, build):
        message = build.interface.message_for("SK", "SK1")
        tags = {f.name: f.dtype_tag for f in message.fields}
        assert tags["level"] == "enum:Severity"
        assert tags["value"] == "real"
        assert tags["tag"] == "string"
        assert tags["latched"] == "boolean"

    def test_widths_by_type(self, build):
        message = build.interface.message_for("SK", "SK1")
        widths = {f.name: f.width_bits for f in message.fields}
        assert widths["value"] == 64          # IEEE double
        assert widths["tag"] == 256           # fixed 32-byte string
        assert widths["latched"] == 8         # byte-aligned boolean
        assert widths["level"] == 8           # 3 enumerators -> 1 byte

    def test_both_halves_lint_and_agree(self, build):
        assert build.lint() == []
        c_codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        v_codec = InterfaceCodec.from_artifact(
            build.interface.emit_vhdl_package())
        assert c_codec.layouts == v_codec.layouts

    def test_byte_roundtrip_of_every_type(self, build):
        codec = InterfaceCodec.from_artifact(build.interface.emit_c_header())
        values = {"target_instance": 2, "level": 2, "value": -273.15,
                  "tag": "sensor-α", "latched": True}
        unpacked = codec.unpack("sk_sk1", codec.pack("sk_sk1", values))
        assert unpacked == values


class TestOnTheCoSimulatedBus:
    def test_values_survive_the_bus(self, build):
        machine = CoSimMachine(build)
        sensor = machine.create_instance("SE", se_id=1)
        sink = machine.create_instance("SK", sk_id=1)
        machine.relate(sensor, sink, "R1")
        machine.inject(sensor, "SE1", {
            "level": "ALARM", "value": 42.5, "tag": "boiler",
            "latched": True})
        machine.inject(sensor, "SE1", {
            "level": "INFO", "value": 7.25, "tag": "pump",
            "latched": False}, delay=10)
        machine.run()
        assert machine.bus.stats.messages == 2
        assert machine.read_attribute(sink, "alarms") == 1
        assert machine.read_attribute(sink, "last_level") == "INFO"
        assert machine.read_attribute(sink, "last_value") == 7.25
        assert machine.read_attribute(sink, "last_tag") == "pump"
        assert machine.read_attribute(sink, "last_latched") is False
