"""Reflexive associations through the whole pipeline.

The org-chart pattern (a class related to itself with two phrases) is
the trickiest link topology; these tests push it through the abstract
runtime, the manifest, and both target architectures.
"""

import pytest

from repro.mda import ArchError, CSoftwareMachine, VHardwareMachine, build_manifest
from repro.runtime import Simulation
from repro.xuml import ModelBuilder


def build_orgchart():
    builder = ModelBuilder("Org")
    company = builder.component("company")
    person = company.klass("Person", "P")
    person.attr("p_id", "unique_id")
    person.attr("reports", "integer")
    person.event("P1", "count reports")
    person.state("Idle", 1)
    person.state("Counting", 2, activity="""
        select many team related by self->P[R1.'manages'];
        self.reports = cardinality team;
        total = 0;
        for each member in team
            select many theirs related by member->P[R1.'manages'];
            total = total + cardinality theirs;
        end for;
        self.reports = self.reports + total;
    """)
    person.trans("Idle", "P1", "Counting")
    person.trans("Counting", "P1", "Counting")
    company.assoc("R1", ("P", "manages", "*"), ("P", "is managed by", "0..1"))
    return builder.build()


def populate(engine):
    """boss -> {lead_a, lead_b}; lead_a -> {worker}.  Returns handles."""
    boss = engine.create_instance("P", p_id=1)
    lead_a = engine.create_instance("P", p_id=2)
    lead_b = engine.create_instance("P", p_id=3)
    worker = engine.create_instance("P", p_id=4)
    engine.relate(boss, lead_a, "R1", "manages")
    engine.relate(boss, lead_b, "R1", "manages")
    engine.relate(lead_a, worker, "R1", "manages")
    return boss, lead_a, lead_b, worker


ENGINES = [
    ("abstract", lambda model: Simulation(model)),
    ("csim", lambda model: CSoftwareMachine(
        build_manifest(model, model.components[0]))),
    ("vsim", lambda model: VHardwareMachine(
        build_manifest(model, model.components[0]), clock_mhz=10)),
]


@pytest.mark.parametrize("name,factory", ENGINES)
class TestReflexiveEverywhere:
    def test_transitive_count(self, name, factory):
        engine = factory(build_orgchart())
        boss, *_rest = populate(engine)
        engine.inject(boss, "P1")
        engine.run_to_quiescence()
        # 2 direct + 1 transitive
        assert engine.read_attribute(boss, "reports") == 3

    def test_navigation_both_phrases(self, name, factory):
        engine = factory(build_orgchart())
        boss, lead_a, _lead_b, worker = populate(engine)
        assert engine.navigate(boss, "R1", "P", "manages") == (lead_a, 3)
        assert engine.navigate(lead_a, "R1", "P", "is managed by") == (boss,)
        assert engine.navigate(worker, "R1", "P", "manages") == ()

    def test_one_manager_enforced(self, name, factory):
        engine = factory(build_orgchart())
        boss, _a, _b, worker = populate(engine)
        with pytest.raises(Exception) as excinfo:
            engine.relate(boss, worker, "R1", "manages")
        assert "R1" in str(excinfo.value)

    def test_phrase_required(self, name, factory):
        engine = factory(build_orgchart())
        boss, lead_a, *_ = populate(engine)
        with pytest.raises(Exception):
            engine.navigate(boss, "R1", "P")
