"""Fault injection: the verification net actually catches compiler bugs.

E3/E7 passing would be vacuous if they could not fail.  These tests
sabotage the build artifacts the way a buggy emitter would — wrong
transition target, dropped action, corrupted interface layout — and
assert the conformance machinery reports each fault.
"""

import copy

import pytest

from repro.marks import marks_for_partition
from repro.mda import (
    CSoftwareMachine,
    InterfaceCodec,
    ModelCompiler,
    build_manifest,
)
from repro.models import build_microwave_model
from repro.runtime import Simulation
from repro.verify import CSimTarget, TestCase, run_case
from repro.verify.suites import microwave_suite


def fresh_manifest():
    model = build_microwave_model()
    return model, build_manifest(model, model.components[0])


def cook_case():
    return (
        TestCase("cook")
        .create("oven", "MO", oven_id=1)
        .create("tube", "PT", tube_id=1)
        .relate("oven", "tube", "R1")
        .inject("oven", "MO1", {"seconds": 2})
        .run()
        .expect_state("oven", "Complete")
        .expect_attr("oven", "cycles_run", 1)
    )


class _FaultyTarget(CSimTarget):
    """A CSimTarget over a hand-corrupted manifest."""

    name = "faulty-c"

    def __init__(self, manifest):
        self._engine = CSoftwareMachine(manifest)


class TestManifestFaults:
    def test_wrong_transition_target_detected(self):
        _model, manifest = fresh_manifest()
        bad = copy.deepcopy(manifest)
        # a miswired table: MO1 in Idle goes straight to Complete
        bad.classes["MO"].transitions[("Idle", "MO1")] = "Complete"
        result = run_case(cook_case(), _FaultyTarget(bad))
        assert not result.passed

    def test_dropped_action_statement_detected(self):
        _model, manifest = fresh_manifest()
        bad = copy.deepcopy(manifest)
        # the emitter "forgot" the Preparing entry action entirely
        bad.classes["MO"].activities["Preparing"] = []
        result = run_case(cook_case(), _FaultyTarget(bad))
        assert not result.passed        # cycles_run never incremented

    def test_off_by_one_in_lowered_constant_detected(self):
        _model, manifest = fresh_manifest()
        bad = copy.deepcopy(manifest)

        def bump_ints(node):
            if not isinstance(node, list):
                return
            if node and node[0] == "int":
                node[1] = node[1] + 1
                return
            for piece in node:
                bump_ints(piece)
        bump_ints(bad.classes["MO"].activities["Preparing"])
        result = run_case(cook_case(), _FaultyTarget(bad))
        assert not result.passed

    def test_ignore_flipped_to_transition_diverges_traces(self):
        model, manifest = fresh_manifest()
        bad = copy.deepcopy(manifest)
        # door traffic in Idle now bounces the machine through Paused
        del bad.classes["MO"].non_transitions[("Idle", "MO3")]
        bad.classes["MO"].transitions[("Idle", "MO3")] = "Paused"

        case = (
            TestCase("door-noise")
            .create("oven", "MO", oven_id=1)
            .inject("oven", "MO3")
            .run()
            .expect_state("oven", "Idle")
        )
        good = run_case(case, _FaultyTarget(copy.deepcopy(manifest)))
        assert good.passed
        result = run_case(case, _FaultyTarget(bad))
        assert not result.passed

    def test_pristine_manifest_passes_everything(self):
        _model, manifest = fresh_manifest()
        for case in microwave_suite():
            assert run_case(case, _FaultyTarget(
                copy.deepcopy(manifest))).passed


class TestInterfaceFaults:
    @pytest.fixture()
    def build(self):
        # the packet processor's boundary messages carry several fields,
        # so offset/width corruption has somewhere to land
        from repro.models import build_packetproc_model
        model = build_packetproc_model()
        component = model.components[0]
        return ModelCompiler(model).compile(
            marks_for_partition(component, ("CE", "D")))

    def test_corrupted_offset_breaks_byte_agreement(self, build):
        c_header = build.artifacts["soc_interface.h"]
        vhdl_pkg = build.artifacts["soc_interface_pkg.vhd"]
        # a hand-edit (the thing generation forbids) on one side only
        sabotaged = c_header.replace("offset=32", "offset=40", 1)
        assert sabotaged != c_header
        c_codec = InterfaceCodec.from_artifact(sabotaged)
        v_codec = InterfaceCodec.from_artifact(vhdl_pkg)
        assert c_codec.layouts != v_codec.layouts
        # and the disagreement is visible in the bytes, not just tables
        name = "ce_ce1"
        values = {f[0]: 3 for f in v_codec.layouts[name][2]}
        assert c_codec.pack(name, values) != v_codec.pack(name, values)

    def test_corrupted_width_refuses_large_values(self, build):
        c_header = build.artifacts["soc_interface.h"]
        sabotaged = c_header.replace("width=32", "width=16", 1)
        good = InterfaceCodec.from_artifact(c_header)
        bad = InterfaceCodec.from_artifact(sabotaged)
        name = "ce_ce1"
        values = {f[0]: 0x123456 for f in good.layouts[name][2]}
        good.pack(name, values)                   # fits in 32 bits
        with pytest.raises(OverflowError):
            bad.pack(name, values)                # no longer fits in 16

    def test_renumbered_id_detected(self, build):
        c_header = build.artifacts["soc_interface.h"]
        sabotaged = c_header.replace("id=1", "id=7", 1)
        good = InterfaceCodec.from_artifact(c_header)
        bad = InterfaceCodec.from_artifact(sabotaged)
        assert good.message_id("ce_ce1") != bad.message_id("ce_ce1")
