"""Unit tests for naming rules and the action IR."""

import pytest

from repro.mda import c_ident, c_macro, ir_op_counts, lower_block, snake_case, vhdl_ident
from repro.mda.actionir import walk_ir_statements
from repro.oal import analyze_activity, parse_activity
from repro.xuml import CoreType, ModelBuilder


class TestNaming:
    @pytest.mark.parametrize("name,expected", [
        ("MicrowaveOven", "microwave_oven"),
        ("CryptoEngine", "crypto_engine"),
        ("DMAEngine", "dma_engine"),
        ("already_snake", "already_snake"),
        ("MO", "mo"),
    ])
    def test_snake_case(self, name, expected):
        assert snake_case(name) == expected

    def test_c_reserved_words_mangled(self):
        assert c_ident("switch") == "switch_"
        assert c_ident("Case") == "case_"

    def test_vhdl_reserved_words_mangled(self):
        assert vhdl_ident("signal") == "signal_v"
        assert vhdl_ident("Entity") == "entity_v"

    def test_c_macro_upper_snake(self):
        assert c_macro("MicrowaveOven") == "MICROWAVE_OVEN"


def lab_context():
    builder = ModelBuilder("M")
    component = builder.component("c")
    component.enum("Mode", ["OFF", "ON"])
    lab = component.klass("Lab", "L")
    lab.attr("l_id", "unique_id")
    lab.attr("n", "integer")
    lab.attr("mode", "Mode")
    lab.event("GO", params=[("a", "integer")])
    lab.state("Idle", 1)
    lab.state("Ran", 2)
    lab.trans("Idle", "GO", "Ran")
    model = builder.build(check=False)
    return model, model.component("c"), model.resolve_class("c.L")


def lower(text):
    model, component, klass = lab_context()
    state = klass.statemachine.state("Ran")
    block = parse_activity(text)
    analysis = analyze_activity(block, model, component, klass, state)
    return lower_block(block, analysis, component)


class TestLowering:
    def test_assignment_forms(self):
        ir = lower("x = 1; self.n = 2;")
        assert ir[0] == ["assign_var", "x", ["int", 1]]
        assert ir[1] == ["assign_attr", ["self"], "n", ["int", 2]]

    def test_enum_literal_carries_code(self):
        ir = lower("self.mode = Mode::ON;")
        assert ir[0][3] == ["enum", "Mode", "ON", 1]

    def test_generate_resolves_receiver_class(self):
        ir = lower("generate GO(a: 1) to self;")
        assert ir[0][0] == "generate"
        assert ir[0][2] == "L"          # class resolved by the analyzer

    def test_param_reference(self):
        ir = lower("x = param.a;")
        assert ir[0][2] == ["param", "a"]

    def test_control_flow_nesting(self):
        ir = lower("""
            if (param.a > 0)
                while (param.a > 1)
                    x = 1;
                end while;
            else
                y = 2;
            end if;
        """)
        tags = [stmt[0] for stmt in walk_ir_statements(ir)]
        assert tags == ["if", "while", "assign_var", "assign_var"]

    def test_op_counts(self):
        ir = lower("x = 1; y = 2; if (param.a > 0) z = 3; end if;")
        counts = ir_op_counts(ir)
        assert counts == {"assign_var": 3, "if": 1}

    def test_ir_is_jsonable(self):
        import json
        ir = lower('x = 1; generate GO(a: x) to self delay 5;')
        assert json.loads(json.dumps(ir)) == ir
